"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Regenerated artifacts are
written to ``benchmarks/results/*.txt`` and echoed through pytest's
terminal reporter, so ``pytest benchmarks/ --benchmark-only`` leaves a
readable record of every reproduced number.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- ``tiny`` (default) / ``small`` / ``medium``:
  workload problem size.
* ``REPRO_BENCH_FULL=1`` -- evaluate every viable design instead of
  the documented subsample in the Pareto sweeps.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads import Scale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny").upper()
    return Scale[name]


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """record(name, text): persist one regenerated artifact."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()
