"""Microarchitectural ablations quoted in Sections 3.2-3.3.

The paper justifies each design choice with a measured delta; this
bench re-measures every one of them:

* matching-table associativity: 2-way beats direct-mapped by ~10%,
  4-way adds <1% (Section 3.2),
* matching banks: 4 beats 2 (~5% average), 8 adds nothing,
* pods: pairing PEs is ~15% faster than isolated PEs,
* speculative fire: back-to-back dependent dispatch matters,
* partial store queues: 2 beats 0 by 5-20% on store-heavy code,
  more than 2 adds little.
"""

from dataclasses import replace

from repro.core.config import WaveScalarConfig
from repro.core.experiments import run_cached
from repro.workloads import Scale, get

from .conftest import bench_scale

#: Small structures so the matching ablations actually bind.
BASE = WaveScalarConfig(
    clusters=1, virtualization=64, matching_entries=64, l2_mb=1
)
APPS = ("ammp", "twolf", "djpeg", "rawdaudio")


def mean_cycles(config, apps=APPS, threads=None, scale=None):
    scale = scale or bench_scale()
    total = 0
    for name in apps:
        kwargs = {"threads": threads} if get(name).multithreaded else {}
        total += run_cached(config, name, scale, **kwargs).cycles
    return total / len(apps)


def geo_speedup(base_cycles, new_cycles):
    return base_cycles / new_cycles


def test_matching_associativity(record, benchmark):
    # cache shared across benches: keys fully identify runs

    def run():
        direct = mean_cycles(replace(BASE, matching_associativity=1))
        twoway = mean_cycles(replace(BASE, matching_associativity=2))
        fourway = mean_cycles(replace(BASE, matching_associativity=4))
        return direct, twoway, fourway

    direct, twoway, fourway = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    text = (
        f"direct-mapped: {direct:.0f} cycles\n"
        f"2-way        : {twoway:.0f} cycles "
        f"({geo_speedup(direct, twoway) - 1:+.1%} vs direct; paper +10%)\n"
        f"4-way        : {fourway:.0f} cycles "
        f"({geo_speedup(twoway, fourway) - 1:+.1%} vs 2-way; paper <1%)"
    )
    record("ablation_matching_associativity", text)
    assert twoway <= direct  # 2-way never hurts
    # 4-way adds little over 2-way.
    assert abs(geo_speedup(twoway, fourway) - 1) < 0.05


def test_pods_and_speculative_fire(record, benchmark):
    # cache shared across benches: keys fully identify runs

    def run():
        full = mean_cycles(BASE)
        no_pods = mean_cycles(replace(BASE, pods_enabled=False))
        no_spec = mean_cycles(replace(BASE, speculative_fire=False))
        return full, no_pods, no_spec

    full, no_pods, no_spec = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"baseline           : {full:.0f} cycles\n"
        f"pods disabled      : {no_pods:.0f} cycles "
        f"(pods give {geo_speedup(no_pods, full) - 1:+.1%}; paper +15%)\n"
        f"spec fire disabled : {no_spec:.0f} cycles "
        f"(spec fire gives {geo_speedup(no_spec, full) - 1:+.1%})"
    )
    record("ablation_pods_specfire", text)
    assert full <= no_pods
    assert full < no_spec  # back-to-back dispatch must matter


def test_partial_store_queues(record, benchmark):
    # cache shared across benches: keys fully identify runs
    apps = ("twolf", "radix")

    def run():
        return {
            n: mean_cycles(
                replace(BASE, partial_store_queues=n), apps=apps, threads=4
            )
            for n in (0, 1, 2, 4)
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{n} PSQs: {c:.0f} cycles "
        f"({geo_speedup(cycles[0], c) - 1:+.1%} vs none)"
        for n, c in cycles.items()
    ) + "\n(paper: 2 PSQs give +5-20%, more adds little)"
    record("ablation_partial_store_queues", text)
    assert cycles[2] < cycles[0]  # PSQs help store-heavy code
    assert cycles[2] / cycles[0] < 0.98
    # Diminishing returns beyond 2.
    assert abs(cycles[4] / cycles[2] - 1) < 0.10


def test_storebuffer_wave_window(record, benchmark):
    """The 4-wave ordering window (Table 1).

    Finding worth recording: window size changes how many requests get
    NACKed (window stalls) but not performance -- per-thread waves
    issue strictly in order regardless, so intake buffering is never
    the constraint as long as retries are free.  The paper fixed the
    window at 4 architecturally; this shows 4 is "enough" in the
    strongest sense (1 would perform identically, at the cost of far
    more retry traffic).
    """
    # cache shared across benches: keys fully identify runs

    def run():
        out = {}
        for n in (1, 2, 4, 8):
            config = replace(BASE, storebuffer_waves=n)
            result = run_cached(config, "fft", bench_scale(),
                                threads=8)
            out[n] = (result.cycles, result.stats.sb_window_stalls)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{n} waves: {cyc} cycles, {stalls} NACKed requests"
        for n, (cyc, stalls) in data.items()
    )
    record("ablation_storebuffer_waves", text)
    cycles = {n: cyc for n, (cyc, _) in data.items()}
    stalls = {n: s for n, (_, s) in data.items()}
    # Essentially timing-neutral across window sizes (a NACKed request
    # costs its re-absorption cycle, a couple of percent at worst) ...
    assert max(cycles.values()) <= 1.05 * min(cycles.values())
    # ... but smaller windows generate (strictly) more retry traffic.
    assert stalls[1] >= stalls[4] >= stalls[8]


def test_matching_banks(record, benchmark):
    # cache shared across benches: keys fully identify runs

    def run():
        return {
            n: mean_cycles(replace(BASE, matching_banks=n))
            for n in (2, 4, 8)
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        f"{n} banks: {c:.0f} cycles" for n, c in cycles.items()
    ) + "\n(paper: 2 banks cost ~5%, 8 banks add nothing over 4)"
    record("ablation_matching_banks", text)
    assert cycles[4] <= cycles[2] * 1.02
    assert abs(cycles[8] / cycles[4] - 1) < 0.05
