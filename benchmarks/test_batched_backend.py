"""Batched-backend acceptance benchmark.

The tentpole contract of ``repro.sim.batched``: at batch width >= 8,
a design-space sweep through the default process-isolated supervisor
must sustain at least 2x the plain backend's sweep-level cells/sec --
while every ledger record stays bit-identical.  The 2x comes from two
compounding effects, both measured here end to end rather than in a
microbench: the lockstep drain's specialised hot path, and one worker
fork per batch group instead of one per cell.

As with the engine-overhaul acceptance test, the baseline is timed
live on this machine (a recorded number would gate on hardware, not
code), and timing is interleaved best-of-N so both arms see the same
cache, frequency, and interference conditions.  Measurements land in
``BENCH_batched.json`` for the CI artifact upload.
"""

import json
import time
from pathlib import Path

from repro.design.space import viable_designs
from repro.harness import CellSpec, RunSupervisor
from repro.harness.sweep import sweep_cells
from repro.sim.compile import get_compiled

#: Where the acceptance measurements are recorded (CI artifact).
BENCH_BATCHED_JSON = Path(__file__).resolve().parents[1] / \
    "BENCH_batched.json"

#: A 16-design slice of the viable space (one full batch group at the
#: default width): a spread of cluster counts, matching geometries,
#: and L2 capacities, so the lockstep drain sees heterogeneous cells,
#: not sixteen copies of the golden config.
DESIGN_IDX = (39, 44, 1, 46, 0, 40, 4, 2, 48, 34, 32, 11, 30, 45, 41, 43)
WORKLOAD = "djpeg"
BATCH_WIDTH = 16
ROUNDS = 3

#: Fields that legitimately differ between backends or runs; the
#: per-record ``metrics`` block carries wall-clock-derived values and
#: compile-cache counters, so it is compared key-filtered too.
_VOLATILE_RECORD_KEYS = frozenset(
    {"wall_s", "ts", "seq", "crc", "version", "backend",
     "backend_fallback"}
)
_VOLATILE_METRIC_KEYS = frozenset({"wall_s", "events_per_s"})


def _stripped(record: dict) -> dict:
    out = {k: v for k, v in record.items()
           if k not in _VOLATILE_RECORD_KEYS}
    metrics = out.get("metrics")
    if isinstance(metrics, dict):
        out["metrics"] = {
            k: v for k, v in metrics.items()
            if k not in _VOLATILE_METRIC_KEYS
            and not k.startswith("compile_cache_")
        }
    return out


def test_batched_sweep_speedup_acceptance():
    """Tentpole acceptance: >= 2x sweep-level cells/sec at batch
    width >= 8, bit-identical ledger records."""
    designs = viable_designs()
    specs = [
        CellSpec(config=designs[i].config, workload=WORKLOAD,
                 scale="tiny", max_cycles=200_000)
        for i in DESIGN_IDX
    ]
    # Warm the parent's compile cache so every forked worker -- plain
    # and batched alike -- inherits the decoded workload through
    # copy-on-write instead of re-compiling it.
    get_compiled(WORKLOAD, scale="tiny", threads=None)

    def sweep(backend: str) -> tuple[dict, float]:
        supervisor = RunSupervisor(
            backend=backend, batch_width=BATCH_WIDTH, timeout_s=120
        )
        started = time.perf_counter()
        records, _ = sweep_cells(
            specs, supervisor=supervisor, prevalidate=False
        )
        return records, time.perf_counter() - started

    # One unmeasured pass per arm heats the page cache and the
    # interpreter; then interleaved best-of-N wall time (the sweep
    # forks workers, so CPU time of this process would miss the cost
    # being amortised).
    sweep("plain")
    sweep("batched")
    best: dict[str, tuple[dict, float]] = {}
    for _ in range(ROUNDS):
        for backend in ("plain", "batched"):
            records, wall_s = sweep(backend)
            if backend not in best or wall_s < best[backend][1]:
                best[backend] = (records, wall_s)

    plain_records, plain_s = best["plain"]
    batched_records, batched_s = best["batched"]

    # Identity first: the speedup must change no recorded result.
    assert {h: _stripped(r) for h, r in batched_records.items()} \
        == {h: _stripped(r) for h, r in plain_records.items()}
    assert all(r.get("backend") == "batched"
               for r in batched_records.values())

    cells = len(specs)
    speedup = plain_s / batched_s
    payload = {
        "workload": WORKLOAD,
        "scale": "tiny",
        "cells": cells,
        "batch_width": BATCH_WIDTH,
        "isolation": "process",
        "rounds": ROUNDS,
        "plain_s": round(plain_s, 6),
        "batched_s": round(batched_s, 6),
        "plain_cells_per_s": round(cells / plain_s, 2),
        "batched_cells_per_s": round(cells / batched_s, 2),
        "speedup": round(speedup, 3),
        "records_identical": True,
    }
    BENCH_BATCHED_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n===== BENCH_batched =====\n"
          f"{json.dumps(payload, indent=2)}\n")

    assert speedup >= 2.0, (
        f"sweep-level speedup {speedup:.2f}x is below the 2x "
        f"acceptance floor (plain {cells / plain_s:.1f} cells/s, "
        f"batched {cells / batched_s:.1f} cells/s at width "
        f"{BATCH_WIDTH})"
    )
