"""Chaos-hook overhead guard: disabled hooks must be (nearly) free.

The chaos layer threads gates through the hot sweep path -- the
ledger's append/fsync hooks, the scheduler's post-dispatch kill check,
the supervisor's per-attempt sabotage lookup.  The contract from
DESIGN.md 5g is that a production sweep (``chaos=None``) pays only an
attribute test at each gate.  There is no hook-free variant left in
the tree to time, so the guard measures the next-strongest claim: an
*armed but idle* controller (every point disarmed, so every gate runs
its full selection logic and never fires) must stay within 2% of the
disabled path on the standard jobs=4 campaign.  The disabled path's
own cost is bounded above by that same delta.

Timing is interleaved best-of-N wall clock (the sweep fans out worker
processes, so driver CPU time alone would miss them), the same
discipline as ``test_sweep_throughput``.  Measurements land in
``BENCH_chaos.json`` at the repo root, next to ``BENCH_engine.json``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.design import viable_designs
from repro.harness import ChaosPlan, RunSupervisor, design_space_sweep
from repro.workloads import SPLASH_NAMES, Scale

from .conftest import full_sweep

BENCH_CHAOS_JSON = Path(__file__).resolve().parents[1] / \
    "BENCH_chaos.json"

OVERHEAD_CEILING = 0.02  # the <2% contract
#: Absolute slack absorbing timer granularity on very fast campaigns;
#: dominated by the relative ceiling on any realistic run.
EPSILON_S = 0.05
ROUNDS = 3


def campaign():
    """Smallest-area viable designs: the overhead contract is about
    per-cell gate cost, so many cheap cells beat few expensive ones
    (and keep three interleaved rounds affordable in CI)."""
    designs = sorted(viable_designs(), key=lambda d: d.area_mm2)
    if full_sweep():
        return designs[:12], SPLASH_NAMES
    return designs[:6], SPLASH_NAMES[:4]


def run_sweep(tmp_path, tag, chaos):
    designs, names = campaign()
    points, report = design_space_sweep(
        designs, names, scale=Scale.TINY, threaded=False,
        ledger_path=tmp_path / f"{tag}.jsonl", jobs=4,
        supervisor=RunSupervisor(isolation="inline"),
        chaos=chaos,
    )
    assert report.total > 0 and not report.aborted
    return points, report


def interleaved_best(fn_a, fn_b, rounds):
    best_a = best_b = float("inf")
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            fn_a()
            best_a = min(best_a, time.perf_counter() - started)
            started = time.perf_counter()
            fn_b()
            best_b = min(best_b, time.perf_counter() - started)
    finally:
        gc.enable()
    return best_a, best_b


def test_disabled_chaos_hooks_are_free(tmp_path):
    inert = ChaosPlan(points=(), rate=0.0).controller()
    runs = {"disabled": 0, "inert": 0}

    def disabled():
        runs["disabled"] += 1
        return run_sweep(tmp_path / f"off{runs['disabled']}",
                         "off", None)

    def armed_idle():
        runs["inert"] += 1
        return run_sweep(tmp_path / f"idle{runs['inert']}",
                         "idle", inert)

    # Identity first: an idle controller must not change any result.
    baseline_points, baseline_report = disabled()
    idle_points, _ = armed_idle()
    assert idle_points == baseline_points
    assert not inert.events  # nothing may have fired

    disabled_s, inert_s = interleaved_best(disabled, armed_idle,
                                           ROUNDS)
    overhead = inert_s / disabled_s - 1.0

    designs, names = campaign()
    cells = baseline_report.total
    payload = {
        "campaign": {
            "designs": len(designs),
            "workloads": list(names),
            "scale": "tiny",
            "jobs": 4,
            "cells": cells,
        },
        "rounds": ROUNDS,
        "disabled_s": round(disabled_s, 4),
        "armed_idle_s": round(inert_s, 4),
        "overhead": round(overhead, 4),
        "ceiling": OVERHEAD_CEILING,
        "disabled_cells_per_s": round(cells / disabled_s, 2),
        "verdicts_identical": True,
    }
    BENCH_CHAOS_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n===== BENCH_chaos =====\n{json.dumps(payload, indent=2)}\n")

    assert inert_s <= disabled_s * (1.0 + OVERHEAD_CEILING) \
        + EPSILON_S, (
        f"chaos hooks cost {overhead:.1%} on the jobs=4 sweep "
        f"(disabled {disabled_s:.3f}s vs armed-idle {inert_s:.3f}s); "
        f"ceiling is {OVERHEAD_CEILING:.0%}"
    )
