"""Figure 6: area-vs-AIPC scatter for the three workload groups.

Evaluates SpecINT, SpecFP+Mediabench and Splash2 over the design
space; regenerates one point cloud per suite with its Pareto frontier
marked, and checks the figure's qualitative content:

* the Splash2 frontier keeps rising across the whole area range
  (multithreading converts area into performance),
* the single-threaded frontiers flatten (the paper's knee): the last
  doubling of area buys single-threaded code far less than it buys
  Splash2.
"""

from repro.core.experiments import evaluate_design_space
from repro.design import pareto_front, viable_designs
from repro.workloads import MEDIA_NAMES, SPLASH_NAMES

from .conftest import bench_scale, full_sweep

SPECINT = ("gzip", "mcf", "twolf")
SPECFP_MEDIA = ("ammp", "art", "equake") + tuple(MEDIA_NAMES)


def design_subset():
    designs = viable_designs()
    if full_sweep():
        return designs
    subset = designs[::4]
    if designs[-1] not in subset:
        subset.append(designs[-1])
    return subset


def render(suite_name, points):
    front = set(id(p) for p in pareto_front(points))
    lines = [f"-- {suite_name} --",
             f"{'area':>7} {'AIPC':>7}  configuration"]
    for p in sorted(points, key=lambda p: p.area):
        mark = "*" if id(p) in front else " "
        lines.append(f"{p.area:>7.0f} {p.performance:>7.3f} {mark} {p.label}")
    lines.append("(* = Pareto optimal)")
    return "\n".join(lines)


def run_all():
    # cache shared across benches: keys fully identify runs
    designs = design_subset()
    scale = bench_scale()
    return {
        "SpecINT": evaluate_design_space(designs, SPECINT, scale),
        "SpecFP+Mediabench": evaluate_design_space(
            designs, SPECFP_MEDIA, scale
        ),
        "Splash2": evaluate_design_space(
            designs, SPLASH_NAMES, scale, threaded=True
        ),
    }


def test_fig6_scatter(record, benchmark):
    from repro.report import scatter

    suites = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = "\n\n".join(render(name, pts) for name, pts in suites.items())
    plots = "\n\n".join(
        scatter(pts, title=name) for name, pts in suites.items()
    )
    record("fig6_pareto_scatter", text + "\n\n" + plots)

    fronts = {name: pareto_front(pts) for name, pts in suites.items()}
    splash = fronts["Splash2"]

    # The figure's signature: the single-threaded frontiers *terminate*
    # -- beyond the knee no larger design is Pareto optimal, because
    # single-threaded code cannot use more clusters (Section 4.2:
    # "None of the single-threaded applications can profitably use
    # more than one cluster").  The Splash2 frontier keeps extending
    # across the area range.
    for name in ("SpecINT", "SpecFP+Mediabench"):
        assert splash[-1].area > 1.8 * fronts[name][-1].area, (
            name, splash[-1].area, fronts[name][-1].area
        )
    # Single-threaded frontiers are single-cluster only.
    for name in ("SpecINT", "SpecFP+Mediabench"):
        knee_region = [p for p in fronts[name] if p.area <= 100]
        assert knee_region, name
    # Splash2's biggest design meaningfully beats its smallest.
    assert splash[-1].performance > 1.5 * splash[0].performance
