"""Figure 7: scalable design points (the a/b/c/d/e analysis).

Identifies the paper's named configurations over our evaluated design
space and replicates tiles naively:

* 'a' -- the best-performing one-cluster design (the knee),
* 'b' -- 'a' replicated x4 (naive scaling; far off the frontier),
* 'c' -- the one-cluster design with the best performance per area,
* 'd' -- 'c' replicated x4 (nearly Pareto-optimal),
* 'e' -- the smallest Pareto-optimal four-cluster design, whose x4
  replication ('e16') continues the linear trend.

Checked shapes (Section 4.2):

* 'b' costs much more silicon than 'd' at similar performance --
  "scaling a design scales its inefficiencies",
* area efficiency (AIPC/mm^2): d beats b, and e16 is competitive with
  d -- "the optimal tile configuration varies with processor size".
"""

from repro.core.experiments import (
    evaluate_design_space,
    scaling_study,
)
from repro.design import viable_designs
from repro.workloads import SPLASH_NAMES

from .conftest import bench_scale, full_sweep


def design_subset():
    designs = viable_designs()
    if full_sweep():
        return designs
    # The study needs *every* one-cluster point (the knee must be
    # findable) and decent 4-cluster coverage.
    subset = [d for d in designs if d.config.clusters == 1]
    subset += [d for i, d in enumerate(designs)
               if d.config.clusters == 4 and i % 2 == 0]
    return subset


def run_study():
    # cache shared across benches: keys fully identify runs
    return scaling_study(
        scale=bench_scale(), names=SPLASH_NAMES, designs=design_subset()
    )


def test_fig7_scaling(record, benchmark):
    study, measured = benchmark.pedantic(run_study, rounds=1, iterations=1)

    def eff(aipc, area):
        return aipc / area * 1000

    rows = [
        ("a (best 1-cluster)", study.a.payload.describe(), study.a.area,
         measured["a"]),
        ("b = a x4 (naive)", study.b.config.describe(), study.b.area_mm2,
         measured["b"]),
        ("c (best AIPC/mm2)", study.c.payload.describe(), study.c.area,
         measured["c"]),
        ("d = c x4", study.d.config.describe(), study.d.area_mm2,
         measured["d"]),
        ("e (small 4-cluster)", study.e.payload.describe(), study.e.area,
         measured["e"]),
        ("e16 = e x4", study.e16.config.describe(), study.e16.area_mm2,
         measured["e16"]),
    ]
    lines = [f"{'design':<22}{'configuration':<42}{'area':>7}"
             f"{'AIPC':>7}{'AIPC/mm2 x1000':>15}"]
    for name, desc, area, aipc in rows:
        lines.append(
            f"{name:<22}{desc:<42}{area:>7.0f}{aipc:>7.2f}"
            f"{eff(aipc, area):>15.2f}"
        )
    record("fig7_scaling_study", "\n".join(lines))

    # Naive scaling of the knee design wastes silicon: 'b' is much
    # larger than 'd' (paper: 370 vs 207 mm^2) ...
    assert study.b.area_mm2 > 1.3 * study.d.area_mm2
    # ... and far less area-efficient than its own tile -- "scaling a
    # design scales its inefficiencies as well".
    assert eff(measured["b"], study.b.area_mm2) < \
        0.6 * eff(measured["a"], study.a.area)
    # The optimal tile varies with processor size: at ~330-370 mm^2 the
    # lean 'e' tile replicated ('e16') is competitive with naively
    # scaled 'b' per mm^2.  (The paper has e16 strictly ahead; at tiny
    # problem scale the V32 'e' tile hosts too few threads per cluster
    # to win outright -- see EXPERIMENTS.md.)
    assert eff(measured["e16"], study.e16.area_mm2) >= \
        0.80 * eff(measured["b"], study.b.area_mm2)
    # Replication converts area into multithreaded performance for a
    # balanced tile.
    assert measured["e16"] > measured["e"] * 0.95
    # The paper's central comparison: 'd' (the efficient tile scaled)
    # reaches essentially 'b's performance at roughly half the area,
    # hence far better area efficiency.
    assert eff(measured["d"], study.d.area_mm2) > \
        eff(measured["b"], study.b.area_mm2)
