"""Figure 8: traffic distribution across the interconnect hierarchy.

Measures, for all three workload groups and for Splash2 at 1, 4 and
16 clusters, the fraction of messages at each level (pod, domain,
cluster, grid) and the operand/memory split, plus the latency and
congestion trends of Section 4.3.

Paper's numbers to match in shape: ~40% of traffic within a pod, ~52%
within a domain, >80% (multithreaded: >98%) within a cluster; operand
data ~80% of messages; inter-cluster share ~1.5%; message latency up
~12% from 1 to 16 clusters.
"""

from repro.core import WaveScalarConfig
from repro.core.experiments import (
    best_threaded_result,
    run_cached,
    traffic_profile,
)
from repro.workloads import MEDIA_NAMES, SPEC_NAMES, SPLASH_NAMES

from .conftest import bench_scale

SPLASH_CONFIGS = {
    1: WaveScalarConfig(clusters=1, l2_mb=1),
    4: WaveScalarConfig(clusters=4, virtualization=64, matching_entries=64,
                        l2_mb=1),
    16: WaveScalarConfig(clusters=16, virtualization=64,
                         matching_entries=64, l1_kb=8, l2_mb=1),
}
SINGLE = WaveScalarConfig(clusters=1, l2_mb=1)


def run_profiles():
    # cache shared across benches: keys fully identify runs
    scale = bench_scale()
    profiles = {
        "Spec (1 cluster)": traffic_profile(SINGLE, SPEC_NAMES, scale),
        "Mediabench (1 cluster)": traffic_profile(
            SINGLE, MEDIA_NAMES, scale
        ),
    }
    for clusters, config in SPLASH_CONFIGS.items():
        profiles[f"Splash2 ({clusters} clusters)"] = traffic_profile(
            config, SPLASH_NAMES, scale, threaded=True
        )
    return profiles


def latency_trend():
    """Average message latency on Splash2 at 1 vs 16 clusters."""
    scale = bench_scale()
    out = {}
    for clusters, config in SPLASH_CONFIGS.items():
        total_lat, total_msg = 0.0, 0
        for name in SPLASH_NAMES:
            result = best_threaded_result(config, name, scale)
            total_lat += result.stats.message_latency_sum
            total_msg += result.stats.message_count
        out[clusters] = total_lat / total_msg
    return out


def test_fig8_traffic(record, benchmark):
    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    lines = [
        f"{'workload group':<26}{'pod':>6}{'domain':>8}{'cluster':>9}"
        f"{'grid':>6}{'operand':>9}{'memory':>8}"
    ]
    for name, p in profiles.items():
        lines.append(
            f"{name:<26}{p['pod']:>6.0%}{p['domain']:>8.0%}"
            f"{p['cluster']:>9.0%}{p['grid']:>6.1%}"
            f"{p['operand']:>9.0%}{p['memory']:>8.0%}"
        )
    lat = latency_trend()
    lines.append(
        f"\navg message latency: 1 cluster {lat[1]:.1f}cyc, 4 clusters "
        f"{lat[4]:.1f}cyc, 16 clusters {lat[16]:.1f}cyc "
        f"(+{lat[16] / lat[1] - 1:.0%} from 1 to 16; paper +12%)"
    )
    from repro.report import traffic_chart

    lines.append("")
    lines.append(traffic_chart(profiles))
    record("fig8_traffic_distribution", "\n".join(lines))

    for name, p in profiles.items():
        within = p["pod"] + p["domain"] + p["cluster"]
        # Paper: >80% within a cluster everywhere; >98% for Splash2.
        assert within > 0.85, (name, within)
        # Operand data dominates (paper ~80/20).
        assert 0.55 < p["operand"] < 0.95, (name, p["operand"])
        # Inner levels carry substantial traffic (paper: ~40% pod,
        # ~52% within a domain).
        assert p["pod"] + p["domain"] > 0.3, name
    splash16 = profiles["Splash2 (16 clusters)"]
    assert splash16["grid"] < 0.10  # paper: ~1.5% inter-cluster
    # Latency rises only modestly with size (paper: +12%).
    assert lat[16] < 1.6 * lat[1]
