"""The headline claim: multithreaded performance scales with area.

Paper (Table 5 / Section 4.2): Splash2 AIPC grows from 1.3 at ~39 mm^2
to 13.3 at ~399 mm^2.  This bench measures the same three processor
sizes on fft at MEDIUM problem scale (big enough that per-thread work
doesn't run out), at each size's best thread count -- the minimal,
direct evidence for the scaling result, independent of the full Pareto
sweeps.
"""

from repro.area import chip_area
from repro.core import WaveScalarConfig
from repro.core.experiments import run_cached
from repro.workloads import Scale

SIZES = [
    WaveScalarConfig(clusters=1, l2_mb=1),
    WaveScalarConfig(clusters=4, virtualization=64, matching_entries=64,
                     l2_mb=1),
    WaveScalarConfig(clusters=16, virtualization=64, matching_entries=64,
                     l1_kb=8, l2_mb=1),
]
THREADS = (32, 64, 128)
WORKLOAD = "fft"


def run_scaling():
    # cache shared across benches: keys fully identify runs
    rows = []
    for config in SIZES:
        best = None
        for threads in THREADS:
            try:
                result = run_cached(
                    config, WORKLOAD, Scale.MEDIUM, threads=threads
                )
            except ValueError:
                continue
            if best is None or result.aipc > best.aipc:
                best = result
        rows.append((config, chip_area(config), best))
    return rows


def test_headline_scaling(record, benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    lines = [f"{'configuration':<44}{'area':>7}{'thr':>5}{'AIPC':>7}"]
    for config, area, best in rows:
        lines.append(
            f"{config.describe():<44}{area:>7.0f}{best.threads:>5}"
            f"{best.aipc:>7.2f}"
        )
    lines.append(
        "\npaper (Table 5, Splash2 average): 1.3 AIPC @ 39mm^2 -> "
        "13.3 AIPC @ 399mm^2"
    )
    record("headline_multithreaded_scaling", "\n".join(lines))

    aipcs = [best.aipc for _, _, best in rows]
    areas = [area for _, area, _ in rows]
    # Monotone growth across the three sizes ...
    assert aipcs[1] > aipcs[0]
    assert aipcs[2] > aipcs[1]
    # ... covering the paper's area range ...
    assert areas[0] < 70 and areas[-1] > 350
    # ... with a substantial overall factor.
    assert aipcs[-1] > 1.5 * aipcs[0]
