"""Placement ablation (Section 1 / Section 4.3 claims).

The paper credits the hierarchical interconnect's locality to the
placement algorithm ("instructions that communicate frequently are
placed in close proximity") and to thread isolation ("placement
algorithms isolate individual Splash threads into different portions
of the die").  This bench removes each property and measures the
damage:

* ``random``            -- locality within the home cluster only,
* ``whole_chip_random`` -- no thread isolation at all.

Expected shape: snake >= random >> whole_chip_random in AIPC, and the
within-cluster traffic fraction collapses only when thread isolation
is removed.
"""

from repro.core import WaveScalarConfig
from repro.place import POLICIES, edge_locality, place_with_policy
from repro.sim.engine import Engine
from repro.workloads import get

from .conftest import bench_scale

CONFIG = WaveScalarConfig(clusters=4, l2_mb=1)
WORKLOADS = ("water", "fft")
THREADS = 8


def run_policies():
    rows = []
    for policy in POLICIES:
        aipc_sum, wcf_sum, static_sum = 0.0, 0.0, 0.0
        for name in WORKLOADS:
            w = get(name)
            graph = w.instantiate(bench_scale(), threads=THREADS)
            placement = place_with_policy(graph, CONFIG, policy)
            engine = Engine(graph, CONFIG, placement)
            stats = engine.run()
            assert stats.output_values() == w.expected(
                bench_scale(), threads=THREADS
            ), (policy, name)
            aipc_sum += stats.aipc
            wcf_sum += stats.within_cluster_fraction()
            static_sum += edge_locality(
                graph, placement, CONFIG
            ).within_cluster_fraction()
        n = len(WORKLOADS)
        rows.append((policy, aipc_sum / n, wcf_sum / n, static_sum / n))
    return rows


def test_placement_ablation(record, benchmark):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    lines = [f"{'policy':<20}{'AIPC':>7}{'dyn within-cluster':>20}"
             f"{'static within-cluster':>23}"]
    for policy, aipc, wcf, swcf in rows:
        lines.append(f"{policy:<20}{aipc:>7.2f}{wcf:>20.1%}{swcf:>23.1%}")
    record("ablation_placement", "\n".join(lines))

    by_policy = {r[0]: r for r in rows}
    snake = by_policy["snake"]
    chip_random = by_policy["whole_chip_random"]
    # Thread isolation is what keeps traffic local.
    assert snake[2] > 0.9
    assert chip_random[2] < 0.6
    # And losing it costs real performance.
    assert chip_random[1] < snake[1]
    # Cluster-local random keeps locality high (isolation does the
    # heavy lifting) but still trails the snake.
    assert by_policy["random"][2] > 0.85
    # The profile-guided annealer (documented negative result): close
    # to the snake, never dramatically better on measured AIPC.
    if "anneal" in by_policy:
        assert by_policy["anneal"][1] > 0.6 * snake[1]
        assert by_policy["anneal"][2] > 0.85
