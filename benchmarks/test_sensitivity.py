"""Parameter sensitivity: which tile knobs matter (Section 4.2).

One-at-a-time sweep around a mid-range tile, evaluated on a mixed
workload sample.  Reproduces the paper's qualitative ranking: cache
capacity and instruction capacity dominate; interconnect-adjacent
parameters (PSQs) matter but less; and no single parameter is free --
"the design's inefficiencies scale as well".
"""

import logging

from repro.core import WaveScalarConfig
from repro.core.experiments import run_cached
from repro.design import render_sensitivity, sensitivity_sweep
from repro.sim.failures import SimulationDeadlock
from repro.workloads import get

from .conftest import bench_scale

logger = logging.getLogger("repro.harness")

BASE = WaveScalarConfig(
    clusters=1, virtualization=64, matching_entries=64, l1_kb=16, l2_mb=1
)
APPS = ("mcf", "ammp", "djpeg")
THREADED = ("radix",)


def evaluate(config: WaveScalarConfig) -> float:
    scale = bench_scale()
    total = 0.0
    names = APPS + THREADED
    for name in names:
        kwargs = {"threads": 4} if get(name).multithreaded else {}
        try:
            total += run_cached(
                config, name, scale, max_cycles=5_000_000, **kwargs
            ).aipc
        except SimulationDeadlock as exc:
            # Scores zero, but auditable: the taxonomy class says
            # whether the design deadlocked or merely outgrew budget.
            logger.warning(
                "%s scored 0 on %s: %s", name, config.describe(),
                type(exc).__name__,
            )
    return total / len(names)


def test_sensitivity(record, benchmark):
    # cache shared across benches: keys fully identify runs
    axes = benchmark.pedantic(
        lambda: sensitivity_sweep(BASE, evaluate), rounds=1, iterations=1
    )
    record("sensitivity_one_at_a_time", render_sensitivity(axes))

    by_name = {axis.parameter: axis for axis in axes}
    # Memory-system and capacity knobs are the big levers (paper:
    # Table 5's performance jumps come from L2 and capacity).
    assert by_name["l2_mb"].performance_swing > 1.1
    # Every axis is finite and sane.
    for axis in axes:
        assert axis.performance_swing < 50
        assert axis.area_swing >= 1.0
    # PE count matters for parallel work.
    assert by_name["pes_per_domain"].performance_swing >= 1.0
