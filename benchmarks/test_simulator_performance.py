"""Simulator engineering benchmarks.

Unlike the experiment benches (which regenerate paper results once),
these use pytest-benchmark's statistical timing to track the
simulator's own speed: events per second on a fixed workload, and the
cost of the two main front-end phases (build, place).  They exist so
an engine regression shows up as a number, not as a mysteriously slow
Pareto sweep.

The observability cost-contract tests at the bottom enforce the
"<2% overhead when disabled" promise of :mod:`repro.obs.profile` by
comparing the real engine against a hook-free variant synthesised
from its own source.
"""

import ast
import gc
import inspect
import json
import time
import types
from dataclasses import asdict
from pathlib import Path

import repro.sim.engine as engine_module
from repro.core import WaveScalarConfig
from repro.place.snake import place
from repro.sim.engine import Engine
from repro.workloads import Scale, get

CONFIG = WaveScalarConfig(
    clusters=4, virtualization=64, matching_entries=64, l2_mb=1
)

#: Where the engine speedup acceptance test records its measurements
#: (uploaded as a CI artifact).
BENCH_ENGINE_JSON = Path(__file__).resolve().parents[1] / \
    "BENCH_engine.json"


def test_engine_throughput(benchmark):
    """Cycle-level simulation speed on a threaded workload."""
    workload = get("fft")
    graph = workload.instantiate(Scale.SMALL, threads=32)
    placement = place(graph, CONFIG)

    def run():
        return Engine(graph, CONFIG, placement).run().dispatches

    dispatches = benchmark(run)
    assert dispatches > 0


def test_graph_build_speed(benchmark):
    """Toolchain speed: building a threaded kernel graph."""
    workload = get("radix")

    def build():
        return len(workload.instantiate(Scale.SMALL, threads=32))

    size = benchmark(build)
    assert size > 1000


def test_placement_speed(benchmark):
    workload = get("ocean")
    graph = workload.instantiate(Scale.SMALL, threads=16)

    def run():
        return place(graph, CONFIG).used_pes()

    used = benchmark(run)
    assert used > 0


# ----------------------------------------------------------------------
# Hot-path overhaul acceptance
# ----------------------------------------------------------------------
def test_engine_speedup_acceptance():
    """Tentpole acceptance: one sweep attempt through the overhauled
    path (cached compiled workload + hot-path engine) must process at
    least 1.5x the events/sec of the seed engine's rebuild-everything
    attempt, while producing bit-identical :class:`SimStats`.

    The baseline is the seed engine itself, frozen verbatim in
    ``repro.sim._legacy`` and timed live on this machine -- a recorded
    number from other hardware would gate on the machine, not the
    code.  Timing is interleaved best-of-N CPU time (see
    :func:`_interleaved_best`), the only measurement stable enough on
    shared CI runners to hang an acceptance bound on.  Both
    measurements land in ``BENCH_engine.json``.
    """
    from repro.sim._legacy.engine import Engine as LegacyEngine
    from repro.sim.compile import clear_cache, get_compiled

    workload = get("fft")
    scale, threads = Scale.SMALL, 32

    def legacy_attempt():
        # The seed path: rebuild graph, placement, and decode, run,
        # then recompute the reference outputs -- per attempt.
        graph = workload.instantiate(scale, threads=threads, seed=0)
        placement = place(graph, CONFIG)
        stats = LegacyEngine(graph, CONFIG, placement).run()
        workload.expected(scale=scale, threads=threads, seed=0)
        return stats

    def compiled_attempt():
        # The overhauled path: compile once per process, reuse the
        # decode and the memoised reference outputs every attempt.
        compiled = get_compiled("fft", scale=scale, threads=threads)
        graph = compiled.graph
        placement = place(graph, CONFIG)
        stats = Engine(
            graph, CONFIG, placement, compiled=compiled.decoded
        ).run()
        compiled.expected_outputs()
        return stats

    clear_cache()
    # Identity first: the speedup must change no simulated result.
    legacy_stats = legacy_attempt()
    new_stats = compiled_attempt()
    assert asdict(new_stats) == asdict(legacy_stats)
    assert new_stats.aipc == legacy_stats.aipc

    events = new_stats.events_processed
    legacy_s, attempt_s = _interleaved_best(
        legacy_attempt, compiled_attempt, rounds=5
    )
    attempt_speedup = legacy_s / attempt_s

    # Engine-run-only comparison on identical prebuilt inputs, to
    # separate the loop overhaul from the compile-cache win.
    graph = workload.instantiate(scale, threads=threads, seed=0)
    placement = place(graph, CONFIG)
    compiled = get_compiled("fft", scale=scale, threads=threads)
    legacy_run_s, run_s = _interleaved_best(
        lambda: LegacyEngine(graph, CONFIG, placement).run(),
        lambda: Engine(
            compiled.graph, CONFIG, place(compiled.graph, CONFIG),
            compiled=compiled.decoded,
        ).run(),
        rounds=5,
    )

    payload = {
        "workload": "fft",
        "scale": scale.value,
        "threads": threads,
        "events": events,
        "attempt": {
            "legacy_s": round(legacy_s, 6),
            "new_s": round(attempt_s, 6),
            "speedup": round(attempt_speedup, 3),
            "legacy_events_per_s": round(events / legacy_s, 1),
            "new_events_per_s": round(events / attempt_s, 1),
        },
        "engine_run_only": {
            "legacy_s": round(legacy_run_s, 6),
            "new_s": round(run_s, 6),
            "speedup": round(legacy_run_s / run_s, 3),
        },
        "stats_identical": True,
    }
    BENCH_ENGINE_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n===== BENCH_engine =====\n{json.dumps(payload, indent=2)}\n")

    assert attempt_speedup >= 1.5, (
        f"attempt-level speedup {attempt_speedup:.2f}x is below the "
        f"1.5x acceptance floor (legacy {legacy_s * 1e3:.1f} ms, "
        f"overhauled {attempt_s * 1e3:.1f} ms)"
    )


# ----------------------------------------------------------------------
# Observability cost contract
# ----------------------------------------------------------------------
class _StripProfilingHooks(ast.NodeTransformer):
    """Remove the engine's profiling machinery entirely: the
    branch-once ``if prof is None`` in ``run()`` collapses to the
    plain path, ``prof`` assignments disappear, and the profiled loop
    twin plus the hook-installation methods are deleted.  The result
    is the engine as it would look with no profiling support at all --
    the control group for the overhead bound.
    """

    _PROFILING_DEFS = (
        "_run_profiled",
        "_install_profile_hooks",
        "_uninstall_profile_hooks",
    )

    def visit_FunctionDef(self, node: ast.FunctionDef):
        if node.name in self._PROFILING_DEFS:
            return None
        self.generic_visit(node)
        return node

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "prof"
            and len(test.ops) == 1
        ):
            if isinstance(test.ops[0], ast.Is):  # if prof is None
                return node.body
            if isinstance(test.ops[0], ast.IsNot):
                return node.orelse or None
        return node

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "prof":
                return None
            if isinstance(target, ast.Attribute) and \
                    target.attr == "_prof":
                return None
        return node


def _compile_engine_class(name: str, strip_hooks: bool):
    """Compile an Engine class from the engine module's own source.

    Both benchmark variants go through this path -- the control group
    with the profiling machinery AST-stripped, the subject verbatim --
    so neither side benefits from warmer code objects (CPython's
    adaptive interpreter specialises per code object, and the imported
    module's bytecode has been heated by every earlier test).
    """
    source = inspect.getsource(engine_module)
    tree = ast.parse(source)
    if strip_hooks:
        tree = ast.fix_missing_locations(
            _StripProfilingHooks().visit(tree)
        )
        leftover = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.Name) and node.id == "prof"
        ]
        assert not leftover, "profiling hooks survived the strip"
    module = types.ModuleType(name)
    module.__package__ = engine_module.__package__  # relative imports
    module.__file__ = engine_module.__file__
    exec(compile(tree, f"<{name}>", "exec"), module.__dict__)
    return module.Engine


def hookless_engine_class():
    """The Engine class compiled from profiling-hook-free source."""
    return _compile_engine_class("_engine_hookless", strip_hooks=True)


def _interleaved_best(fn_a, fn_b, rounds: int) -> tuple[float, float]:
    """Best-of-N for two variants, alternating within each round so
    both see the same cache/frequency/interference conditions.  Times
    CPU seconds, not wall seconds: the contract is about instructions
    the hooks would add, and process_time is immune to the scheduling
    and steal-time noise of shared machines."""
    best_a = best_b = float("inf")
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.process_time()
            fn_a()
            best_a = min(best_a, time.process_time() - started)
            started = time.process_time()
            fn_b()
            best_b = min(best_b, time.process_time() - started)
    finally:
        gc.enable()
    return best_a, best_b


#: Methods whose bytecode is *allowed* to differ once profiling
#: support is stripped: the once-per-run branch in ``run`` and the
#: ``self._prof`` seed in ``__init__``.  Everything else -- the whole
#: per-event path -- must compile to byte-identical code.
_ONCE_PER_RUN = {"run", "__init__"}
_STRIPPED = set(_StripProfilingHooks._PROFILING_DEFS) | {"_run_profiled"}


def test_disabled_instrumentation_overhead_below_two_percent():
    """The cost contract of repro.obs: with no trace and no profile
    attached, the engine must cost less than 2% versus an engine with
    the profiling machinery compiled out entirely.

    The bound is enforced structurally, not by a stopwatch: every
    method on the per-event path must compile to *byte-identical*
    code whether or not profiling support exists in the source.  Zero
    added instructions per event is an overhead of 0% < 2% regardless
    of machine noise.  A coarse timing comparison rides along as a
    sanity check that the once-per-run setup stays negligible.
    """
    Hookless = _compile_engine_class("_engine_hookless", strip_hooks=True)
    Hooked = _compile_engine_class("_engine_hooked", strip_hooks=False)

    compared = 0
    for name, member in vars(Hooked).items():
        if not inspect.isfunction(member):
            continue
        if name in _ONCE_PER_RUN or name in _STRIPPED:
            continue
        twin = vars(Hookless).get(name)
        assert twin is not None, f"{name} missing from hookless engine"
        assert member.__code__.co_code == twin.__code__.co_code, (
            f"Engine.{name} compiles differently without profiling "
            f"support: the disabled path is carrying hook code"
        )
        compared += 1
    assert compared >= 8, f"only {compared} methods compared"

    workload = get("fft")
    graph = workload.instantiate(Scale.SMALL, threads=8)
    placement = place(graph, CONFIG)

    def instrumented():
        return Hooked(graph, CONFIG, placement).run()

    def bare():
        return Hookless(graph, CONFIG, placement).run()

    assert instrumented().dispatches == bare().dispatches  # same sim
    best_instrumented, best_bare = _interleaved_best(
        instrumented, bare, rounds=5
    )
    ratio = best_instrumented / best_bare
    # The hot loops are bytecode-identical (asserted above), so any
    # measured gap is setup cost plus noise; shared machines show a
    # +/-15% noise floor, hence the loose sanity bound.
    assert ratio <= 1.25, (
        f"engines with identical hot loops measured {ratio - 1:.2%} "
        f"apart: once-per-run setup has become pathological"
    )


def test_enabled_profiler_attributes_the_hot_loop():
    """Sanity for the other side of the contract: an attached profile
    actually attributes the run's time to the pipeline phases."""
    from repro.obs.profile import PhaseProfile

    workload = get("fft")
    graph = workload.instantiate(Scale.SMALL, threads=8)
    placement = place(graph, CONFIG)
    engine = Engine(graph, CONFIG, placement)
    engine.profile = PhaseProfile()
    started = time.perf_counter()
    engine.run()
    wall_ns = (time.perf_counter() - started) * 1e9
    attributed = engine.profile.total_ns
    assert attributed > 0
    # Self-time accounting never double counts: the attributed total
    # cannot exceed the wall time of the run.
    assert attributed <= wall_ns
    fractions = engine.profile.fractions()
    assert fractions["dispatch"] > 0 and fractions["input"] > 0


def test_interpreter_speed(benchmark):
    """Functional golden-model speed (used by every correctness check)."""
    from repro.lang.interp import interpret

    graph = get("twolf").instantiate(Scale.SMALL)

    def run():
        return interpret(graph).dynamic_instructions

    dynamic = benchmark(run)
    assert dynamic > 1000
