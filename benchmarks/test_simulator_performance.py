"""Simulator engineering benchmarks.

Unlike the experiment benches (which regenerate paper results once),
these use pytest-benchmark's statistical timing to track the
simulator's own speed: events per second on a fixed workload, and the
cost of the two main front-end phases (build, place).  They exist so
an engine regression shows up as a number, not as a mysteriously slow
Pareto sweep.
"""

from repro.core import WaveScalarConfig
from repro.place.snake import place
from repro.sim.engine import Engine
from repro.workloads import Scale, get

CONFIG = WaveScalarConfig(
    clusters=4, virtualization=64, matching_entries=64, l2_mb=1
)


def test_engine_throughput(benchmark):
    """Cycle-level simulation speed on a threaded workload."""
    workload = get("fft")
    graph = workload.instantiate(Scale.SMALL, threads=32)
    placement = place(graph, CONFIG)

    def run():
        return Engine(graph, CONFIG, placement).run().dispatches

    dispatches = benchmark(run)
    assert dispatches > 0


def test_graph_build_speed(benchmark):
    """Toolchain speed: building a threaded kernel graph."""
    workload = get("radix")

    def build():
        return len(workload.instantiate(Scale.SMALL, threads=32))

    size = benchmark(build)
    assert size > 1000


def test_placement_speed(benchmark):
    workload = get("ocean")
    graph = workload.instantiate(Scale.SMALL, threads=16)

    def run():
        return place(graph, CONFIG).used_pes()

    used = benchmark(run)
    assert used > 0


def test_interpreter_speed(benchmark):
    """Functional golden-model speed (used by every correctness check)."""
    from repro.lang.interp import interpret

    graph = get("twolf").instantiate(Scale.SMALL)

    def run():
        return interpret(graph).dynamic_instructions

    dynamic = benchmark(run)
    assert dynamic > 1000
