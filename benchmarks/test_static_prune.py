"""BENCH_prune: static-bound pruning on the default Figure 6 study.

Runs the default design study (every third viable design) over the
SpecINT+SpecFP suite twice -- once unpruned, once with ``prune=True``
-- and checks the three contractual properties of the prune driver:

* **Soundness**: the static AIPC upper bound dominates the measured
  AIPC for every cell the unpruned sweep completed.
* **Frontier identity**: the pruned sweep's Pareto frontier is
  bit-identical to the unpruned one.
* **Effectiveness**: at least 20% of the study's cells are skipped
  as ``pruned_static`` (the descending-bound lane order is what makes
  this hold; suite order alone prunes under 3%).

The machine-readable evidence is written to
``benchmarks/results/BENCH_prune.json``.
"""

import json
import time

import pytest

from repro.analysis.dataflow import bound_for_cell
from repro.design import pareto_front, viable_designs
from repro.harness.ledger import Ledger
from repro.harness.spec import CellSpec
from repro.harness.sweep import design_space_sweep

from .conftest import RESULTS_DIR, bench_scale, full_sweep

SPEC_SUITE = ("gzip", "mcf", "twolf", "ammp", "art", "equake")
MAX_CYCLES = 2_000_000
MIN_PRUNE_RATE = 0.20


def design_subset():
    designs = viable_designs()
    return designs if full_sweep() else designs[::3]


def run_study(designs, ledger_path, *, prune):
    start = time.monotonic()
    points, report = design_space_sweep(
        designs,
        SPEC_SUITE,
        scale=bench_scale(),
        ledger_path=ledger_path,
        isolation="inline",
        timeout_s=None,
        max_cycles=MAX_CYCLES,
        prune=prune,
    )
    wall_s = time.monotonic() - start
    records = Ledger(ledger_path).load().values()
    measured = {}
    for record in records:
        key = (record["config"], record["workload"])
        if record["status"] == "ok":
            measured[key] = record["aipc"]
    return points, report, measured, wall_s


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    root = tmp_path_factory.mktemp("prune_study")
    designs = design_subset()
    unpruned = run_study(designs, root / "unpruned.jsonl", prune=False)
    pruned = run_study(designs, root / "pruned.jsonl", prune=True)
    return designs, unpruned, pruned


def cell_bounds(designs):
    bounds = {}
    for design in designs:
        for name in SPEC_SUITE:
            spec = CellSpec(
                config=design.config, workload=name, scale="tiny"
            )
            bounds[(design.config.describe(), name)] = \
                bound_for_cell(spec)
    return bounds


def frontier(points):
    return [(p.label, p.area, p.performance)
            for p in pareto_front(points)]


def test_bench_prune(study, record):
    designs, unpruned, pruned = study
    points_u, report_u, measured_u, wall_u = unpruned
    points_p, report_p, measured_p, wall_p = pruned
    bounds = cell_bounds(designs)
    n_cells = len(designs) * len(SPEC_SUITE)

    # Soundness: every measured AIPC sits under its static bound.
    violations = [
        (key, aipc, bounds[key].aipc_bound)
        for key, aipc in sorted(measured_u.items())
        if aipc > bounds[key].aipc_bound
    ]
    assert not violations, violations

    # Frontier identity: pruning never changes the Pareto frontier.
    front_u, front_p = frontier(points_u), frontier(points_p)
    assert front_u == front_p

    # Effectiveness on the default study (the full grid is larger and
    # prunes even more, but only the default is pinned by the gate).
    prune_rate = report_p.pruned_static / n_cells
    assert report_u.pruned_static == 0
    assert report_p.pruned_static + report_p.completed \
        + report_p.failed + report_p.poisoned \
        + report_p.invalid == n_cells
    if not full_sweep():
        assert prune_rate >= MIN_PRUNE_RATE, (
            f"pruned {report_p.pruned_static}/{n_cells} "
            f"= {prune_rate:.1%} < {MIN_PRUNE_RATE:.0%}"
        )

    best_aggregate = max(p.performance for p in points_u)
    cells = [
        {
            "config": config,
            "workload": name,
            "bound": round(bounds[(config, name)].aipc_bound, 6),
            "binding_roof": bounds[(config, name)].binding_roof,
            "measured": (
                round(measured_u[(config, name)], 6)
                if (config, name) in measured_u else None
            ),
            "pruned": (config, name) not in measured_p,
        }
        for config in [d.config.describe() for d in designs]
        for name in SPEC_SUITE
    ]
    payload = {
        "scale": bench_scale().name.lower(),
        "suite": list(SPEC_SUITE),
        "n_designs": len(designs),
        "n_cells": n_cells,
        "pruned_static": report_p.pruned_static,
        "prune_rate": round(prune_rate, 4),
        "best_aggregate": round(best_aggregate, 6),
        "wall_s_unpruned": round(wall_u, 2),
        "wall_s_pruned": round(wall_p, 2),
        "frontier": [
            {"label": label, "area_mm2": round(area, 3),
             "aipc": round(perf, 6)}
            for label, area, perf in front_u
        ],
        "cells": cells,
    }
    (RESULTS_DIR / "BENCH_prune.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"designs {len(designs)}  suite {len(SPEC_SUITE)}  "
        f"cells {n_cells}",
        f"pruned_static {report_p.pruned_static} "
        f"({prune_rate:.1%})  frontier identical: yes  "
        f"soundness violations: 0",
        f"wall unpruned {wall_u:.1f}s  pruned {wall_p:.1f}s",
        "",
        f"{'area':>7} {'AIPC':>8}  frontier configuration",
    ]
    for label, area, perf in front_u:
        lines.append(f"{area:>7.1f} {perf:>8.4f}  {label}")
    record("bench_prune", "\n".join(lines))
