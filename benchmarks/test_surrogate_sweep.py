"""BENCH_surrogate: surrogate-guided active search on the default
Figure 6 study.

Runs the default design study (every third viable design) over the
SpecINT+SpecFP suite twice -- once exhaustively, once with
``surrogate=True`` -- and checks the three contractual properties of
the surrogate driver:

* **Frontier identity**: the surrogate sweep's Pareto frontier is
  bit-identical to the exhaustive one (frontier points are always
  measured, never predicted -- the exact-verify pass guarantees it).
* **Effectiveness**: at least half of the study's cells are skipped
  as ``predicted`` (>= 2x fewer simulations than exhaustive).
* **Calibration**: the exact-vs-predicted error gate on the full
  measured corpus -- held-out interval coverage >= 90%, with the MAE
  recorded alongside.

The machine-readable evidence is written to
``benchmarks/results/BENCH_surrogate.json``.
"""

import json
import time

import pytest

from repro.design import pareto_front, viable_designs
from repro.harness.ledger import Ledger
from repro.harness.sweep import design_space_sweep
from repro.surrogate import calibration_report, extract_training_set

from .conftest import RESULTS_DIR, bench_scale, full_sweep

SPEC_SUITE = ("gzip", "mcf", "twolf", "ammp", "art", "equake")
MAX_CYCLES = 2_000_000
COVERAGE_TARGET = 0.90


def design_subset():
    designs = viable_designs()
    return designs if full_sweep() else designs[::3]


def run_study(designs, ledger_path, *, surrogate):
    start = time.monotonic()
    points, report = design_space_sweep(
        designs,
        SPEC_SUITE,
        scale=bench_scale(),
        ledger_path=ledger_path,
        isolation="inline",
        timeout_s=None,
        max_cycles=MAX_CYCLES,
        surrogate=surrogate,
    )
    wall_s = time.monotonic() - start
    return points, report, wall_s


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    root = tmp_path_factory.mktemp("surrogate_study")
    designs = design_subset()
    exhaustive = run_study(designs, root / "exhaustive.jsonl",
                           surrogate=False)
    surrogate = run_study(designs, root / "surrogate.jsonl",
                          surrogate=True)
    return designs, root, exhaustive, surrogate


def frontier(points):
    return [(p.label, p.area, p.performance)
            for p in pareto_front(points)]


def test_bench_surrogate(study, record):
    designs, root, exhaustive, surrogate = study
    points_e, report_e, wall_e = exhaustive
    points_s, report_s, wall_s = surrogate
    n_cells = len(designs) * len(SPEC_SUITE)

    # Frontier identity: active search never changes the frontier.
    front_e, front_s = frontier(points_e), frontier(points_s)
    assert front_e == front_s

    # Effectiveness: >= 2x fewer simulated cells than exhaustive.
    block = report_s.metrics["surrogate"]
    simulated = block["simulated_cells"]
    assert simulated + report_s.predicted \
        + report_s.failed + report_s.poisoned \
        + report_s.invalid == n_cells
    assert simulated * 2 <= n_cells, (
        f"simulated {simulated}/{n_cells} cells "
        f"= {simulated / n_cells:.1%} > 50%"
    )
    reduction = n_cells / simulated

    # Calibration: the error gate on the full measured corpus.
    training = extract_training_set(Ledger(root / "exhaustive.jsonl"))
    cal = calibration_report(training, coverage=COVERAGE_TARGET)
    assert cal.calibrated, (
        f"coverage {cal.coverage:.3f} < {COVERAGE_TARGET:.0%} "
        f"(mae {cal.mae:.4f})"
    )

    payload = {
        "scale": bench_scale().name.lower(),
        "suite": list(SPEC_SUITE),
        "n_designs": len(designs),
        "n_cells": n_cells,
        "simulated_cells": simulated,
        "predicted_cells": report_s.predicted,
        "reduction": round(reduction, 4),
        "refits": block["refits"],
        "model_hash": block["model_hash"],
        "verified_designs": block["verified_designs"],
        "calibration": {
            "rows": cal.rows,
            "mae": round(cal.mae, 6),
            "coverage": round(cal.coverage, 4),
            "mean_width": round(cal.mean_interval_width, 6),
            "calibrated": cal.calibrated,
        },
        "wall_s_exhaustive": round(wall_e, 2),
        "wall_s_surrogate": round(wall_s, 2),
        "frontier": [
            {"label": label, "area_mm2": round(area, 3),
             "aipc": round(perf, 6)}
            for label, area, perf in front_e
        ],
    }
    (RESULTS_DIR / "BENCH_surrogate.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    lines = [
        f"designs {len(designs)}  suite {len(SPEC_SUITE)}  "
        f"cells {n_cells}",
        f"simulated {simulated}  predicted {report_s.predicted}  "
        f"reduction {reduction:.2f}x  frontier identical: yes",
        f"calibration: coverage {cal.coverage:.1%}  "
        f"mae {cal.mae:.4f}  rows {cal.rows}",
        f"wall exhaustive {wall_e:.1f}s  surrogate {wall_s:.1f}s",
        "",
        f"{'area':>7} {'AIPC':>8}  frontier configuration",
    ]
    for label, area, perf in front_e:
        lines.append(f"{area:>7.1f} {perf:>8.4f}  {label}")
    record("bench_surrogate", "\n".join(lines))
