"""Sweep-scheduler throughput: cells/sec at jobs=1 vs jobs=4.

The parallel scheduler's speedup is a tracked number, not an
anecdote: this bench runs the acceptance campaign -- 8 viable designs
x the splash2 suite at TINY scale, best-thread-count mode -- serially
and at ``jobs=4``, asserts the results are identical, and (on a box
with >= 4 usable cores) asserts the parallel sweep is at least 2.5x
faster wall-clock.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.design import viable_designs
from repro.harness import Ledger, RunSupervisor, design_space_sweep
from repro.workloads import SPLASH_NAMES, Scale

from .conftest import full_sweep

N_DESIGNS = 8
SPEEDUP_FLOOR = 2.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def sample_designs(n=N_DESIGNS):
    designs = viable_designs()
    step = max(1, len(designs) // n)
    return designs[::step][:n]


def run_sweep(jobs, ledger_path=None, designs=None, names=SPLASH_NAMES):
    return design_space_sweep(
        designs if designs is not None else sample_designs(),
        names, scale=Scale.TINY, threaded=True,
        ledger_path=ledger_path, jobs=jobs,
        supervisor=RunSupervisor(isolation="inline"),
    )


@pytest.mark.parametrize("jobs", [1, 4])
def test_sweep_cells_per_second(benchmark, jobs):
    """Tracked number: sweep cell throughput at each jobs level.

    Runs a reduced campaign (4 designs x 3 workloads) so the tracked
    number stays cheap; ``REPRO_BENCH_FULL=1`` uses the full
    acceptance campaign instead.
    """
    if full_sweep():
        designs, names = sample_designs(), SPLASH_NAMES
    else:
        designs, names = sample_designs(4), SPLASH_NAMES[:3]
    reports = []

    def run():
        points, report = run_sweep(jobs, designs=designs, names=names)
        reports.append(report)
        return report.total

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["cells_per_s"] = round(cells / wall, 2)
    assert cells > 0
    assert reports[-1].completed + reports[-1].failed == cells


def test_parallel_speedup_and_identical_results(tmp_path, record):
    """Acceptance: jobs=4 is >= 2.5x faster than jobs=1 on the
    8-design splash2 TINY sweep, with identical ParetoPoints and
    ledger verdicts."""
    cores = usable_cores()

    start = time.perf_counter()
    serial_points, serial_report = run_sweep(1, tmp_path / "serial.jsonl")
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    par_points, par_report = run_sweep(4, tmp_path / "par.jsonl")
    par_wall = time.perf_counter() - start

    # Correctness holds on any machine.
    assert par_points == serial_points
    assert par_report.failures == serial_report.failures
    serial_verdicts = {
        h: (r["status"], r.get("aipc"))
        for h, r in Ledger(tmp_path / "serial.jsonl").load().items()
    }
    par_verdicts = {
        h: (r["status"], r.get("aipc"))
        for h, r in Ledger(tmp_path / "par.jsonl").load().items()
    }
    assert par_verdicts == serial_verdicts

    speedup = serial_wall / par_wall if par_wall else float("inf")
    record(
        "sweep_throughput",
        f"designs: {len(sample_designs())}  suite: splash2 @ tiny\n"
        f"cells: {serial_report.total}\n"
        f"jobs=1: {serial_wall:.1f}s "
        f"({serial_report.total / serial_wall:.2f} cells/s)\n"
        f"jobs=4: {par_wall:.1f}s "
        f"({par_report.total / par_wall:.2f} cells/s)\n"
        f"speedup: {speedup:.2f}x on {cores} usable core(s)",
    )
    if cores < 4:
        pytest.skip(
            f"speedup floor needs >= 4 usable cores, have {cores} "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"jobs=4 only {speedup:.2f}x faster than jobs=1 "
        f"(floor {SPEEDUP_FLOOR}x, {cores} cores)"
    )
