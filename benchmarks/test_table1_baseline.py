"""Table 1: the baseline microarchitectural parameters.

Regenerates the parameter table and checks every constant against the
paper; the benchmark times a full baseline construction + placement +
short run, the "unit of work" every other experiment repeats.
"""

from repro.core import BASELINE, WaveScalarProcessor
from repro.workloads import Scale, get


def render_table1() -> str:
    c = BASELINE
    rows = [
        ("WaveScalar capacity",
         f"{c.total_instruction_capacity // 1024}K static instructions "
         f"({c.virtualization} per PE)"),
        ("PEs per domain", f"{c.pes_per_domain} ({c.pes_per_domain // 2} "
                           "pods)"),
        ("Domains / cluster", str(c.domains_per_cluster)),
        ("PE input queue", f"{c.matching_entries} entries, "
                           f"{c.matching_banks} banks"),
        ("PE output queue", f"{c.output_queue_entries} entries"),
        ("PE pipeline depth", "5 stages"),
        ("Network latency",
         f"pod {c.pod_latency} / domain {c.domain_latency} / cluster "
         f"{c.cluster_latency} / inter-cluster {c.intercluster_base}+dist"),
        ("L1 cache", f"{c.l1_kb}KB, {c.l1_associativity}-way, "
                     f"{c.line_bytes}B line, {c.l1_ports} ports"),
        ("Network switch", f"{c.mesh_bandwidth}-port bidirectional, "
                           f"{c.mesh_queue_entries}-entry queues, 2 VCs"),
        ("Main RAM", f"{c.dram_latency} cycle latency"),
        ("Store buffer", f"{c.storebuffer_waves} waves, "
                         f"{c.partial_store_queues} partial store queues"),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def test_table1_parameters(record, benchmark):
    text = benchmark(render_table1)
    record("table1_baseline_parameters", text)
    c = BASELINE
    assert c.total_instruction_capacity == 4096
    assert (c.pod_latency, c.domain_latency, c.cluster_latency,
            c.intercluster_base) == (1, 5, 9, 9)
    assert (c.l1_kb, c.l1_associativity, c.line_bytes, c.l1_ports) == \
        (32, 4, 128, 4)
    assert c.dram_latency == 200
    assert (c.storebuffer_waves, c.partial_store_queues) == (4, 2)
    assert (c.matching_entries, c.matching_banks,
            c.matching_associativity) == (128, 4, 2)


def test_baseline_run(benchmark):
    """Time one baseline workload execution (the atomic unit of every
    sweep in this harness)."""

    def unit():
        proc = WaveScalarProcessor(BASELINE)
        return proc.run_workload(get("mcf"), scale=Scale.TINY).cycles

    cycles = benchmark(unit)
    assert cycles > 0
