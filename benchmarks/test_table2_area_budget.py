"""Table 2: the cluster area budget.

Regenerates the full budget table from the measured per-component
areas and validates the paper's headline shares (PEs ~71% of the
cluster, MATCH ~61% of the PE, ~80% SRAM).
"""

import pytest

from repro.area import (
    breakdown,
    cluster_total_mm2,
    format_budget_table,
    pe_total_mm2,
    sram_fraction,
)
from repro.area.budget import PE_COMPONENTS_MM2
from repro.core.config import BASELINE


def test_table2_budget(record, benchmark):
    text = benchmark(format_budget_table)
    footer = (
        f"\npaper cross-checks: PE total {pe_total_mm2():.2f} mm2 "
        f"(paper 0.94), cluster total {cluster_total_mm2():.2f} mm2 "
        f"(paper 42.50), SRAM fraction {sram_fraction():.0%} (paper ~80%)"
    )
    record("table2_cluster_area_budget", text + footer)

    assert cluster_total_mm2() == pytest.approx(42.5, abs=0.8)
    assert PE_COMPONENTS_MM2["MATCH"] / pe_total_mm2() == pytest.approx(
        0.61, abs=0.03
    )
    assert 32 * pe_total_mm2() / cluster_total_mm2() == pytest.approx(
        0.71, abs=0.02
    )
    assert sram_fraction() == pytest.approx(0.80, abs=0.03)


def test_table2_model_breakdown(record, benchmark):
    bd = benchmark(breakdown, BASELINE)
    lines = [
        f"{'component':<22}{'mm2':>8}{'share':>8}",
    ]
    for name, value in [
        ("PE matching tables", bd.pe_matching),
        ("PE instruction stores", bd.pe_istore),
        ("PE other logic", bd.pe_other),
        ("pseudo PEs", bd.pseudo_pes),
        ("FPUs", bd.fpus),
        ("store buffers", bd.store_buffers),
        ("L1 caches", bd.l1),
        ("network switches", bd.network_switches),
        ("wiring overhead", bd.wiring_overhead),
        ("L2", bd.l2),
    ]:
        lines.append(f"{name:<22}{value:>8.2f}{value / bd.total:>8.1%}")
    lines.append(f"{'total':<22}{bd.total:>8.2f}{1.0:>8.1%}")
    record("table2_model_breakdown", "\n".join(lines))
    assert bd.total == pytest.approx(46.5, abs=0.5)


def test_budget_benchmark(benchmark):
    total = benchmark(cluster_total_mm2)
    assert total > 0
