"""Table 3: the area model.

Regenerates the constant table, cross-checks every constant against
the independent bottom-up estimator (our RTL substitute), and sweeps
the model over the full design space.
"""

import pytest

from repro.area import chip_area, estimate_constants
from repro.area import model as m
from repro.core.config import WaveScalarConfig
from repro.design import viable_designs


def test_table3_constants(record, benchmark):
    est = benchmark(estimate_constants)
    rows = [
        ("matching table / entry", m.MATCHING_MM2_PER_ENTRY,
         est.matching_mm2_per_entry),
        ("instruction store / inst", m.ISTORE_MM2_PER_INSTRUCTION,
         est.istore_mm2_per_instruction),
        ("other PE components", m.PE_OTHER_MM2, est.pe_other_mm2),
        ("pseudo-PE", m.PSEUDO_PE_MM2, est.pseudo_pe_mm2),
        ("store buffer", m.STORE_BUFFER_MM2, est.store_buffer_mm2),
        ("L1 / KB", m.L1_MM2_PER_KB, est.l1_mm2_per_kb),
        ("network switch", m.NETWORK_SWITCH_MM2, est.network_switch_mm2),
        ("L2 / MB", m.L2_MM2_PER_MB, est.l2_mm2_per_mb),
    ]
    lines = [f"{'constant':<26}{'paper':>10}{'estimated':>11}{'ratio':>7}"]
    for name, paper, estimated in rows:
        lines.append(
            f"{name:<26}{paper:>10.4f}{estimated:>11.4f}"
            f"{estimated / paper:>7.2f}"
        )
    lines.append(f"\nutilization factor U = {m.UTILIZATION}")
    record("table3_area_model_constants", "\n".join(lines))

    # Every constant within 2x of the first-principles estimate.
    for name, paper, estimated in rows:
        assert 0.5 < estimated / paper < 2.0, name


def test_table5_area_column(record, benchmark):
    """The model reproduces the paper's Table 5 'Area' column."""
    paper_rows = [
        # (clusters, V=M, L1, L2, paper mm2)
        (1, 128, 8, 0, 39),
        (1, 128, 16, 0, 42),
        (1, 128, 32, 0, 48),
        (1, 128, 8, 1, 52),
        (1, 128, 32, 1, 61),
        (1, 128, 32, 2, 74),
        (1, 128, 16, 4, 92),
        (4, 64, 8, 1, 109),
        (4, 64, 16, 2, 134),
        (4, 64, 32, 1, 146),
        (4, 64, 32, 2, 159),
        (4, 128, 8, 1, 169),
        (4, 128, 16, 2, 194),
        (4, 128, 32, 1, 206),
        (4, 128, 32, 2, 219),
        (4, 128, 32, 4, 244),
        (16, 64, 8, 0, 387),
        (16, 64, 8, 1, 399),
    ]
    benchmark(lambda: [chip_area(WaveScalarConfig(
        clusters=c, virtualization=v, matching_entries=v, l1_kb=l1,
        l2_mb=l2)) for c, v, l1, l2, _ in paper_rows])
    lines = [f"{'id':>3}{'config':<38}{'paper':>7}{'model':>7}{'err':>7}"]
    worst = 0.0
    for i, (c, v, l1, l2, paper) in enumerate(paper_rows, start=1):
        config = WaveScalarConfig(
            clusters=c, virtualization=v, matching_entries=v, l1_kb=l1,
            l2_mb=l2,
        )
        area = chip_area(config)
        err = area / paper - 1
        worst = max(worst, abs(err))
        lines.append(
            f"{i:>3} {config.describe():<37}{paper:>7.0f}{area:>7.0f}"
            f"{err:>7.1%}"
        )
    lines.append(f"\nworst relative error: {worst:.1%}")
    record("table3_vs_table5_areas", "\n".join(lines))
    assert worst < 0.08  # every row within 8% of the paper


def test_area_model_benchmark(benchmark):
    designs = viable_designs()

    def sweep():
        return sum(chip_area(d.config) for d in designs)

    total = benchmark(sweep)
    assert total > 0
