"""Table 4: per-application matching-table tuning.

For every workload, finds k_opt (sweeping the k-loop bound against an
effectively infinite matching table) and u_opt (over-subscribing the
table at V=256 until performance drops), then derives the
virtualization ratio and the processor-wide choice.

The paper reports k_opt in 2..4, u_opt in 4..32, ratios 0.13..1 with
maximum 1 -- we check those *shapes*: saturating k, tolerant u, and a
processor ratio of at most 1.
"""

from repro.core.experiments import tune_workload
from repro.design import processor_ratio
from repro.workloads import WORKLOADS, get

from .conftest import bench_scale

#: Thread count used for multithreaded workloads in the tuning runs
#: (the tuning testbed is a single cluster, as in the paper).
TUNING_THREADS = 4


def run_table4():
    results = []
    for name in sorted(WORKLOADS):
        workload = get(name)
        threads = TUNING_THREADS if workload.multithreaded else None
        results.append(
            tune_workload(name, scale=bench_scale(), threads=threads)
        )
    return results


def render(results) -> str:
    lines = [f"{'application':<14}{'u_opt':>7}{'k_opt':>7}{'virt ratio':>12}"]
    for r in results:
        lines.append(
            f"{r.application:<14}{r.u_opt:>7}{r.k_opt:>7}"
            f"{r.virtualization_ratio:>12.3f}"
        )
    ratio = processor_ratio(results)
    lines.append(f"\nprocessor-wide virtualization ratio: {ratio}")
    return "\n".join(lines)


def test_table4_tuning(record, benchmark):
    # cache shared across benches: keys fully identify runs
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    record("table4_matching_tuning", render(results))

    by_name = {r.application: r for r in results}
    # k saturates at small values for every app (paper: 2..4).
    for r in results:
        assert 1 <= r.k_opt <= 8, r
    # The serial recurrence kernels need the least table per slot.
    assert by_name["rawdaudio"].k_opt <= by_name["water"].k_opt + 2
    # Every app tolerates some over-subscription.
    assert all(r.u_opt >= 1 for r in results)
    # The conservative processor-wide ratio is a power of two <= 2
    # (the paper lands on exactly 1).
    ratio = processor_ratio(results)
    assert ratio <= 2.0
    assert ratio in (0.125, 0.25, 0.5, 1.0, 2.0)
