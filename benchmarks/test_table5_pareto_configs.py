"""Table 5: Pareto-optimal configurations for Splash2.

Evaluates the Splash2 suite over the viable design space (each design
at its best thread count, as in the paper), extracts the Pareto
frontier with the incremental area/AIPC columns, and checks the
paper's structural findings:

* multithreaded performance grows substantially from the smallest to
  the largest design,
* the frontier visits more than one cluster count (replication pays),
* an L2-bearing configuration appears early on the frontier (the
  paper's configuration 4 nearly doubles configuration 1).
"""

from repro.core.experiments import (
    evaluate_design_space,
    pareto_table,
)
from repro.design import pareto_front, viable_designs
from repro.workloads import SPLASH_NAMES

from .conftest import bench_scale, full_sweep


def design_subset():
    designs = viable_designs()
    if full_sweep():
        return designs
    # Documented subsample: every 3rd design plus both extremes keeps
    # the bench under a few minutes while covering the area range.
    subset = designs[::3]
    if designs[-1] not in subset:
        subset.append(designs[-1])
    return subset


def run_table5():
    # cache shared across benches: keys fully identify runs
    designs = design_subset()
    return designs, evaluate_design_space(
        designs, SPLASH_NAMES, scale=bench_scale(), threaded=True
    )


def test_table5_pareto(record, benchmark, results_dir):
    from repro.design import dump_points

    designs, points = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    text = (
        f"evaluated {len(points)} of {len(viable_designs())} viable "
        f"designs (REPRO_BENCH_FULL=1 for all), Splash2 suite, best "
        f"thread count per design\n\n" + pareto_table(points)
    )
    record("table5_splash_pareto", text)
    dump_points(
        points, results_dir / "table5_splash_sweep.json",
        metadata={"suite": "splash2", "scale": str(bench_scale())},
    )

    front = pareto_front(points)
    assert len(front) >= 4
    smallest, largest = front[0], front[-1]
    # Performance grows with area (paper: 1.3 -> 13.3 AIPC over 10x
    # area; our kernels are smaller so the factor is gentler, but the
    # growth must be substantial).
    assert largest.performance > 1.5 * smallest.performance
    assert largest.area > 4 * smallest.area
    # The frontier crosses cluster counts.
    cluster_counts = {p.payload.clusters for p in front}
    assert len(cluster_counts) >= 2
    # An L2-bearing design is Pareto-optimal early (within the first
    # half of the frontier).
    first_half = front[: max(2, len(front) // 2)]
    assert any(p.payload.l2_mb > 0 for p in first_half)
