"""Tiling-geometry Pareto sweep for the tensor/GEMM family.

The paper's area-performance methodology applied to the dense-tensor
family this repo adds: for each dataflow analogue (output-, weight-,
input-stationary) and a spread of (tile_m, tile_n, tile_k) geometries,
measure static size, cycles, AIPC, and matching-table pressure on the
golden config.  All variants compute bit-identical checksums, so the
sweep isolates the *structural* cost of a tiling choice -- exactly
the trade-off knob the tensor suite exists to expose.

Results land in ``BENCH_tensor.json`` (picked up by ``repro
bench-summary`` and the CI artifact upload) and a readable table in
``benchmarks/results/tensor_tiling.txt``; EXPERIMENTS.md discusses
the regenerated numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import WaveScalarConfig
from repro.sim.engine import simulate
from repro.sim.failures import CycleBudgetExhausted
from repro.workloads import Scale, get
from repro.workloads.tensor import gemm

BENCH_TENSOR_JSON = Path(__file__).resolve().parents[1] / \
    "BENCH_tensor.json"

#: (tile_m, tile_n, tile_k) geometries that divide the TINY 4x6x6
#: problem: from fully fine-grained to whole-matrix tiles.
GEOMETRIES = (
    (1, 1, 1),
    (2, 2, 2),
    (2, 3, 3),
    (4, 2, 2),
    (2, 6, 6),
    (4, 6, 6),
)
K_UNROLL = 3


def run_point(dataflow: str, tiles: tuple[int, int, int]) -> dict:
    tm, tn, tk = tiles
    graph = gemm.build(
        Scale.TINY, k=K_UNROLL, seed=0, dataflow=dataflow,
        tile_m=tm, tile_n=tn, tile_k=tk,
    )
    point = {
        "dataflow": dataflow,
        "tile_m": tm, "tile_n": tn, "tile_k": tk,
        "static_instructions": len(graph),
    }
    try:
        stats = simulate(graph, WaveScalarConfig(), max_cycles=500_000)
    except CycleBudgetExhausted:
        # Whole-matrix tiles put more simultaneously-live tokens in
        # flight than the golden config's matching table can hold:
        # the run thrashes on evictions instead of completing.  That
        # capacity cliff is a *finding* of the sweep, not a bug.
        point.update(finished=False, cycles=None, aipc=0.0,
                     memory_ops=None, matching_evictions=None)
        return point
    assert stats.output_values() == gemm.reference(Scale.TINY, seed=0)
    point.update(
        finished=True,
        cycles=stats.cycles,
        aipc=round(stats.aipc, 4),
        memory_ops=stats.memory_ops,
        matching_evictions=stats.matching_evictions,
    )
    return point


def pareto_frontier(points: list[dict]) -> list[dict]:
    """Minimize static size, maximize AIPC (finished points only)."""
    points = [p for p in points if p["finished"]]
    frontier = []
    for p in points:
        if not any(
            q["static_instructions"] <= p["static_instructions"]
            and q["aipc"] >= p["aipc"] and q is not p
            and (q["static_instructions"] < p["static_instructions"]
                 or q["aipc"] > p["aipc"])
            for q in points
        ):
            frontier.append(p)
    return frontier


def test_tensor_tiling_sweep(record, benchmark):
    def sweep():
        return [
            run_point(dataflow, tiles)
            for dataflow in gemm.DATAFLOWS
            for tiles in GEOMETRIES
        ]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    frontier = pareto_frontier(points)

    header = (f"{'dataflow':<8} {'tiles':<10} {'static':>7} "
              f"{'cycles':>8} {'aipc':>7} {'memops':>7} {'evict':>6}")
    lines = [header, "-" * len(header)]
    frontier_keys = {
        (p["dataflow"], p["tile_m"], p["tile_n"], p["tile_k"])
        for p in frontier
    }
    for p in sorted(points, key=lambda p: -p["aipc"]):
        star = "*" if (p["dataflow"], p["tile_m"], p["tile_n"],
                       p["tile_k"]) in frontier_keys else " "
        tiles = f"{p['tile_m']}x{p['tile_n']}x{p['tile_k']:<6}"
        if not p["finished"]:
            lines.append(
                f"{p['dataflow']:<8} {tiles} "
                f"{p['static_instructions']:>7}      DNF (matching-"
                "table thrash)"
            )
            continue
        lines.append(
            f"{p['dataflow']:<8} {tiles} "
            f"{p['static_instructions']:>7} {p['cycles']:>8} "
            f"{p['aipc']:>7.3f} {p['memory_ops']:>7} "
            f"{p['matching_evictions']:>5}{star}"
        )
    lines.append("(* = on the static-size/AIPC Pareto frontier; "
                 "DNF = 500k-cycle budget exhausted)")
    record("tensor_tiling", "\n".join(lines))

    payload = {
        "workload": "gemm",
        "scale": "tiny",
        "k": K_UNROLL,
        "points": points,
        "pareto_frontier": [
            {k: p[k] for k in ("dataflow", "tile_m", "tile_n", "tile_k",
                               "static_instructions", "aipc")}
            for p in frontier
        ],
    }
    BENCH_TENSOR_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Structural sanity the EXPERIMENTS.md narrative relies on.
    assert len(points) == len(gemm.DATAFLOWS) * len(GEOMETRIES)
    assert frontier, "Pareto frontier cannot be empty"
    # Most geometries complete on the golden config; the capacity
    # cliff only swallows the token-heaviest whole-matrix variants.
    finished = [p for p in points if p["finished"]]
    assert len(finished) >= 14
    for p in points:
        if not p["finished"]:
            assert p["tile_n"] * p["tile_k"] >= 36, (
                "only whole-matrix tiles may hit the matching cliff"
            )
    # Tile geometry is a real knob: static size must vary with it.
    for dataflow in gemm.DATAFLOWS:
        sizes = {p["static_instructions"] for p in points
                 if p["dataflow"] == dataflow}
        assert len(sizes) > 1, f"{dataflow}: tiling changed nothing"
    # Coarser tiles unroll more: whole-matrix tiles are the largest
    # static program within every dataflow.
    for dataflow in gemm.DATAFLOWS:
        by_tiles = {
            (p["tile_m"], p["tile_n"], p["tile_k"]): p
            for p in points if p["dataflow"] == dataflow
        }
        assert by_tiles[(4, 6, 6)]["static_instructions"] == max(
            p["static_instructions"] for p in by_tiles.values()
        )
