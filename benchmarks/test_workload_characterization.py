"""Workload characterisation table (Section 2.2, made quantitative).

Regenerates the measured shape of every kernel and checks the
properties the DESIGN.md substitution argument claims: the Splash2
stand-ins are multithreaded and scale their waves with threads; the
Spec stand-ins split into control-heavy integer and FP groups; the
media kernels are block-structured integer code.
"""

from repro.workloads import (
    MEDIA_NAMES,
    SPEC_NAMES,
    SPLASH_NAMES,
    WORKLOADS,
    characterization_table,
    get,
    profile_workload,
)

from .conftest import bench_scale


def run_profiles():
    return {
        name: profile_workload(
            get(name), bench_scale(),
            threads=4 if get(name).multithreaded else None,
        )
        for name in sorted(WORKLOADS)
    }


def test_characterization(record, benchmark):
    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    record(
        "workload_characterization",
        characterization_table(list(profiles.values())),
    )

    # FP suites actually use the FPU.
    for name in ("ammp", "art", "equake", "fft", "lu", "ocean",
                 "raytrace", "water"):
        assert profiles[name].fp_fraction > 0.15, name
    for name in ("gzip", "mcf", "twolf", "djpeg", "mpeg2encode",
                 "rawdaudio", "radix"):
        assert profiles[name].fp_fraction == 0.0, name
    # Every kernel touches memory (wave-ordered interface exercised).
    for name, profile in profiles.items():
        assert profile.memory_operations > 0, name
    # Dataflow overhead is substantial everywhere -- the reason the
    # paper reports AIPC.
    for name, profile in profiles.items():
        assert 0.3 < profile.overhead_fraction < 0.9, name
    # Splash kernels produce many waves (loop iterations across
    # threads); media kernels are comparatively shallow.
    assert profiles["radix"].waves > profiles["djpeg"].waves
    # Suite partition sanity.
    assert len(SPEC_NAMES) + len(MEDIA_NAMES) + len(SPLASH_NAMES) == 15
