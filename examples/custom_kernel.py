#!/usr/bin/env python3
"""Writing a custom kernel: control flow, wave-ordered memory, and the
textual assembly round trip.

Builds a histogram kernel with a data-dependent branch, runs it on the
functional interpreter and the cycle-level simulator (asserting they
agree), then disassembles it so you can see the wave annotations the
store buffer executes.

Run:  python examples/custom_kernel.py
"""

from repro.core import BASELINE, WaveScalarProcessor
from repro.lang import GraphBuilder, assemble, disassemble
from repro.lang.interp import interpret


def build_clipped_histogram(values, buckets, clip):
    """hist[min(v, clip-1)] += 1 for v in values.

    Demonstrates: if_else with memory on one arm, read-modify-write
    through the wave-ordered store buffer, and post-loop readback.
    """
    b = GraphBuilder("clipped_histogram")
    val_base = b.data("values", values)
    hist_base = b.alloc("hist", buckets)
    t = b.entry(0)

    loop = b.loop(
        carried=[b.const(0, t), b.const(0, t)],  # i, clipped-count
        invariants=[
            b.const(len(values), t),
            b.const(val_base, t),
            b.const(hist_base, t),
            b.const(clip, t),
        ],
        k=2,
    )
    i, clipped = loop.state
    n, vb, hb, clip_c = loop.invariants

    v = b.load(b.add(vb, i))
    over = b.ge(v, clip_c)
    br = b.if_else(over, [v, clipped, clip_c])
    tv, tc, tclip = br.then_values()
    br.then_result([b.sub(tclip, b.const(1, tclip)),
                    b.add(tc, b.const(1, tc))])
    fv, fc, _ = br.else_values()
    br.else_result([fv, fc])
    bucket, clipped2 = br.end()

    slot = b.add(hb, bucket)
    count = b.load(slot)
    b.store(b.nop(slot), b.add(count, b.const(1, count)))

    i2 = b.add(i, b.const(1, i))
    loop.next_iteration(b.lt(i2, n), [i2, clipped2])
    exits = loop.end()
    clipped_final, hist_final = exits[1], exits[4]

    # Read a couple of buckets back (ordered after all the stores by
    # the post-loop wave).
    b.output(b.load(hist_final), label="hist[0]")
    b.output(b.load(b.add(hist_final, b.const(1, hist_final))),
             label="hist[1]")
    b.output(b.nop(clipped_final), label="n_clipped")
    return b.finalize()


def main():
    values = [0, 1, 9, 1, 0, 7, 1, 3, 0, 12, 1, 0]
    clip = 4
    graph = build_clipped_histogram(values, buckets=clip, clip=clip)
    print(graph.summary())

    expected_hist = [0] * clip
    for v in values:
        expected_hist[min(v, clip - 1)] += 1
    expected = [
        expected_hist[0],
        expected_hist[1],
        sum(1 for v in values if v >= clip),
    ]

    ref = interpret(graph)
    print(f"interpreter outputs : {ref.output_values()} "
          f"(expected {expected})")
    assert ref.output_values() == expected

    result = WaveScalarProcessor(BASELINE).run(graph)
    print(f"simulator outputs   : {result.outputs()} in "
          f"{result.cycles} cycles (AIPC {result.aipc:.2f})")
    assert result.outputs() == expected

    text = disassemble(graph)
    reparsed = assemble(text)
    assert interpret(reparsed).output_values() == expected
    print("\nassembly round-trip OK; memory instructions carry these "
          "wave annotations (<prev,this,next,region>):")
    for line in text.splitlines():
        if "<" in line and any(op in line for op in
                               ("LOAD", "STORE", "MEMORY_NOP")):
            print("  " + line)


if __name__ == "__main__":
    main()
