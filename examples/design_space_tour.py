#!/usr/bin/env python3
"""A miniature of the paper's Section 4.2: enumerate the design space,
evaluate a slice of it on real workloads, and print the Pareto
frontier with Table 5-style increment columns.

Run:  python examples/design_space_tour.py        (about a minute)
"""

from repro.core.experiments import evaluate_design_space, pareto_table
from repro.design import pareto_front, viable_designs
from repro.workloads import Scale


def main():
    designs = viable_designs()
    print(
        f"design space: {len(designs)} viable configurations from "
        f"{designs[0].area_mm2:.0f} to {designs[-1].area_mm2:.0f} mm^2"
    )

    # Evaluate a representative slice (every 6th design plus the two
    # extremes) on two single-threaded workloads; the full sweep lives
    # in benchmarks/test_fig6_pareto_scatter.py.
    subset = designs[::6]
    if designs[-1] not in subset:
        subset.append(designs[-1])
    names = ["mcf", "djpeg"]
    print(f"evaluating {len(subset)} designs on {names} ...")
    points = evaluate_design_space(subset, names, scale=Scale.TINY)

    print("\nall evaluated points (area mm^2 -> mean AIPC):")
    for p in sorted(points, key=lambda p: p.area):
        print(f"  {p.area:7.0f}  {p.performance:6.3f}  {p.label}")

    front = pareto_front(points)
    print(f"\nPareto frontier ({len(front)} of {len(points)} points):")
    print(pareto_table(points))

    best = front[-1]
    cheapest = front[0]
    print(
        f"\nspending {best.area / cheapest.area:.1f}x the area buys "
        f"{best.performance / cheapest.performance:.1f}x the "
        "single-threaded performance -- the sub-linear single-thread "
        "scaling of the paper's Figure 7."
    )


if __name__ == "__main__":
    main()
