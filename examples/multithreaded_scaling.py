#!/usr/bin/env python3
"""The paper's headline result in miniature: multithreaded WaveScalar
performance scales with silicon area, and the hierarchical
interconnect keeps traffic local while it does.

Runs two Splash2-stand-in kernels across 1-, 4- and 16-cluster
processors, reporting AIPC, AIPC per mm^2, and the Figure 8 traffic
distribution at each size.

Run:  python examples/multithreaded_scaling.py             (about a minute)
      REPRO_SCALE=medium python examples/multithreaded_scaling.py
      (larger problems keep scaling further up the cluster counts)
"""

import os

from repro.area import chip_area
from repro.core import WaveScalarConfig, WaveScalarProcessor
from repro.workloads import Scale, get

SCALE = Scale[os.environ.get("REPRO_SCALE", "small").upper()]

SIZES = [
    WaveScalarConfig(clusters=1, l2_mb=1),
    WaveScalarConfig(clusters=4, virtualization=64, matching_entries=64,
                     l2_mb=1),
    WaveScalarConfig(clusters=16, virtualization=64, matching_entries=64,
                     l1_kb=8, l2_mb=1),
]

WORKLOADS = ["fft", "water"]
# Bigger processors pay off through *more threads*: a 4K-instruction
# single cluster cannot hold 64 threads' code, an 8K+ one can.
THREADS = [8, 32, 64]


def main():
    print(f"{'config':<44}{'area':>7} {'thr':>4} {'AIPC':>6} "
          f"{'AIPC/mm2':>9}  traffic pod/dom/clu/grid")
    for config in SIZES:
        processor = WaveScalarProcessor(config)
        area = chip_area(config)
        for name in WORKLOADS:
            workload = get(name)
            best = None
            for threads in THREADS:
                try:
                    result = processor.run_workload(
                        workload, scale=SCALE, threads=threads
                    )
                except ValueError:
                    continue
                if best is None or result.aipc > best.aipc:
                    best = result
            assert best is not None
            fr = best.stats.traffic_fractions()
            print(
                f"{config.describe():<44}{area:>7.0f} "
                f"{best.threads:>4} {best.aipc:>6.2f} "
                f"{best.aipc / area * 1000:>9.2f}  "
                f"{fr['pod']:.0%}/{fr['domain']:.0%}/"
                f"{fr['cluster']:.0%}/{fr['grid']:.0%}"
                f"   [{name}]"
            )
    print(
        "\nBigger processors win by running more threads (the 4K-capacity "
        "single cluster tops out at 32), and inter-cluster traffic stays "
        "in single digits while they do -- the locality that makes "
        "scaling possible (Sections 4.2-4.3).  Scaling saturates once "
        "per-thread work runs out; rerun with REPRO_SCALE=medium to see "
        "the larger configurations pull further ahead."
    )


if __name__ == "__main__":
    main()
