#!/usr/bin/env python3
"""Reproduce the paper's appendix (Figure 9): operands flowing through
the PE pipeline with back-to-back execution of dependent instructions.

The appendix walks two dependent instructions A and B through
INPUT / MATCH / DISPATCH / EXECUTE / OUTPUT, with A's result forwarded
to B over the bypass network so B executes on the very next cycle
(speculative fire).  This script builds that exact scenario -- a chain
of dependent ADDs placed on one pod -- attaches the execution tracer,
and prints the pipeline events.

Run:  python examples/pipeline_trace.py
"""

from repro.core import BASELINE
from repro.lang import GraphBuilder
from repro.place.snake import place
from repro.sim.engine import Engine
from repro.sim.trace import Trace, summarize


def build_dependent_chain(length=6):
    """v -> +1 -> +1 -> ... (a pure dependence chain, appendix-style)."""
    b = GraphBuilder("dependent_chain")
    t = b.entry(10)
    one = b.const(1, t)
    value = t
    for _ in range(length):
        value = b.add(value, one)
    # 'one' fans out to every ADD; the chain itself is A -> B -> C ...
    b.output(value)
    return b.finalize()


def main():
    graph = build_dependent_chain()
    placement = place(graph, BASELINE)

    engine = Engine(graph, BASELINE, placement)
    engine.trace = Trace()
    stats = engine.run()
    assert stats.output_values() == [16]

    print("full pipeline trace (one PE pod, dependent ADD chain):\n")
    print(engine.trace.render())

    print("\nevent histogram:", summarize(engine.trace.events))

    # The appendix's point: dependent instructions execute on
    # consecutive cycles thanks to speculative fire + the pod bypass.
    for pod in sorted(engine.trace.pods()):
        gaps = engine.trace.dispatch_gaps(pod=pod)
        b2b = engine.trace.back_to_back_pairs(pod=pod)
        print(f"\npod {pod} (pe{2 * pod}/pe{2 * pod + 1}): gaps {gaps}, "
              f"{b2b} back-to-back pair(s)")

    total_b2b = sum(
        engine.trace.back_to_back_pairs(pod=pod)
        for pod in engine.trace.pods()
    )
    assert total_b2b >= 1, "expected back-to-back dependent execution"
    print("\nAs in Figure 9: A's result reaches B through the bypass and "
          "B executes immediately behind it.")


if __name__ == "__main__":
    main()
