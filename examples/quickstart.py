#!/usr/bin/env python3
"""Quickstart: build a dataflow program, run it on a WaveScalar
processor, and read the paper's metrics off the result.

Run:  python examples/quickstart.py
"""

from repro.core import BASELINE, WaveScalarProcessor
from repro.lang import GraphBuilder


def build_dot_product(xs, ys):
    """dot(xs, ys) as a WaveScalar dataflow graph.

    One loop, one wave per iteration; the arrays live in data memory
    and are streamed through the wave-ordered memory system.
    """
    b = GraphBuilder("dot_product")
    x_base = b.data("x", xs)
    y_base = b.data("y", ys)
    trigger = b.entry(0)

    loop = b.loop(
        carried=[b.const(0, trigger), b.const(0, trigger)],  # i, acc
        invariants=[
            b.const(len(xs), trigger),
            b.const(x_base, trigger),
            b.const(y_base, trigger),
        ],
        k=4,  # at most 4 iterations in flight (k-loop bounding)
    )
    i, acc = loop.state
    n, xb, yb = loop.invariants
    x = b.load(b.add(xb, i))
    y = b.load(b.add(yb, i))
    acc2 = b.add(acc, b.mul(x, y))
    i2 = b.add(i, b.const(1, i))
    loop.next_iteration(b.lt(i2, n), [i2, acc2])
    exits = loop.end()

    b.output(exits[1], label="dot")
    return b.finalize()


def main():
    xs = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]
    ys = [2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5]
    graph = build_dot_product(xs, ys)
    print(f"program: {graph.summary()}")

    processor = WaveScalarProcessor(BASELINE)
    print(f"processor: {processor.describe()}")

    result = processor.run(graph)
    expected = sum(x * y for x, y in zip(xs, ys))
    print(f"\ndot product = {result.outputs()[0]} (expected {expected})")
    assert result.outputs() == [expected]

    print(f"cycles            : {result.cycles}")
    print(f"AIPC              : {result.aipc:.3f}")
    print(f"area              : {result.area_mm2:.1f} mm^2")
    print(f"runtime @ 20 FO4  : {result.runtime_seconds * 1e9:.2f} ns")
    fr = result.stats.traffic_fractions()
    print(
        "traffic           : "
        f"{fr['pod']:.0%} pod / {fr['domain']:.0%} domain / "
        f"{fr['cluster']:.0%} cluster / {fr['grid']:.0%} inter-cluster"
    )


if __name__ == "__main__":
    main()
