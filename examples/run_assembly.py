#!/usr/bin/env python3
"""Assemble and execute the .wsasm programs in examples/asm/.

Demonstrates the textual side of the toolchain: hand-written
WaveScalar assembly with explicit wave-ordering annotations, verified,
interpreted, and then run on the cycle-level simulator.

Run:  python examples/run_assembly.py
"""

from pathlib import Path

from repro.core import BASELINE, WaveScalarProcessor
from repro.lang import assemble
from repro.lang.interp import interpret

ASM_DIR = Path(__file__).parent / "asm"
EXPECTED = {
    "abs_diff": [7],
    "memory_sum": [42],
}


def main():
    processor = WaveScalarProcessor(BASELINE)
    for path in sorted(ASM_DIR.glob("*.wsasm")):
        graph = assemble(path.read_text())
        reference = interpret(graph)
        result = processor.run(graph)
        expected = EXPECTED[graph.name]
        assert reference.output_values() == expected, graph.name
        assert result.outputs() == expected, graph.name
        print(
            f"{path.name:<22} -> {result.outputs()} in "
            f"{result.cycles} cycles (AIPC {result.aipc:.2f})"
        )
    print("\nall assembly programs verified on interpreter + simulator")


if __name__ == "__main__":
    main()
