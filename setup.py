"""Setup shim: configuration lives in pyproject.toml.

Kept so `python setup.py develop` works on machines without the
`wheel` package (PEP-517 editable installs need it).
"""
from setuptools import setup

setup()
