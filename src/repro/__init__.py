"""repro: a reproduction of "Area-Performance Trade-offs in Tiled
Dataflow Architectures" (ISCA 2006).

A complete WaveScalar stack in Python: ISA and toolchain
(:mod:`repro.isa`, :mod:`repro.lang`), instruction placement
(:mod:`repro.place`), a cycle-level simulator (:mod:`repro.sim`), the
paper's area/timing models (:mod:`repro.area`), the design-space and
Pareto machinery (:mod:`repro.design`), fifteen workloads
(:mod:`repro.workloads`), a fault-tolerant sweep harness
(:mod:`repro.harness`), and a high-level API (:mod:`repro.core`).
"""

from .core import BASELINE, SimulationResult, WaveScalarConfig, WaveScalarProcessor

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "SimulationResult",
    "WaveScalarConfig",
    "WaveScalarProcessor",
    "__version__",
]
