"""Static analysis and runtime sanitizing for dataflow programs.

The paper's Pareto study trusts two inputs: that the WaveScalar
programs fed to the simulator are well-formed, and that each swept
configuration is physically realizable under the Table 3 area model
and the 20 FO4 clock.  This package checks both *before* cycles are
spent:

* :func:`analyze_graph` -- rule-based static analysis of a
  :class:`~repro.isa.graph.DataflowGraph` (never-firing inputs, dead
  code, wave-order violations, predicate misuse, fan-out and
  matching-pressure hazards),
* :func:`analyze_config` -- legality checks on a
  :class:`~repro.core.config.WaveScalarConfig` (area budget, timing
  target, cache/store-buffer geometry),
* :class:`RuntimeSanitizer` -- opt-in runtime invariant auditing of a
  simulation (token conservation, matching-table leaks, queue bounds),

all reporting through one :class:`Diagnostic` type.  The ``repro
lint`` CLI command and the sweep harness's pre-validation stage are
thin wrappers over this package; new rules plug in via
:func:`repro.analysis.engine.rule`.
"""

from .dataflow import (
    BoundReport,
    Interval,
    TokenFlow,
    WorkloadStatics,
    analyze_tokens,
    bound_for_cell,
    compute_bound,
    graph_statics,
    workload_statics,
)
from .diagnostics import Diagnostic, Report, Severity
from .engine import (
    CONFIG_RULES,
    GRAPH_RULES,
    Rule,
    analyze_config,
    analyze_graph,
    register,
    rule,
    rule_catalog,
)
from .lint import (
    LintResult,
    lint_config,
    lint_file,
    lint_graph,
    lint_workload,
    merge_reports,
    resolve_targets,
)
from .sanitize import RuntimeSanitizer

__all__ = [
    "BoundReport",
    "Interval",
    "TokenFlow",
    "WorkloadStatics",
    "analyze_tokens",
    "bound_for_cell",
    "compute_bound",
    "graph_statics",
    "workload_statics",
    "Diagnostic",
    "Report",
    "Severity",
    "Rule",
    "rule",
    "register",
    "rule_catalog",
    "GRAPH_RULES",
    "CONFIG_RULES",
    "analyze_graph",
    "analyze_config",
    "LintResult",
    "lint_graph",
    "lint_config",
    "lint_workload",
    "lint_file",
    "resolve_targets",
    "merge_reports",
    "RuntimeSanitizer",
]
