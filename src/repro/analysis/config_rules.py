"""Static-analysis rules over processor configurations.

``WaveScalarConfig.__post_init__`` rejects nonsense (negative sizes);
these rules catch configurations that are *legal objects* but
physically unrealizable or self-contradictory under the paper's
models: over the 400 mm^2 die budget (Table 3), off the 20 FO4 clock
target (Section 4.1), or with cache / store-buffer geometry that
cannot work as specified.

The sweep harness runs this registry before forking a worker for a
cell, so a doomed configuration is recorded as ``invalid`` in the
ledger instead of wasting a subprocess and a watchdog timeout.

Rule ids are stable: ``C001``-``C009``.
"""

from __future__ import annotations

from ..area.model import MAX_DIE_MM2, chip_area
from ..area.timing import (
    MAX_DOMAINS_PER_CLUSTER,
    MAX_MATCHING_ENTRIES,
    MAX_PES_PER_DOMAIN,
    MAX_VIRTUALIZATION,
    TARGET_CYCLE_FO4,
    timing_report,
)
from ..core.config import WaveScalarConfig
from .diagnostics import Diagnostic, Severity
from .engine import TARGET_CONFIG, rule


# ----------------------------------------------------------------------
# C001: die-area budget
# ----------------------------------------------------------------------
@rule("C001", "die area budget", TARGET_CONFIG)
def check_area_budget(config: WaveScalarConfig):
    area = chip_area(config)
    if area > MAX_DIE_MM2:
        yield Diagnostic(
            rule="C001", severity=Severity.ERROR,
            message=(
                f"modelled die area {area:.0f} mm2 exceeds the "
                f"{MAX_DIE_MM2:.0f} mm2 budget (paper Section 4.2)"
            ),
            source=config.describe(), location="area",
            hint="shrink clusters, structure sizes, or the L2",
        )


# ----------------------------------------------------------------------
# C002: 20 FO4 clock target
# ----------------------------------------------------------------------
@rule("C002", "cycle-time target", TARGET_CONFIG)
def check_clock_target(config: WaveScalarConfig):
    report = timing_report(config)
    if not report.meets_target:
        yield Diagnostic(
            rule="C002", severity=Severity.ERROR,
            message=(
                f"cycle time {report.cycle_fo4:.1f} FO4 breaks the "
                f"{TARGET_CYCLE_FO4:.0f} FO4 target; critical path: "
                f"{report.critical_path}"
            ),
            source=config.describe(), location="timing",
            hint="keep matching tables and instruction stores below "
                 "256 entries",
        )
    caps = (
        ("matching_entries", config.matching_entries,
         MAX_MATCHING_ENTRIES),
        ("virtualization", config.virtualization, MAX_VIRTUALIZATION),
        ("pes_per_domain", config.pes_per_domain, MAX_PES_PER_DOMAIN),
        ("domains_per_cluster", config.domains_per_cluster,
         MAX_DOMAINS_PER_CLUSTER),
    )
    for name, value, cap in caps:
        if value > cap:
            yield Diagnostic(
                rule="C002", severity=Severity.ERROR,
                message=(
                    f"{name}={value} exceeds the largest size "
                    f"({cap}) that sustains the 20 FO4 clock "
                    "(Section 4.1 structure limits)"
                ),
                source=config.describe(), location=name,
                hint=f"reduce {name} to at most {cap}",
            )


# ----------------------------------------------------------------------
# C003: matching-table geometry
# ----------------------------------------------------------------------
@rule("C003", "matching-table geometry", TARGET_CONFIG,
      severity=Severity.WARNING)
def check_matching_geometry(config: WaveScalarConfig):
    sets = max(1, config.matching_entries // config.matching_associativity)
    if config.matching_banks > sets:
        yield Diagnostic(
            rule="C003", severity=Severity.WARNING,
            message=(
                f"{config.matching_banks} banks over only {sets} "
                "matching sets; surplus banks can never be addressed"
            ),
            source=config.describe(), location="matching_banks",
            hint="use at most one bank per set",
        )
    if config.matching_hash_k > sets:
        yield Diagnostic(
            rule="C003", severity=Severity.WARNING,
            message=(
                f"hash parameter k={config.matching_hash_k} exceeds the "
                f"{sets} matching sets; the tuned hash degenerates to "
                "the fallback mixed hash"
            ),
            source=config.describe(), location="matching_hash_k",
            hint="pick k <= sets (Section 4.2 uses k=4 at M=128)",
        )


# ----------------------------------------------------------------------
# C004: L1 cache geometry
# ----------------------------------------------------------------------
@rule("C004", "L1 cache geometry", TARGET_CONFIG)
def check_l1_geometry(config: WaveScalarConfig):
    if config.l1_kb * 1024 < config.line_bytes:
        yield Diagnostic(
            rule="C004", severity=Severity.ERROR,
            message=(
                f"L1 of {config.l1_kb} KB cannot hold a single "
                f"{config.line_bytes}-byte line"
            ),
            source=config.describe(), location="l1_kb",
            hint="grow the L1 or shrink the line size",
        )
    elif config.l1_lines < config.l1_associativity:
        yield Diagnostic(
            rule="C004", severity=Severity.ERROR,
            message=(
                f"L1 associativity {config.l1_associativity} exceeds its "
                f"{config.l1_lines} total lines; the cache cannot form "
                "one full set"
            ),
            source=config.describe(), location="l1_associativity",
            hint="reduce associativity or grow the L1",
        )


# ----------------------------------------------------------------------
# C005: store-buffer capacity
# ----------------------------------------------------------------------
@rule("C005", "store-buffer capacity", TARGET_CONFIG)
def check_storebuffer(config: WaveScalarConfig):
    if config.storebuffer_waves < 1:
        yield Diagnostic(
            rule="C005", severity=Severity.ERROR,
            message="store buffer tracks no waves; no memory operation "
                    "could ever issue",
            source=config.describe(), location="storebuffer_waves",
            hint="allow at least one in-flight wave",
        )
        return
    if config.partial_store_queues > config.storebuffer_waves:
        yield Diagnostic(
            rule="C005", severity=Severity.WARNING,
            message=(
                f"{config.partial_store_queues} partial-store queues for "
                f"only {config.storebuffer_waves} in-flight waves; the "
                "surplus queues can never fill"
            ),
            source=config.describe(), location="partial_store_queues",
            hint="use at most one PSQ per in-flight wave",
        )
    if config.psq_entries < 1:
        yield Diagnostic(
            rule="C005", severity=Severity.ERROR,
            message="partial-store queues hold zero entries; decoupled "
                    "stores could never merge",
            source=config.describe(), location="psq_entries",
            hint="allow at least one PSQ entry",
        )


# ----------------------------------------------------------------------
# C006: instruction-capacity floor
# ----------------------------------------------------------------------
@rule("C006", "instruction-capacity floor", TARGET_CONFIG,
      severity=Severity.WARNING)
def check_capacity_floor(config: WaveScalarConfig):
    from ..design.space import MIN_CAPACITY  # local: avoid import cycle

    capacity = config.total_instruction_capacity
    if capacity < MIN_CAPACITY:
        yield Diagnostic(
            rule="C006", severity=Severity.WARNING,
            message=(
                f"total instruction capacity {capacity} is below the "
                f"{MIN_CAPACITY}-instruction floor the paper requires "
                "of a viable design (Section 4.2)"
            ),
            source=config.describe(), location="virtualization",
            hint="grow V or the PE count; small binaries may still run",
        )


# ----------------------------------------------------------------------
# C007: tiling balance rules
# ----------------------------------------------------------------------
@rule("C007", "tiling balance", TARGET_CONFIG, severity=Severity.WARNING)
def check_balance(config: WaveScalarConfig):
    from ..design.space import is_balanced  # local: avoid import cycle

    if is_balanced(config):
        return
    if config.pes_per_domain < 8 and config.domains_per_cluster > 1:
        reason = "multiple domains with under-full (<8 PE) domains"
    elif config.domains_per_cluster < 4 and config.clusters > 1:
        reason = "multiple clusters with under-full (<4 domain) clusters"
    elif config.clusters > 1 and \
            int(round(config.clusters ** 0.5)) ** 2 != config.clusters:
        reason = f"{config.clusters} clusters cannot tile a square mesh"
    else:
        reason = f"{config.l2_mb} MB of L2 dwarfs the compute it serves"
    yield Diagnostic(
        rule="C007", severity=Severity.WARNING,
        message=f"unbalanced tiling: {reason} (Section 4.2 prune rules)",
        source=config.describe(), location="tiling",
        hint="fill domains before adding domains, and domains' worth "
             "of clusters before adding clusters",
    )


# ----------------------------------------------------------------------
# C008: memory-latency ordering
# ----------------------------------------------------------------------
@rule("C008", "memory-latency ordering", TARGET_CONFIG)
def check_latency_ordering(config: WaveScalarConfig):
    if config.l2_mb > 0 and config.l2_base_latency > config.l2_max_latency:
        yield Diagnostic(
            rule="C008", severity=Severity.ERROR,
            message=(
                f"L2 base latency {config.l2_base_latency} exceeds its "
                f"max latency {config.l2_max_latency}; the distance "
                "model is contradictory"
            ),
            source=config.describe(), location="l2_base_latency",
            hint="keep base <= max",
        )
    if config.l2_mb > 0 and config.dram_latency <= config.l2_max_latency:
        yield Diagnostic(
            rule="C008", severity=Severity.WARNING,
            message=(
                f"DRAM latency {config.dram_latency} is not above the "
                f"L2's {config.l2_max_latency}; the L2 could never help"
            ),
            source=config.describe(), location="dram_latency",
            hint="a real memory hierarchy is monotonically slower "
                 "outward",
        )


# ----------------------------------------------------------------------
# C009: virtualization ratio (informational)
# ----------------------------------------------------------------------
@rule("C009", "virtualization ratio", TARGET_CONFIG,
      severity=Severity.INFO)
def check_virtualization_ratio(config: WaveScalarConfig):
    if config.matching_entries != config.virtualization:
        ratio = config.matching_entries / config.virtualization
        yield Diagnostic(
            rule="C009", severity=Severity.INFO,
            message=(
                f"M/V ratio is {ratio:.2f}; the paper's Table 4 "
                "analysis selects a processor-wide ratio of 1"
            ),
            source=config.describe(), location="matching_entries",
            hint="off-ratio designs are excluded from the Figure 6 "
                 "sweep but simulate fine",
        )
