"""Fixed-point token-flow analysis and sound AIPC upper bounds.

Two layers, both over a :class:`~repro.isa.graph.DataflowGraph`:

**Token-flow analysis** (:func:`analyze_tokens`) -- an abstract
interpretation over *arrival-count intervals*: for every
``(instruction, port)`` the analysis computes an interval ``[lo, hi]``
bounding how many tokens can ever arrive there, by iterating monotone
transfer functions to a fixed point.

* the abstract domain is ``Interval`` -- ``lo`` is a proven lower
  bound, ``hi`` a proven upper bound (possibly infinite);
* an instruction's firing count is the min over its ports (the
  dataflow firing rule: one token per port per firing);
* a normal destination receives exactly the producer's firing count;
  a STEER destination receives ``[0, firings.hi]`` (the predicate may
  route every token the other way);
* termination: ``hi`` is *widened* to infinity after
  :data:`WIDEN_AFTER` increases (a loop's trip count is not statically
  knowable), and ``lo`` is *frozen* after the same number of increases
  -- a frozen ``lo`` is still sound because every ascending iterate
  from bottom under-approximates the least fixed point.

The analysis promotes the engine's dynamic deadlock check to a static
*proof*: a port that provably receives a token (``lo >= 1``) next to a
sibling port that provably never does (``hi == 0``) is a token parked
forever in the matching table -- the simulator's quiescence check
*will* raise ``TrueDeadlock`` on that graph, before any cycles are
spent discovering it.  These proofs surface as ``A``-rule diagnostics
through the standard rule registry, so ``repro lint`` reports them.

**Bound model** (:func:`compute_bound` / :func:`workload_statics`) --
a sound per-cell AIPC upper bound::

    AIPC <= min(PE roof,  alpha work / cycles lower bound)

where the cycles lower bound is the max of independent *roofs*, each a
consequence of one hardware resource the
:class:`~repro.sim.engine.WaveScalarProcessor` models as a reservation
ledger:

* **critical path** -- first-firing times iterated to a fixed point
  with per-edge delay floors (see below);
* **dispatch roof** -- every PE dispatches at most one operation per
  cycle (per-PE ``BandwidthLedger(1)``), and a STORE dispatches twice
  (decoupled address/data halves); placement pins each instruction to
  one PE, so the busiest PE's dispatch count lower-bounds cycles;
* **memory roof** -- each cluster's L1 accepts ``l1_ports`` accesses
  per cycle, and a thread's memory traffic is pinned to its home
  cluster by placement;
* **FPU roof** -- one FPU per domain, one operation per cycle;
* **recurrence roof** -- for a dependence cycle ``C`` with per-edge
  token *slack* (arrivals on the consumer port not produced by the
  in-cycle producer), the k-th firing recurrence composes to
  ``cycles >= floor((n - 1) / slack(C)) * delay(C)``; slacks come
  from the reference interpreter's exact per-edge delivery counts.

Edge delays come in two precisions.  The config-free floor is the
producer's execution latency (the speculative-pod bypass: a consumer
can never observe a result before the producer's latency has
elapsed).  The *placed* floor replays the engine's timing pipeline
against the deterministic snake placement: a pod-local speculative
edge costs ``max(1, latency)``, any other operand hop pays the
dispatch-to-execute cycle, the network level's base latency (domain
bus, cluster NET chain, or mesh hop count) and the match-to-dispatch
delay, and a memory edge pays the full store-buffer round trip
(request to the home cluster, store-buffer pipeline, L1 hit, and the
completion delivery back).  Every term is the *uncontended* minimum
of the corresponding engine path, so the placed delays remain true
lower bounds while separating designs by geometry.

The *work* terms come from :func:`repro.lang.interp.interpret` -- the
architectural golden model, whose dynamic counts are config-independent
and exact -- so the only approximation in the bound is in the roofs,
and every roof is a true lower bound on cycles.  The soundness gate
(``tests/analysis/test_bound_soundness.py``) asserts
``bound >= measured AIPC`` for every suite workload across the design
grid; the sweep's ``--prune`` mode (see
:func:`repro.harness.sweep.design_space_sweep`) uses these bounds to
skip dominated designs without moving the Pareto frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..isa.graph import DataflowGraph
from ..isa.opcodes import Opcode
from .diagnostics import Diagnostic, Report, Severity
from .engine import TARGET_GRAPH, rule

__all__ = [
    "INF",
    "WIDEN_AFTER",
    "Interval",
    "TokenFlow",
    "analyze_tokens",
    "deadlock_proofs",
    "critical_path_cycles",
    "find_recurrence_cycles",
    "score_cycles",
    "recurrence_cycles",
    "placed_edge_weight",
    "WorkloadStatics",
    "workload_statics",
    "BoundReport",
    "compute_bound",
    "bound_for_cell",
    "clear_statics_cache",
]

#: The infinite upper bound (loops with data-dependent trip counts).
INF = math.inf

#: Interval-growth steps per port before ``hi`` widens to infinity
#: and ``lo`` freezes.  Any value terminates; smaller converges
#: faster, larger proves tighter finite bounds on deep acyclic chains.
WIDEN_AFTER = 8

#: Fixed-point iteration cap (rounds over the whole instruction
#: array).  Widening guarantees convergence well before this; the cap
#: is a backstop so a pathological graph degrades to a sound partial
#: result instead of spinning.
MAX_ROUNDS = 512


@dataclass(frozen=True)
class Interval:
    """Arrival/firing-count bounds: ``lo`` proven minimum, ``hi``
    proven maximum (``INF`` when unbounded)."""

    lo: int = 0
    hi: float = 0

    def __repr__(self) -> str:
        hi = "inf" if self.hi == INF else int(self.hi)
        return f"[{self.lo},{hi}]"


_ZERO = Interval(0, 0)


@dataclass
class TokenFlow:
    """Result of one fixed-point token-flow analysis."""

    #: Per ``(inst, port)`` arrival-count interval.
    arrivals: dict[tuple[int, int], Interval]
    #: Per-instruction firing-count interval (min over ports).
    firings: dict[int, Interval]
    #: Instructions proven to fire at least once.
    must_fire: frozenset[int]
    #: Instructions proven to never fire (some port's ``hi == 0``).
    never_fire: frozenset[int]
    #: ``(inst, starved_port, fed_port)`` for every proven deadlock:
    #: ``fed_port`` provably receives a token, ``starved_port``
    #: provably never does, so the match can never complete.
    deadlocks: list[tuple[int, int, int]]
    #: Whether iteration reached the fixed point (False only if the
    #: MAX_ROUNDS backstop fired; bounds remain sound either way).
    converged: bool
    #: Fixed-point rounds actually used.
    rounds: int

    @property
    def proven_deadlock(self) -> bool:
        return bool(self.deadlocks)


def _entry_counts(graph: DataflowGraph) -> dict[tuple[int, int], int]:
    counts: dict[tuple[int, int], int] = {}
    for token in graph.entry_tokens:
        key = (token.inst, token.port)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _send_targets(inst) -> Iterator[tuple[int, int, bool]]:
    """``(dest_inst, dest_port, conditional)`` for every outgoing edge.

    ``conditional`` marks destinations that may receive anywhere from
    zero to every firing's token (STEER routing); unconditional
    destinations receive exactly one token per firing.
    """
    conditional = inst.opcode is Opcode.STEER
    for dest in inst.dests:
        yield dest.inst, dest.port, conditional
    for dest in inst.false_dests:
        yield dest.inst, dest.port, True


def analyze_tokens(
    graph: DataflowGraph,
    widen_after: int = WIDEN_AFTER,
    max_rounds: int = MAX_ROUNDS,
) -> TokenFlow:
    """Iterate arrival-count intervals to a (widened) fixed point.

    Sound for *any* round count: transfer functions are monotone and
    iteration ascends from bottom, so ``lo`` never exceeds the real
    count and (after widening) ``hi`` never undercuts it.
    """
    n = len(graph)
    entry = _entry_counts(graph)
    # Producers per (inst, port): list of (src_inst, conditional).
    feeders: dict[tuple[int, int], list[tuple[int, bool]]] = {}
    for inst in graph.instructions:
        if inst.opcode in (Opcode.OUTPUT, Opcode.THREAD_HALT):
            continue  # sinks: consume tokens, send nothing
        for dst, port, conditional in _send_targets(inst):
            feeders.setdefault((dst, port), []).append(
                (inst.inst_id, conditional)
            )

    arrivals: dict[tuple[int, int], Interval] = {}
    firings: list[Interval] = [_ZERO] * n
    lo_bumps: dict[tuple[int, int], int] = {}
    hi_bumps: dict[tuple[int, int], int] = {}

    def port_interval(inst_id: int, port: int) -> Interval:
        key = (inst_id, port)
        lo = hi = entry.get(key, 0)
        for src, conditional in feeders.get(key, ()):
            fires = firings[src]
            if not conditional:
                lo += fires.lo
            hi += fires.hi  # INF absorbs
        return Interval(lo, hi)

    converged = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        for inst in graph.instructions:
            inst_id = inst.inst_id
            fire_lo: float = INF
            fire_hi: float = INF
            for port in range(inst.arity):
                key = (inst_id, port)
                new = port_interval(inst_id, port)
                old = arrivals.get(key, _ZERO)
                lo, hi = new.lo, new.hi
                # Freeze lo after widen_after increases: any
                # ascending iterate is a sound lower bound, so
                # stopping early only loses precision.
                if lo > old.lo:
                    bumps = lo_bumps.get(key, 0) + 1
                    lo_bumps[key] = bumps
                    if bumps > widen_after:
                        lo = old.lo
                else:
                    lo = old.lo
                # Widen hi to INF after widen_after increases: the
                # real count may be unbounded, and INF is always an
                # upper bound.
                if hi > old.hi:
                    bumps = hi_bumps.get(key, 0) + 1
                    hi_bumps[key] = bumps
                    if bumps > widen_after:
                        hi = INF
                else:
                    hi = old.hi
                if lo != old.lo or hi != old.hi:
                    arrivals[key] = Interval(lo, hi)
                    changed = True
                current = arrivals.get(key, _ZERO)
                fire_lo = min(fire_lo, current.lo)
                fire_hi = min(fire_hi, current.hi)
            if inst.arity == 0:  # not expressible today; be safe
                fire_lo = fire_hi = 0
            new_f = Interval(int(fire_lo), fire_hi)
            if new_f != firings[inst_id]:
                firings[inst_id] = new_f
                changed = True
        if not changed:
            converged = True
            break

    firings_map = {i: firings[i] for i in range(n)}
    must = frozenset(i for i in range(n) if firings[i].lo >= 1)
    never = frozenset(i for i in range(n) if firings[i].hi == 0)
    deadlocks: list[tuple[int, int, int]] = []
    for inst in graph.instructions:
        if inst.arity < 2:
            continue
        ports = [
            arrivals.get((inst.inst_id, p), _ZERO)
            for p in range(inst.arity)
        ]
        starved = [p for p, iv in enumerate(ports) if iv.hi == 0]
        fed = [p for p, iv in enumerate(ports) if iv.lo >= 1]
        if starved and fed:
            deadlocks.append((inst.inst_id, starved[0], fed[0]))
    return TokenFlow(
        arrivals=arrivals,
        firings=firings_map,
        must_fire=must,
        never_fire=never,
        deadlocks=deadlocks,
        converged=converged,
        rounds=rounds,
    )


def deadlock_proofs(
    graph: DataflowGraph, flow: Optional[TokenFlow] = None
) -> list[Diagnostic]:
    """The A001 diagnostics for every statically proven deadlock."""
    if flow is None:
        flow = analyze_tokens(graph)
    out = []
    for inst_id, starved, fed in flow.deadlocks:
        opcode = graph[inst_id].opcode.name
        out.append(Diagnostic(
            rule="A001",
            severity=Severity.ERROR,
            message=(
                f"proven deadlock: {opcode} i{inst_id} port {fed} "
                f"receives a token but port {starved} provably never "
                "does; the match can never complete and the token is "
                "parked forever"
            ),
            source=graph.name,
            location=f"i{inst_id}",
            hint=(
                "wire a producer (or an entry token) to port "
                f"{starved}, or remove the dead operand"
            ),
        ))
    return out


@rule("A001", "statically proven true deadlock", TARGET_GRAPH)
def _check_proven_deadlock(graph: DataflowGraph) -> list[Diagnostic]:
    """Fixed-point promotion of the engine's dynamic quiescence check:
    a diagnostic here is a *proof* that simulation will end in
    ``TrueDeadlock``.  Starvation that is already structural -- the
    port has no producer and no entry token -- is left to G001, which
    carries the actionable fix; A001 reports only what a structural
    scan cannot see (a wired port the token flow proves dry)."""
    flow = analyze_tokens(graph)
    wired = {key for key in _entry_counts(graph)}
    for inst in graph.instructions:
        for dst_inst, dst_port, _ in _send_targets(inst):
            wired.add((dst_inst, dst_port))
    proofs = deadlock_proofs(graph, flow)
    return [
        diag
        for diag, (inst_id, starved, _) in zip(proofs, flow.deadlocks)
        if (inst_id, starved) in wired
    ]


@rule("A002", "token-flow fixed point not reached", TARGET_GRAPH,
      severity=Severity.WARNING)
def _check_convergence(graph: DataflowGraph) -> list[Diagnostic]:
    """The MAX_ROUNDS backstop firing means interval precision was
    lost (bounds stay sound); real programs converge in tens of
    rounds, so this flags pathological graph structure."""
    flow = analyze_tokens(graph)
    if flow.converged:
        return []
    return [Diagnostic(
        rule="A002",
        severity=Severity.WARNING,
        message=(
            f"token-flow analysis hit the {MAX_ROUNDS}-round backstop "
            "before the fixed point; interval bounds are sound but "
            "imprecise"
        ),
        source=graph.name,
        hint="the graph likely has an unusually deep or dense "
             "cyclic region",
    )]


# ----------------------------------------------------------------------
# Critical path (first-firing lower bounds)
# ----------------------------------------------------------------------
def critical_path_cycles(
    graph: DataflowGraph,
    must_fire: frozenset[int],
    max_rounds: int = MAX_ROUNDS,
    edge_weight: Optional[Callable[[int, int], int]] = None,
) -> int:
    """A lower bound on total cycles from first-firing times.

    ``first(i) >= max over ports p of min over producers u of
    (first(u) + delay(u, i))`` where the default delay is the
    producer's execution latency (the speculative-pod bypass floor: a
    consumer cannot observe an operand before its producer's execution
    latency has elapsed); ``edge_weight(src, dst)`` substitutes a
    placement-aware floor.  Iterated ascending from zero, so any round
    count is sound; only instructions known to fire (``must_fire``)
    contribute to the result.
    """
    if not must_fire:
        return 0
    entry = _entry_counts(graph)
    feeders: dict[tuple[int, int], list[int]] = {}
    for inst in graph.instructions:
        if inst.opcode in (Opcode.OUTPUT, Opcode.THREAD_HALT):
            continue
        for dst, port, _ in _send_targets(inst):
            feeders.setdefault((dst, port), []).append(inst.inst_id)
    latency = [i.opcode.latency for i in graph.instructions]
    if edge_weight is None:
        def edge_weight(src: int, dst: int) -> int:  # noqa: ARG001
            return latency[src]
    first = [0] * len(graph)
    for _ in range(max_rounds):
        changed = False
        for inst in graph.instructions:
            inst_id = inst.inst_id
            fire_at = 0
            for port in range(inst.arity):
                key = (inst_id, port)
                # First arrival on this port: an entry token lands at
                # cycle 0; otherwise the earliest producer delivery.
                if key in entry:
                    continue
                sources = feeders.get(key)
                if not sources:
                    continue  # port never fed; handled by must_fire
                arrive = min(
                    first[src] + edge_weight(src, inst_id)
                    for src in sources
                )
                if arrive > fire_at:
                    fire_at = arrive
            if fire_at > first[inst_id]:
                first[inst_id] = fire_at
                changed = True
        if not changed:
            break
    # The last must-fire instruction still executes after it fires.
    return max(first[i] + latency[i] for i in must_fire)


# ----------------------------------------------------------------------
# Recurrence roof (loop-carried dependence cycles)
# ----------------------------------------------------------------------
#: Budget on DFS edge-visits while enumerating simple cycles; missing
#: the best cycle under budget only *weakens* the bound (never
#: unsound).
CYCLE_BUDGET = 100_000
#: Maximum simple-cycle length explored.
CYCLE_MAX_LEN = 64


def _scc_partition(adj: dict[int, list[int]],
                   nodes: list[int]) -> list[list[int]]:
    """Iterative Tarjan strongly-connected components (sorted ids)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(adj.get(root, ())))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adj.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(sorted(comp))
    return sccs


#: Most dependence cycles kept per workload for per-config re-scoring
#: (the stored set is re-weighted with placed edge delays by
#: :func:`compute_bound`; dropping cycles only weakens the bound).
MAX_STORED_CYCLES = 1024


def find_recurrence_cycles(
    graph: DataflowGraph,
    fired: dict[int, int],
    sent: dict[tuple[int, int, int], int],
    budget: int = CYCLE_BUDGET,
) -> list[tuple[tuple[int, ...], int, int]]:
    """Enumerate loop-carried dependence cycles: ``(path, slack, peak)``.

    For an edge ``u -> (v, p)`` the *slack* is the number of tokens
    port ``p`` received that did **not** come from ``u`` (entry tokens
    plus other producers): ``T_v(k) >= T_u(k - slack) + delay(u, v)``,
    because the k-th firing of ``v`` consumes the k-th arrival on
    ``p``, of which at most ``slack`` bypass ``u``.  Composed around a
    simple cycle ``C`` with total slack ``S >= 1`` and total delay
    ``D``, the recurrence telescopes to
    ``cycles >= floor((peak - 1) / S) * D`` where ``peak`` is the max
    firing count on the cycle.

    Enumeration is a budgeted DFS per strongly-connected component;
    an exhausted budget returns the cycles found so far (a subset of
    constraints, so any derived bound stays sound).  Zero-slack
    cycles are dropped: they cannot occur in a completed execution.
    """
    # Arrivals per (inst, port): entry tokens + every producer's
    # deliveries -- exact, from the reference execution.
    arrivals: dict[tuple[int, int], int] = dict(_entry_counts(graph))
    for (src, dst, port), count in sent.items():
        key = (dst, port)
        arrivals[key] = arrivals.get(key, 0) + count
    # Dependence edges between instructions that actually fired, each
    # carrying the minimum slack over parallel edges (the tightest
    # valid constraint).
    edge: dict[tuple[int, int], int] = {}  # (u, v) -> min slack
    for (src, dst, port), count in sent.items():
        if count <= 0 or not fired.get(src) or not fired.get(dst):
            continue
        slack = arrivals[(dst, port)] - count
        key = (src, dst)
        if key not in edge or slack < edge[key]:
            edge[key] = slack
    adj: dict[int, list[int]] = {}
    for (src, dst) in sorted(edge):
        adj.setdefault(src, []).append(dst)
    nodes = sorted({u for u, _ in edge} | {v for _, v in edge})

    found: list[tuple[tuple[int, ...], int, int]] = []
    steps = 0

    def note(path: list[int], slack: int) -> None:
        if slack <= 0:
            return
        peak = max(fired[v] for v in path)
        found.append((tuple(path), slack, peak))

    for comp in _scc_partition(adj, nodes):
        members = set(comp)
        if len(comp) == 1:
            node = comp[0]
            if (node, node) in edge:  # self-loop
                note([node], edge[(node, node)])
            continue
        # DFS simple cycles within the SCC, Johnson-style: each cycle
        # is discovered exactly once from its smallest member.
        for start in comp:
            if steps >= budget:
                break
            path = [start]
            on_path = {start}
            frames = [iter(adj.get(start, ()))]
            slacks = [0]
            while frames:
                if steps >= budget:
                    break
                advanced = False
                for nxt in frames[-1]:
                    steps += 1
                    if nxt not in members or nxt < start:
                        continue
                    here = path[-1]
                    if nxt == start:
                        note(path, slacks[-1] + edge[(here, start)])
                        continue
                    if nxt in on_path or len(path) >= CYCLE_MAX_LEN:
                        continue
                    path.append(nxt)
                    on_path.add(nxt)
                    slacks.append(slacks[-1] + edge[(here, nxt)])
                    frames.append(iter(adj.get(nxt, ())))
                    advanced = True
                    break
                if not advanced:
                    frames.pop()
                    on_path.discard(path.pop())
                    slacks.pop()
    return found


def score_cycles(
    cycles: list[tuple[tuple[int, ...], int, int]],
    edge_weight: Callable[[int, int], int],
) -> int:
    """Max recurrence bound over ``cycles`` with per-edge delays."""
    best = 0
    for path, slack, peak in cycles:
        repeats = (peak - 1) // slack
        if repeats <= 0:
            continue
        n = len(path)
        delay = sum(
            edge_weight(path[i], path[(i + 1) % n]) for i in range(n)
        )
        bound = repeats * delay
        if bound > best:
            best = bound
    return best


def recurrence_cycles(
    graph: DataflowGraph,
    fired: dict[int, int],
    sent: dict[tuple[int, int, int], int],
    budget: int = CYCLE_BUDGET,
) -> int:
    """Config-free recurrence roof: cycle delays are producer
    execution latencies (see :func:`find_recurrence_cycles`)."""
    latency = [i.opcode.latency for i in graph.instructions]
    cycles = find_recurrence_cycles(graph, fired, sent, budget)
    return score_cycles(
        cycles, lambda src, dst: latency[src]  # noqa: ARG005
    )


# ----------------------------------------------------------------------
# Placed edge delays (config + placement aware floors)
# ----------------------------------------------------------------------
def placed_edge_weight(
    graph: DataflowGraph, config, placement
) -> Callable[[int, int], int]:
    """Per-edge dispatch-to-dispatch delay floors under ``placement``.

    Mirrors the engine's uncontended timing pipeline
    (:mod:`repro.sim.engine` / :mod:`repro.sim.network.topology`):

    * pod-local with speculative fire: the consumer dispatches as soon
      as the bypass network carries the result -- ``max(1, latency)``;
    * any other operand hop: one dispatch-to-execute cycle, the
      producer's latency, the network level's base latency (domain
      bus / cluster NET chain / mesh with hop count), then the
      match-to-dispatch delay on arrival;
    * a memory producer's consumers wait for the full store-buffer
      round trip: request to the thread's home cluster (floored at
      the same-cluster ``cluster_latency``, which also floors every
      cross-cluster path), the store-buffer pipeline, an L1 *hit*
      (loads/stores only -- misses only take longer), and the
      completion delivery back out.

    Every term is the minimum of the corresponding engine path with
    zero contention, so these are true per-edge lower bounds.
    """
    latency = [i.opcode.latency for i in graph.instructions]
    opcode = [i.opcode for i in graph.instructions]
    pe_of = placement.pe_of
    pods = config.pods_enabled
    spec = config.speculative_fire
    match = config.match_to_dispatch_delay
    ppd = config.pes_per_domain
    ppc = config.pes_per_cluster
    mem_round = (
        config.cluster_latency + config.storebuffer_latency
        + config.cluster_latency + match
    )
    cols, _rows = config.grid_shape

    def weight(src: int, dst: int) -> int:
        lat = latency[src]
        op = opcode[src]
        if op.is_memory:
            extra = (
                config.l1_hit_latency
                if (op.is_load or op.is_store) else 0
            )
            return 1 + lat + mem_round + extra
        a = pe_of.get(src, 0)
        b = pe_of.get(dst, 0)
        if a == b or (pods and a // 2 == b // 2):
            if spec:
                return lat if lat > 1 else 1
            return 1 + lat + config.pod_latency + match
        if a // ppd == b // ppd:
            return 1 + lat + config.domain_latency + match
        ca, cb = a // ppc, b // ppc
        if ca == cb:
            return 1 + lat + config.cluster_latency + match
        hops = (
            abs(ca % cols - cb % cols) + abs(ca // cols - cb // cols)
        )
        return 1 + lat + config.intercluster_base + hops + match

    return weight


# ----------------------------------------------------------------------
# Workload statics: config-independent bound ingredients
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadStatics:
    """Everything the bound needs that does not depend on the design.

    Computed once per ``(workload, scale, threads, k, seed)`` from the
    reference interpreter's exact dynamic profile plus the fixed-point
    analyses, then combined with any number of configs by
    :func:`compute_bound` at dictionary-lookup cost.
    """

    workload: str
    scale: str
    threads: Optional[int]
    #: Distinct alpha-equivalent static instructions (PE-roof term).
    static_alpha: int
    #: Exact dynamic work terms from the reference execution.
    alpha_work: int
    dispatch_work: int  # dynamic instructions + STORE refires
    memory_work: int  # LOAD + STORE firings (cache accesses)
    fpu_work: int
    #: Per-thread memory firings, sorted by thread id.
    memory_by_thread: tuple[tuple[int, int], ...]
    #: Config-independent cycle lower bounds.
    critical_path: int
    recurrence: int
    #: Statically proven to end in TrueDeadlock (AIPC bound is 0).
    proven_deadlock: bool
    #: Maximum dataflow out-degree over instructions that fire: how
    #: many operand sends one firing can fan out to.  A surrogate
    #: feature (network-pressure proxy), not a bound ingredient.
    fanout_pressure: int = 0
    #: The compiled graph (shared with the simulator's LRU cache) --
    #: needed to re-score the roofs against a concrete placement.
    graph: Optional[DataflowGraph] = None
    #: Instructions proven to fire (exact, from the profile).
    must_fire: frozenset[int] = frozenset()
    #: Exact per-instruction firing counts, sorted by id.
    fired_by_inst: tuple[tuple[int, int], ...] = ()
    #: Dependence cycles for per-config recurrence re-scoring, capped
    #: at :data:`MAX_STORED_CYCLES` strongest (by config-free score).
    cycles: tuple[tuple[tuple[int, ...], int, int], ...] = ()

    @property
    def config_free_cycles(self) -> int:
        return max(self.critical_path, self.recurrence, 1)


def workload_statics(
    name: str,
    scale: str = "tiny",
    threads: Optional[int] = None,
    k: Optional[int] = None,
    seed: int = 0,
) -> WorkloadStatics:
    """Build, reference-execute, and statically analyze one workload
    instantiation (uncached; see :func:`bound_for_cell`)."""
    from ..sim.compile import get_compiled

    compiled = get_compiled(name, scale=scale, threads=threads, k=k,
                            seed=seed)
    return graph_statics(compiled.graph, name=name, scale=scale,
                         threads=threads)


def graph_statics(
    graph: DataflowGraph,
    name: str = "<graph>",
    scale: str = "tiny",
    threads: Optional[int] = None,
) -> WorkloadStatics:
    """Statically analyze and reference-execute an already-built graph.

    The registry-independent core of :func:`workload_statics`: the
    fuzzer (and any programmatic caller with a hand-built graph) uses
    this to get bound ingredients for programs that have no registry
    name."""
    from ..lang.interp import interpret

    flow = analyze_tokens(graph)
    if flow.proven_deadlock:
        return WorkloadStatics(
            workload=name, scale=scale, threads=threads,
            static_alpha=len(graph.alpha_equivalent_ids()),
            alpha_work=0, dispatch_work=0, memory_work=0, fpu_work=0,
            memory_by_thread=(), critical_path=0, recurrence=0,
            proven_deadlock=True,
        )
    result = interpret(graph)
    fired = result.fired_by_inst
    stores = result.fired_by_opcode.get(Opcode.STORE.name, 0)
    loads = result.fired_by_opcode.get(Opcode.LOAD.name, 0)
    fpu_work = sum(
        count for opname, count in result.fired_by_opcode.items()
        if getattr(Opcode, opname).uses_fpu
    )
    owner = graph.thread_of_instruction()
    by_thread: dict[int, int] = {}
    for inst in graph.instructions:
        if inst.opcode.is_load or inst.opcode.is_store:
            count = fired.get(inst.inst_id, 0)
            if count:
                thread = owner.get(inst.inst_id, 0)
                by_thread[thread] = by_thread.get(thread, 0) + count
    must_fire = frozenset(i for i, c in fired.items() if c > 0)
    latency = [i.opcode.latency for i in graph.instructions]
    cycles = find_recurrence_cycles(graph, fired, result.sent_by_edge)
    # Keep the strongest cycles by config-free score (deterministic
    # tie-break on the path itself); dropping the tail only weakens
    # the per-config re-scored bound, never unsounds it.
    cycles.sort(
        key=lambda c: (
            -((c[2] - 1) // c[1]) * sum(latency[v] for v in c[0]),
            c[0],
        )
    )
    kept = tuple(cycles[:MAX_STORED_CYCLES])
    return WorkloadStatics(
        workload=name, scale=scale, threads=threads,
        static_alpha=len(graph.alpha_equivalent_ids()),
        alpha_work=result.alpha_instructions,
        dispatch_work=result.dynamic_instructions + stores,
        memory_work=loads + stores,
        fpu_work=fpu_work,
        memory_by_thread=tuple(sorted(by_thread.items())),
        critical_path=critical_path_cycles(graph, must_fire),
        recurrence=score_cycles(
            list(kept), lambda src, dst: latency[src]  # noqa: ARG005
        ),
        proven_deadlock=False,
        fanout_pressure=max(
            (sum(1 for _ in _send_targets(inst))
             for inst in graph.instructions
             if inst.inst_id in must_fire),
            default=0,
        ),
        graph=graph,
        must_fire=must_fire,
        fired_by_inst=tuple(sorted(fired.items())),
        cycles=kept,
    )


# Per-process memo: the driver computes bounds for every design in a
# grid against the same handful of workload instantiations.
_STATICS_CACHE: dict[tuple, WorkloadStatics] = {}


def clear_statics_cache() -> None:
    _STATICS_CACHE.clear()


def _cached_statics(name: str, scale: str, threads: Optional[int],
                    k: Optional[int], seed: int) -> WorkloadStatics:
    key = (name, scale, threads, k, seed)
    statics = _STATICS_CACHE.get(key)
    if statics is None:
        statics = workload_statics(name, scale=scale, threads=threads,
                                   k=k, seed=seed)
        _STATICS_CACHE[key] = statics
    return statics


# ----------------------------------------------------------------------
# The bound itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundReport:
    """A sound AIPC upper bound for one (workload, config) cell."""

    workload: str
    config: str
    threads: Optional[int]
    scale: str
    #: The bound: measured AIPC can never exceed this.
    aipc_bound: float
    #: The binding cycles lower bound and its component roofs.
    cycles_lower_bound: int
    components: dict[str, float]
    alpha_work: int
    proven_deadlock: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def binding_roof(self) -> str:
        """Name of the roof that set the bound."""
        if self.proven_deadlock:
            return "deadlock"
        work = self.alpha_work / max(1, self.cycles_lower_bound)
        if self.components.get("pe_roof", INF) <= work:
            return "pe_roof"
        cycle_roofs = {
            name: value for name, value in self.components.items()
            if name != "pe_roof"
        }
        if not cycle_roofs:
            return "pe_roof"
        return max(sorted(cycle_roofs), key=lambda k: cycle_roofs[k])

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config,
            "threads": self.threads,
            "scale": self.scale,
            "aipc_bound": round(self.aipc_bound, 6),
            "cycles_lower_bound": self.cycles_lower_bound,
            "components": {
                name: round(value, 6)
                for name, value in sorted(self.components.items())
            },
            "alpha_work": self.alpha_work,
            "proven_deadlock": self.proven_deadlock,
        }

    def render(self) -> str:
        threads = f" x{self.threads}thr" if self.threads else ""
        lines = [
            f"{self.workload}@{self.scale}{threads} on {self.config}",
            f"  AIPC upper bound   {self.aipc_bound:.4f}"
            + ("  (proven deadlock)" if self.proven_deadlock else ""),
            f"  alpha work         {self.alpha_work:,}",
            f"  cycles lower bound {self.cycles_lower_bound:,}",
        ]
        for name in sorted(self.components):
            lines.append(
                f"    {name:<16} {self.components[name]:,.1f}"
            )
        for diag in self.diagnostics:
            lines.append(f"  {diag.render()}")
        return "\n".join(lines)


def compute_bound(
    statics: WorkloadStatics, config
) -> BoundReport:
    """Combine one workload's statics with one design config.

    Pure and cheap (no simulation, no graph walk): every term is a
    closed form over the statics and the config's resource counts.
    """
    label = config.describe()
    if statics.proven_deadlock:
        return BoundReport(
            workload=statics.workload, config=label,
            threads=statics.threads, scale=statics.scale,
            aipc_bound=0.0, cycles_lower_bound=0, components={},
            alpha_work=0, proven_deadlock=True,
        )
    total_pes = config.total_pes
    n_domains = config.clusters * config.domains_per_cluster
    components: dict[str, float] = {
        "critical_path": float(statics.critical_path),
        "recurrence": float(statics.recurrence),
        "dispatch": math.ceil(statics.dispatch_work / total_pes),
    }
    if statics.fpu_work:
        components["fpu"] = math.ceil(statics.fpu_work / n_domains)
    graph = statics.graph
    if graph is not None:
        from ..place.snake import place

        placement = place(graph, config)
        weight = placed_edge_weight(graph, config, placement)
        # Busiest-PE dispatch roof: placement pins each instruction to
        # one PE, each PE dispatches one operation per cycle, and a
        # STORE dispatches its decoupled address and data halves
        # separately.
        per_pe: dict[int, int] = {}
        pe_of = placement.pe_of
        for inst_id, count in statics.fired_by_inst:
            mult = 2 if graph[inst_id].opcode.is_store else 1
            pe = pe_of.get(inst_id, 0)
            per_pe[pe] = per_pe.get(pe, 0) + count * mult
        if per_pe:
            components["dispatch_pe"] = float(max(per_pe.values()))
        components["critical_path_placed"] = float(
            critical_path_cycles(
                graph, statics.must_fire, edge_weight=weight
            )
        )
        if statics.cycles:
            components["recurrence_placed"] = float(
                score_cycles(list(statics.cycles), weight)
            )
    if statics.memory_work:
        # Aggregate L1 bandwidth: each thread's traffic is pinned to
        # its home cluster, so at most min(clusters, threads) L1s are
        # ever in play; and any single thread is limited to one L1's
        # ports.
        n_threads = max(1, len(statics.memory_by_thread))
        active_l1s = min(config.clusters, n_threads)
        per_thread_peak = max(
            count for _, count in statics.memory_by_thread
        )
        components["memory"] = max(
            math.ceil(
                statics.memory_work / (config.l1_ports * active_l1s)
            ),
            math.ceil(per_thread_peak / config.l1_ports),
        )
    cycles_lb = max(1, int(max(components.values())))
    pe_roof = float(min(total_pes, statics.static_alpha))
    components["pe_roof"] = pe_roof
    aipc = min(pe_roof, statics.alpha_work / cycles_lb)
    return BoundReport(
        workload=statics.workload, config=label,
        threads=statics.threads, scale=statics.scale,
        aipc_bound=aipc, cycles_lower_bound=cycles_lb,
        components=components, alpha_work=statics.alpha_work,
    )


def bound_for_cell(spec) -> BoundReport:
    """The AIPC upper bound for one sweep cell (memoised statics).

    ``spec`` is a :class:`~repro.harness.spec.CellSpec`; the expensive
    per-workload analysis is cached per process, so a full design grid
    pays for it once per (workload, threads) pair.
    """
    statics = _cached_statics(
        spec.workload, spec.scale, spec.threads, spec.k, spec.seed
    )
    return compute_bound(statics, spec.config)


def analyze_dataflow(graph: DataflowGraph) -> Report:
    """Run just the token-flow rules over a graph (library entry
    point mirroring :func:`repro.analysis.analyze_graph`)."""
    report = Report()
    flow = analyze_tokens(graph)
    report.extend(deadlock_proofs(graph, flow))
    if not flow.converged:
        report.extend(_check_convergence(graph))
    return report
