"""Structured diagnostics: what every analysis rule emits.

A :class:`Diagnostic` is one finding -- a rule id, a severity, where
the problem is, what is wrong, and (when the rule knows) how to fix
it.  Rules *emit* diagnostics instead of raising, so a single pass
over a program or configuration reports every problem at once; the
raising APIs (:func:`repro.isa.verify.verify_graph`) are thin wrappers
that surface the first error.

Severities follow the compiler convention:

* ``ERROR`` -- the program/config is unusable (would deadlock, is
  physically unrealizable); ``repro lint`` exits non-zero.
* ``WARNING`` -- legal but suspicious (dead code, likely performance
  trap); reported, exit stays zero.
* ``INFO`` -- observations (statistics, tuning notes).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one rule.

    Attributes
    ----------
    rule:
        Stable rule id (``G001`` graph rules, ``C001`` config rules,
        ``S001`` runtime sanitizer checks, ``X000`` engine internals).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of what is wrong.
    source:
        What was analysed -- program name, config identity, cell hash.
    location:
        Where inside the source (``i12``, ``region 0``,
        ``matching_entries``); empty for whole-source findings.
    hint:
        Optional fix suggestion.
    """

    rule: str
    severity: Severity
    message: str
    source: str = ""
    location: str = ""
    hint: str = ""

    def render(self) -> str:
        """``error[G001] gzip @ i3: message (fix: hint)``."""
        where = self.source
        if self.location:
            where = f"{where} @ {self.location}" if where else self.location
        head = f"{self.severity.value}[{self.rule}]"
        text = f"{head} {where}: {self.message}" if where else \
            f"{head}: {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
            "location": self.location,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            source=data.get("source", ""),
            location=data.get("location", ""),
            hint=data.get("hint", ""),
        )


@dataclass
class Report:
    """An ordered collection of diagnostics from one analysis pass."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def dedup(self) -> int:
        """Drop diagnostics identical in (rule, source, location,
        message), keeping the first of each; returns how many were
        dropped.  Rules over repetitive structures (one finding per
        instruction instance, say) can emit the same text many times;
        one line per distinct problem is what a human acts on, and
        :meth:`counts_by_rule` still shows the totals."""
        seen: set[tuple[str, str, str, str]] = set()
        kept: list[Diagnostic] = []
        for diag in self.diagnostics:
            key = (diag.rule, diag.source, diag.location, diag.message)
            if key in seen:
                continue
            seen.add(key)
            kept.append(diag)
        dropped = len(self.diagnostics) - len(kept)
        self.diagnostics = kept
        return dropped

    def counts_by_rule(self) -> dict[str, int]:
        """Findings per rule id, sorted by rule id (for lint text
        output and report tables)."""
        counts: dict[str, int] = {}
        for diag in sorted(self.diagnostics, key=lambda d: d.rule):
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Errors first, then warnings, then infos; stable within."""
        return sorted(
            self.diagnostics, key=lambda d: (d.severity.rank, d.rule)
        )

    def render(self, show_info: bool = True) -> str:
        """Multi-line text report plus a one-line summary."""
        lines = [
            d.render() for d in self.sorted()
            if show_info or d.severity is not Severity.INFO
        ]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s), {len(self.infos)} info"
        )

    def to_json(self, **kwargs) -> str:
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in self.sorted()],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
            **kwargs,
        )
