"""The pluggable rule engine.

A *rule* is a named check over one analysis target -- a
:class:`~repro.isa.graph.DataflowGraph` program or a
:class:`~repro.core.config.WaveScalarConfig` processor -- that yields
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  Rules are
registered into per-target registries with the :func:`rule` decorator;
:func:`analyze_graph` / :func:`analyze_config` run a registry over a
target and collect everything into a
:class:`~repro.analysis.diagnostics.Report`.

Design points:

* Rules never abort the pass: a rule that raises is itself reported as
  an ``X000`` internal-error diagnostic and the remaining rules run.
* Registries are ordered dicts keyed by rule id, so reports are
  deterministic and callers can enable/disable individual rules
  (``only=`` / ``ignore=``).
* Third-party checks plug in by calling :func:`register` (or the
  decorator) with a fresh rule id; nothing else needs to change --
  ``repro lint`` and the sweep pre-validator pick them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from .diagnostics import Diagnostic, Report, Severity

#: Target kinds a rule may declare.
TARGET_GRAPH = "graph"
TARGET_CONFIG = "config"


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    rule_id: str
    title: str
    target: str  # TARGET_GRAPH | TARGET_CONFIG
    check: Callable[..., Iterator[Diagnostic]]
    default_severity: Severity = Severity.ERROR

    def __call__(self, subject) -> Iterator[Diagnostic]:
        return self.check(subject)


#: Ordered registries; insertion order is evaluation order.
GRAPH_RULES: dict[str, Rule] = {}
CONFIG_RULES: dict[str, Rule] = {}

_REGISTRIES = {
    TARGET_GRAPH: GRAPH_RULES,
    TARGET_CONFIG: CONFIG_RULES,
}


def register(rule_obj: Rule) -> Rule:
    """Add a rule to its target registry (last registration wins)."""
    registry = _REGISTRIES.get(rule_obj.target)
    if registry is None:
        raise ValueError(f"unknown rule target {rule_obj.target!r}")
    registry[rule_obj.rule_id] = rule_obj
    return rule_obj


def rule(
    rule_id: str,
    title: str,
    target: str,
    severity: Severity = Severity.ERROR,
) -> Callable:
    """Decorator: register ``check(subject) -> Iterable[Diagnostic]``."""

    def decorate(check: Callable) -> Callable:
        register(Rule(
            rule_id=rule_id, title=title, target=target, check=check,
            default_severity=severity,
        ))
        return check

    return decorate


def _select(
    registry: dict[str, Rule],
    only: Optional[Iterable[str]],
    ignore: Iterable[str],
) -> list[Rule]:
    ignored = set(ignore)
    if only is not None:
        wanted = list(only)
        unknown = [r for r in wanted if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule id(s): {unknown}")
        return [registry[r] for r in wanted if r not in ignored]
    return [r for rid, r in registry.items() if rid not in ignored]


def _run_rules(rules: list[Rule], subject, source: str) -> Report:
    report = Report()
    for rule_obj in rules:
        try:
            report.extend(rule_obj.check(subject))
        except Exception as exc:  # noqa: BLE001 - isolate bad rules
            report.extend([Diagnostic(
                rule="X000",
                severity=Severity.ERROR,
                message=(
                    f"rule {rule_obj.rule_id} ({rule_obj.title}) crashed: "
                    f"{type(exc).__name__}: {exc}"
                ),
                source=source,
            )])
    # One line per distinct (rule, source, location, message): rules
    # over repetitive structures can emit the same finding per
    # instance, which buries the signal.
    report.dedup()
    return report


def analyze_graph(
    graph,
    only: Optional[Iterable[str]] = None,
    ignore: Iterable[str] = (),
) -> Report:
    """Run the graph registry over a dataflow program."""
    from . import dataflow, graph_rules  # noqa: F401 - rules register

    rules = _select(GRAPH_RULES, only, ignore)
    return _run_rules(rules, graph, getattr(graph, "name", ""))


def analyze_config(
    config,
    only: Optional[Iterable[str]] = None,
    ignore: Iterable[str] = (),
) -> Report:
    """Run the config registry over a processor configuration."""
    from . import config_rules  # noqa: F401 - ensure rules registered

    rules = _select(CONFIG_RULES, only, ignore)
    source = config.describe() if hasattr(config, "describe") else ""
    return _run_rules(rules, config, source)


def rule_catalog() -> list[tuple[str, str, str]]:
    """(id, target, title) for every registered rule, in run order."""
    from . import config_rules, dataflow, graph_rules  # noqa: F401

    out = [(r.rule_id, r.target, r.title) for r in GRAPH_RULES.values()]
    out += [(r.rule_id, r.target, r.title) for r in CONFIG_RULES.values()]
    return out
