"""Static-analysis rules over dataflow programs.

These port (and extend) the semantic checks that historically lived in
:mod:`repro.isa.verify`, reformulated as diagnostics so one pass
reports every problem.  Error-level rules describe programs the
simulator cannot run to completion (never-firing instructions, broken
wave orders); warnings describe legal-but-suspect shapes (dead code,
predicate misuse, matching-table pressure).

Rule ids are stable: ``G000``-``G011``.  The raising wrapper
:func:`repro.isa.verify.verify_graph` surfaces the first error-level
diagnostic from this registry.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..isa.graph import DataflowGraph
from ..isa.opcodes import Opcode
from ..isa.waves import UNKNOWN, WAVE_END, WAVE_START
from .diagnostics import Diagnostic, Severity
from .engine import TARGET_GRAPH, rule

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

#: Opcodes that legitimately produce no consumable result.
_SINK_OPCODES = frozenset({
    Opcode.OUTPUT, Opcode.THREAD_HALT, Opcode.STORE, Opcode.MEMORY_NOP,
})

#: Opcodes whose output is a 0/1 (or otherwise predicate-shaped) value.
_PREDICATE_PRODUCERS = frozenset({
    Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE,
    Opcode.FLT, Opcode.FLE, Opcode.FEQ,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT,
    Opcode.CONST, Opcode.WAVE_TO_DATA,
})

#: Value-preserving pass-throughs a predicate may legally route
#: through: identity (NOP), steers/merges (forward an input
#: unchanged), and int/float conversions (preserve zero/nonzero).
_TRANSPARENT_OPCODES = frozenset({
    Opcode.NOP, Opcode.STEER, Opcode.MERGE, Opcode.I2F, Opcode.F2I,
})


def _feeders(graph: DataflowGraph) -> dict[tuple[int, int], list[int]]:
    """(inst, port) -> producer instruction ids."""
    fed: dict[tuple[int, int], list[int]] = defaultdict(list)
    for src, dest in graph.edges():
        fed[(dest.inst, dest.port)].append(src)
    return fed


def _entry_ports(graph: DataflowGraph) -> set[tuple[int, int]]:
    return {(t.inst, t.port) for t in graph.entry_tokens}


def _structurally_sound(graph: DataflowGraph) -> bool:
    try:
        graph.validate()
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# G000: structural integrity (delegates to DataflowGraph.validate)
# ----------------------------------------------------------------------
@rule("G000", "structural integrity", TARGET_GRAPH)
def check_structure(graph: DataflowGraph):
    try:
        graph.validate()
    except ValueError as exc:
        yield Diagnostic(
            rule="G000", severity=Severity.ERROR, message=str(exc),
            source=graph.name,
            hint="the toolchain emitted a corrupt binary; rebuild the "
                 "graph through GraphBuilder",
        )


# ----------------------------------------------------------------------
# G001: never-firing inputs
# ----------------------------------------------------------------------
@rule("G001", "never-firing input port", TARGET_GRAPH)
def check_port_coverage(graph: DataflowGraph):
    """Every input port needs a producer or an entry token; otherwise
    the instruction can never fire and the program deadlocks."""
    if not _structurally_sound(graph):
        return
    fed = set(_feeders(graph)) | _entry_ports(graph)
    for inst in graph.instructions:
        for port in range(inst.arity):
            if (inst.inst_id, port) not in fed:
                yield Diagnostic(
                    rule="G001", severity=Severity.ERROR,
                    message=(
                        f"port {port} of {inst!r} has no producer and no "
                        "entry token; instruction can never fire"
                    ),
                    source=graph.name, location=f"i{inst.inst_id}",
                    hint="connect a producer to the port or inject an "
                         "entry token",
                )


# ----------------------------------------------------------------------
# G002: unreachable instructions
# ----------------------------------------------------------------------
@rule("G002", "unreachable instruction", TARGET_GRAPH,
      severity=Severity.WARNING)
def check_reachability(graph: DataflowGraph):
    """Instructions no entry token can ever reach are dead code: they
    occupy instruction-store slots (hurting virtualization pressure)
    but can never fire."""
    if not _structurally_sound(graph) or not graph.entry_tokens:
        return
    succ: dict[int, set[int]] = defaultdict(set)
    for src, dest in graph.edges():
        succ[src].add(dest.inst)
    seen: set[int] = set()
    work = deque(t.inst for t in graph.entry_tokens)
    while work:
        node = work.popleft()
        if node in seen:
            continue
        seen.add(node)
        work.extend(succ[node] - seen)
    dead = [i for i in graph.instructions if i.inst_id not in seen]
    for inst in dead[:16]:
        yield Diagnostic(
            rule="G002", severity=Severity.WARNING,
            message=(
                f"{inst!r} is unreachable from every entry token; it can "
                "never fire (dead code)"
            ),
            source=graph.name, location=f"i{inst.inst_id}",
            hint="delete the instruction or feed it from live code",
        )
    if len(dead) > 16:
        yield Diagnostic(
            rule="G002", severity=Severity.WARNING,
            message=f"... and {len(dead) - 16} more unreachable "
                    "instructions",
            source=graph.name,
        )


# ----------------------------------------------------------------------
# G003: dangling results
# ----------------------------------------------------------------------
@rule("G003", "dangling result", TARGET_GRAPH, severity=Severity.WARNING)
def check_dangling_results(graph: DataflowGraph):
    """A value-producing instruction with no destinations computes a
    result nobody consumes -- almost always a toolchain slip.  NOPs
    are exempt: a destination-less NOP is the builder's deliberate
    discard sink (loop landing pads for unused exit values)."""
    if not _structurally_sound(graph):
        return
    for inst in graph.instructions:
        if inst.opcode in _SINK_OPCODES or inst.opcode is Opcode.NOP:
            continue
        if inst.fanout == 0:
            yield Diagnostic(
                rule="G003", severity=Severity.WARNING,
                message=(
                    f"{inst!r} produces a value but has no destinations; "
                    "its result is silently discarded"
                ),
                source=graph.name, location=f"i{inst.inst_id}",
                hint="route the result to a consumer or an OUTPUT, or "
                     "remove the instruction",
            )


# ----------------------------------------------------------------------
# G004-G007: wave-ordered memory
# ----------------------------------------------------------------------
def _wave_regions(graph: DataflowGraph) -> dict[int, list]:
    by_region: dict[int, list] = defaultdict(list)
    for inst in graph.memory_instructions:
        if inst.wave_annotation is not None:
            by_region[inst.wave_annotation.region].append(
                (inst.inst_id, inst.wave_annotation)
            )
    return by_region


@rule("G004", "duplicate wave sequence number", TARGET_GRAPH)
def check_wave_duplicates(graph: DataflowGraph):
    if not _structurally_sound(graph):
        return
    for region, anns in _wave_regions(graph).items():
        seen: dict[int, int] = {}
        for inst_id, ann in anns:
            if ann.this in seen:
                yield Diagnostic(
                    rule="G004", severity=Severity.ERROR,
                    message=(
                        f"region {region}: duplicate wave sequence number "
                        f"{ann.this} (i{seen[ann.this]} and i{inst_id})"
                    ),
                    source=graph.name, location=f"i{inst_id}",
                    hint="renumber the region so every memory op has a "
                         "unique sequence slot",
                )
            else:
                seen[ann.this] = inst_id


@rule("G005", "dangling wave-order link", TARGET_GRAPH)
def check_wave_links(graph: DataflowGraph):
    if not _structurally_sound(graph):
        return
    for region, anns in _wave_regions(graph).items():
        valid = {ann.this for _, ann in anns}
        for inst_id, ann in anns:
            if ann.prev not in (UNKNOWN, WAVE_START) and \
                    ann.prev not in valid:
                yield Diagnostic(
                    rule="G005", severity=Severity.ERROR,
                    message=(
                        f"region {region}: i{inst_id} names nonexistent "
                        f"predecessor sequence {ann.prev}"
                    ),
                    source=graph.name, location=f"i{inst_id}",
                    hint="the store buffer could never resolve this "
                         "link; fix the <prev, this, next> chain",
                )
            if ann.next not in (UNKNOWN, WAVE_END) and \
                    ann.next not in valid:
                yield Diagnostic(
                    rule="G005", severity=Severity.ERROR,
                    message=(
                        f"region {region}: i{inst_id} names nonexistent "
                        f"successor sequence {ann.next}"
                    ),
                    source=graph.name, location=f"i{inst_id}",
                    hint="the store buffer could never resolve this "
                         "link; fix the <prev, this, next> chain",
                )


@rule("G006", "unorderable memory operation", TARGET_GRAPH)
def check_wave_orderable(graph: DataflowGraph):
    """Each memory op must be orderable: either its predecessor is
    statically known, or another op names it in its ``next`` field
    (a ripple).  Otherwise wave ordering deadlocks at runtime."""
    if not _structurally_sound(graph):
        return
    for region, anns in _wave_regions(graph).items():
        rippled_to = {
            ann.next for _, ann in anns
            if ann.next not in (UNKNOWN, WAVE_END)
        }
        for inst_id, ann in anns:
            if ann.prev == UNKNOWN and ann.this not in rippled_to:
                yield Diagnostic(
                    rule="G006", severity=Severity.ERROR,
                    message=(
                        f"region {region}: i{inst_id} has unknown "
                        "predecessor and no ripple names it; wave "
                        "ordering would deadlock"
                    ),
                    source=graph.name, location=f"i{inst_id}",
                    hint="insert a MEMORY_NOP on the branch arm so the "
                         "ordering chain is gap-free",
                )


@rule("G007", "unterminable wave region", TARGET_GRAPH)
def check_wave_terminable(graph: DataflowGraph):
    if not _structurally_sound(graph):
        return
    for region, anns in _wave_regions(graph).items():
        if anns and not any(ann.next == WAVE_END for _, ann in anns):
            yield Diagnostic(
                rule="G007", severity=Severity.ERROR,
                message=(
                    f"region {region}: no operation carries WAVE_END; "
                    "the store buffer could never retire this wave"
                ),
                source=graph.name, location=f"region {region}",
                hint="mark the final memory operation of the region "
                     "with next=WAVE_END",
            )


# ----------------------------------------------------------------------
# G008: STEER/MERGE predicate provenance
# ----------------------------------------------------------------------
def _predicate_origin_suspect(
    graph: DataflowGraph,
    feeders: dict[tuple[int, int], list[int]],
    entry_ports: set[tuple[int, int]],
    inst_id: int,
    port: int,
) -> list[int]:
    """Trace the predicate operand back through value-preserving ops.

    Returns the producer ids whose values reach the predicate port
    without being predicate-shaped.  Constants and comparisons routed
    through identity/conversion ops (NOP, STEER/MERGE forwarding,
    I2F/F2I) are fine -- the historical heuristic warned on those, a
    known false positive.
    """
    suspects: list[int] = []
    seen: set[tuple[int, int]] = set()
    work: deque[tuple[int, int]] = deque([(inst_id, port)])
    while work:
        key = work.popleft()
        if key in seen:
            continue
        seen.add(key)
        if key in entry_ports:
            continue  # runtime-provided value: assume well-formed
        for producer in feeders.get(key, ()):  # noqa: B020
            opcode = graph[producer].opcode
            if opcode in _PREDICATE_PRODUCERS:
                continue
            if opcode in _TRANSPARENT_OPCODES:
                # Follow the *data* inputs the op forwards unchanged:
                # port 0 for NOP/STEER/conversions, ports 0 and 1 for
                # MERGE (either side may be selected).
                data_ports = (0, 1) if opcode is Opcode.MERGE else (0,)
                for p in data_ports:
                    work.append((producer, p))
                continue
            suspects.append(producer)
    return suspects


@rule("G008", "suspicious steer predicate", TARGET_GRAPH,
      severity=Severity.WARNING)
def check_steer_predicates(graph: DataflowGraph):
    """STEER predicates should be 0/1 values.  An arithmetic result
    steering data is legal (nonzero = taken) but usually means the
    toolchain wired the wrong operand to the predicate port."""
    if not _structurally_sound(graph):
        return
    feeders = _feeders(graph)
    entries = _entry_ports(graph)
    for inst in graph.instructions:
        if inst.opcode not in (Opcode.STEER, Opcode.MERGE):
            continue
        pred_port = 1 if inst.opcode is Opcode.STEER else 2
        suspects = _predicate_origin_suspect(
            graph, feeders, entries, inst.inst_id, pred_port
        )
        for producer in suspects[:4]:
            yield Diagnostic(
                rule="G008", severity=Severity.WARNING,
                message=(
                    f"{inst.opcode.name} i{inst.inst_id} predicate "
                    f"(port {pred_port}) is fed by "
                    f"{graph[producer].opcode.name} i{producer}, which "
                    "does not produce a 0/1 value"
                ),
                source=graph.name, location=f"i{inst.inst_id}",
                hint="route the predicate through a comparison, or "
                     "swap the operand wiring if data and predicate "
                     "are crossed",
            )


# ----------------------------------------------------------------------
# G009: fan-out exceeding PE output bandwidth
# ----------------------------------------------------------------------
@rule("G009", "fan-out exceeds output bandwidth", TARGET_GRAPH,
      severity=Severity.WARNING)
def check_fanout(graph: DataflowGraph):
    """The PE OUTPUT stage sends to at most MAX_FANOUT consumers per
    firing; the toolchain splits wider fan-out through NOP trees.  A
    hand-written binary exceeding the limit serialises its sends."""
    from ..lang.builder import MAX_FANOUT  # local: avoid import cycle

    if not _structurally_sound(graph):
        return
    for inst in graph.instructions:
        for kind, dests in (("taken", inst.dests),
                            ("not-taken", inst.false_dests)):
            if len(dests) > MAX_FANOUT:
                which = f" {kind}" if inst.false_dests else ""
                yield Diagnostic(
                    rule="G009", severity=Severity.WARNING,
                    message=(
                        f"i{inst.inst_id} ({inst.opcode.name}) has "
                        f"{len(dests)}{which} destinations, above the "
                        f"PE output-port fan-out limit of {MAX_FANOUT}"
                    ),
                    source=graph.name, location=f"i{inst.inst_id}",
                    hint="split the fan-out through a NOP relay tree "
                         "(GraphBuilder does this automatically)",
                )


# ----------------------------------------------------------------------
# G010: matching-table pressure from unbalanced rendezvous
# ----------------------------------------------------------------------
#: Path-length skew (in instructions) above which the short operand of
#: a rendezvous parks in the matching table long enough to matter.
RENDEZVOUS_SKEW_LIMIT = 24


@rule("G010", "unbalanced operand rendezvous", TARGET_GRAPH,
      severity=Severity.WARNING)
def check_rendezvous_balance(graph: DataflowGraph):
    """A multi-input instruction whose operands arrive over paths of
    grossly different depth holds a matching-table row for the whole
    skew -- a >2-input chain of such waits is how programs thrash an
    undersized matching table.  Depths are computed over the acyclic
    forward skeleton (loop back-edges ignored)."""
    if not _structurally_sound(graph) or not graph.entry_tokens:
        return
    # Earliest arrival depth per (inst, port): BFS from entry tokens,
    # counting instructions on the path.  Each (inst, port) is visited
    # at its minimum depth only, so back-edges never loop.
    depth: dict[tuple[int, int], int] = {}
    work: deque[tuple[int, int, int]] = deque(
        (t.inst, t.port, 0) for t in graph.entry_tokens
    )
    while work:
        inst_id, port, d = work.popleft()
        key = (inst_id, port)
        if key in depth:
            continue
        depth[key] = d
        for dest in graph[inst_id].all_dests:
            if (dest.inst, dest.port) not in depth:
                work.append((dest.inst, dest.port, d + 1))
    for inst in graph.instructions:
        if inst.arity < 2:
            continue
        depths = [depth.get((inst.inst_id, p))
                  for p in range(inst.arity)]
        known = [d for d in depths if d is not None]
        if len(known) < 2:
            continue
        skew = max(known) - min(known)
        if skew > RENDEZVOUS_SKEW_LIMIT:
            yield Diagnostic(
                rule="G010", severity=Severity.WARNING,
                message=(
                    f"i{inst.inst_id} ({inst.opcode.name}) operands "
                    f"arrive {skew} instruction levels apart; the early "
                    "operand occupies a matching-table row for the "
                    "whole skew"
                ),
                source=graph.name, location=f"i{inst.inst_id}",
                hint="rebalance the operand paths or expect "
                     "matching-table overflow on small-M configurations",
            )


# ----------------------------------------------------------------------
# G011: observability
# ----------------------------------------------------------------------
@rule("G011", "no observable outputs", TARGET_GRAPH,
      severity=Severity.WARNING)
def check_outputs(graph: DataflowGraph):
    if not _structurally_sound(graph):
        return
    if graph.instructions and not graph.output_instruction_ids():
        yield Diagnostic(
            rule="G011", severity=Severity.WARNING,
            message="no OUTPUT instructions; results unobservable",
            source=graph.name,
            hint="add OUTPUT sinks for the values the program computes",
        )
    if graph.instructions and not graph.entry_tokens:
        yield Diagnostic(
            rule="G011", severity=Severity.WARNING,
            message="no entry tokens; nothing can ever fire unless "
                    "tokens are injected externally",
            source=graph.name,
            hint="declare program inputs so execution can start",
        )
