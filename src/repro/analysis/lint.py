"""Lint front-end: resolve targets, run registries, aggregate results.

This is the library behind ``repro lint``.  A *target* is anything the
user can name on the command line:

* a registered workload (``gzip``) or suite (``splash``, ``all``),
* a ``.wsasm`` assembly file, or a directory searched recursively for
  ``.wsasm`` files,
* a processor configuration (linted via :func:`lint_config`).

Each resolved target becomes one :class:`LintResult` carrying the
target's name and its :class:`~repro.analysis.diagnostics.Report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from ..isa.graph import DataflowGraph
from .diagnostics import Diagnostic, Report, Severity
from .engine import analyze_config, analyze_graph


@dataclass
class LintResult:
    """Diagnostics for one lint target."""

    target: str
    report: Report

    @property
    def clean(self) -> bool:
        return not self.report.has_errors


def lint_graph(graph: DataflowGraph, target: str = "") -> LintResult:
    return LintResult(
        target=target or graph.name, report=analyze_graph(graph)
    )


def lint_config(config) -> LintResult:
    return LintResult(
        target=config.describe(), report=analyze_config(config)
    )


def lint_workload(
    name: str,
    scale=None,
    threads: Optional[int] = None,
    seed: int = 0,
) -> LintResult:
    """Instantiate one registered workload and lint its graph."""
    from ..workloads import Scale, get

    workload = get(name)
    scale = scale or Scale.TINY
    kwargs = {"scale": scale, "seed": seed}
    if workload.multithreaded:
        kwargs["threads"] = threads
    graph = workload.instantiate(**kwargs)
    return lint_graph(graph, target=f"{name}@{scale.value}")


def lint_file(path) -> LintResult:
    """Assemble one ``.wsasm`` file (without the raising verifier) and
    lint the result; unassemblable files become an error diagnostic."""
    from ..lang.assembler import AssemblerError, assemble

    path = Path(path)
    try:
        graph = assemble(path.read_text(encoding="utf-8"), verify=False)
        if graph.name == "anonymous":
            graph.name = path.stem
    except (AssemblerError, ValueError, OSError) as exc:
        report = Report([Diagnostic(
            rule="A000", severity=Severity.ERROR,
            message=f"cannot assemble: {exc}", source=str(path),
        )])
        return LintResult(target=str(path), report=report)
    return lint_graph(graph, target=str(path))


def resolve_targets(
    names: Iterable[str],
    scale=None,
    threads: Optional[int] = None,
) -> list[LintResult]:
    """Lint every named target; unknown names become error results."""
    from ..cli import SUITES
    from ..workloads import WORKLOADS

    results: list[LintResult] = []
    for name in names:
        path = Path(name)
        if name in WORKLOADS:
            results.append(lint_workload(name, scale=scale,
                                         threads=threads))
        elif name in SUITES:
            for wname in SUITES[name]:
                results.append(lint_workload(wname, scale=scale,
                                             threads=threads))
        elif path.is_dir():
            files = sorted(path.rglob("*.wsasm"))
            if not files:
                results.append(LintResult(
                    target=name,
                    report=Report([Diagnostic(
                        rule="A000", severity=Severity.ERROR,
                        message="directory contains no .wsasm programs",
                        source=name,
                    )]),
                ))
            results.extend(lint_file(f) for f in files)
        elif path.is_file():
            results.append(lint_file(path))
        else:
            results.append(LintResult(
                target=name,
                report=Report([Diagnostic(
                    rule="A000", severity=Severity.ERROR,
                    message="not a workload, suite, file, or directory",
                    source=name,
                )]),
            ))
    return results


def merge_reports(results: Iterable[LintResult]) -> Report:
    merged = Report()
    for result in results:
        merged.extend(result.report.diagnostics)
    return merged
