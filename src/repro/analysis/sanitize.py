"""Runtime sanitizer: ASan-style invariant checking for the simulator.

The static rules prove a program *can* run; the sanitizer watches one
actually running.  Attach a :class:`RuntimeSanitizer` to an engine
(``engine.sanitizer = RuntimeSanitizer()``, or ``sanitizer=`` through
:class:`~repro.core.processor.WaveScalarProcessor`) and it audits the
machine through cheap hooks on the engine's hot paths -- the same
duck-typed pattern as tracing and fault injection, so the simulator
core stays free of analysis imports:

* **token conservation** -- every operand delivered into the fabric is
  eventually consumed by a dispatch; dropped deliveries (a fault, or a
  routing bug) and leftover operands are violations,
* **matching-table leaks** -- partially filled rows surviving
  quiescence mean some token waited for a partner that never came,
* **queue bounds** -- physical structures (matching tables) must never
  hold more state than they have storage for,
* **wave retirement** -- no store-buffer operations or k-bound wave
  advances may remain parked after the calendar drains.

Violations are reported as the same
:class:`~repro.analysis.diagnostics.Diagnostic` type the static rules
emit (``S001``-``S005``), via :meth:`RuntimeSanitizer.report`.  Run
the engine with ``strict=False`` to get the report instead of a
:class:`~repro.sim.failures.TrueDeadlock` exception.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, Report, Severity


class RuntimeSanitizer:
    """Invariant checker wired into :class:`repro.sim.engine.Engine`.

    One instance audits one run.  All hooks are O(1); a sanitized run
    costs a few percent, an unsanitized run costs one ``is not None``
    branch per event (the idiom tracing already uses).
    """

    def __init__(self) -> None:
        # Token conservation counters.
        self.entry_tokens = 0
        self.tokens_created = 0  # operands delivered into the fabric
        self.tokens_consumed = 0  # operands consumed by dispatches
        self.tokens_dropped = 0  # deliveries swallowed in flight
        # Structure-bound violations observed while running.
        self.table_overflows: list[tuple[int, int, int]] = []
        # Peak pressure (informational).
        self.peak_matching_rows = 0
        # Filled by finalize().
        self._diagnostics: list[Diagnostic] = []
        self._finalized = False
        self._source = ""

    # ------------------------------------------------------------------
    # Engine hooks (hot path: keep them tiny)
    # ------------------------------------------------------------------
    def note_entry(self, count: int) -> None:
        self.entry_tokens += count

    def note_created(self, count: int = 1) -> None:
        self.tokens_created += count

    def note_consumed(self, count: int) -> None:
        self.tokens_consumed += count

    def note_dropped(self, count: int = 1) -> None:
        self.tokens_dropped += count

    def note_table_size(self, pe: int, size: int, entries: int) -> None:
        if size > self.peak_matching_rows:
            self.peak_matching_rows = size
        if size > entries:
            self.table_overflows.append((pe, size, entries))

    # ------------------------------------------------------------------
    # End-of-run audit
    # ------------------------------------------------------------------
    def finalize(self, engine) -> None:
        """Audit the drained engine; called by ``Engine.run`` once the
        event calendar empties (before the strict quiescence check)."""
        self._finalized = True
        self._source = engine.graph.name
        diags = self._diagnostics
        source = self._source

        # S001: dropped deliveries are conservation violations.
        if self.tokens_dropped:
            diags.append(Diagnostic(
                rule="S001", severity=Severity.ERROR,
                message=(
                    f"token conservation violated: {self.tokens_dropped} "
                    "operand deliveries vanished in flight"
                ),
                source=source, location="network",
                hint="a fault plan or a routing bug is destroying "
                     "tokens; their rendezvous partners leak",
            ))

        # S002: matching-table leaks.
        leaked_rows = 0
        leaked_tokens = 0
        worst_pe, worst_rows = -1, 0
        for pe, table in enumerate(engine.matching):
            rows = table.pending_rows()
            if rows:
                leaked_rows += len(rows)
                leaked_tokens += sum(len(r.ports) for r in rows)
                if len(rows) > worst_rows:
                    worst_pe, worst_rows = pe, len(rows)
        if leaked_rows:
            diags.append(Diagnostic(
                rule="S002", severity=Severity.ERROR,
                message=(
                    f"matching-table leak: {leaked_rows} partial rows "
                    f"({leaked_tokens} operands) survive quiescence; "
                    f"worst pe{worst_pe} with {worst_rows} rows"
                ),
                source=source, location=f"pe{worst_pe}",
                hint="each leaked row is a token whose partner never "
                     "arrived",
            ))
        ifetch_parked = sum(len(q) for q in engine._ifetch.values())
        if ifetch_parked:
            diags.append(Diagnostic(
                rule="S002", severity=Severity.ERROR,
                message=(
                    f"{ifetch_parked} tokens still parked behind "
                    "instruction fetches that never completed"
                ),
                source=source, location="istore",
            ))

        # S003: structure overflow (more state than storage).
        if self.table_overflows:
            pe, size, entries = self.table_overflows[0]
            diags.append(Diagnostic(
                rule="S003", severity=Severity.ERROR,
                message=(
                    f"queue bound violated {len(self.table_overflows)} "
                    f"time(s): matching table held {size} rows with "
                    f"capacity {entries} (first at pe{pe})"
                ),
                source=source, location=f"pe{pe}",
                hint="engine bug: eviction must keep occupancy within "
                     "the configured M",
            ))

        # S004: wave retirement.
        kbound = sum(len(s) for s in engine._kbound_stalls.values())
        if kbound:
            diags.append(Diagnostic(
                rule="S004", severity=Severity.ERROR,
                message=(
                    f"{kbound} k-bound wave advances still stalled at "
                    "quiescence; their waves never retired"
                ),
                source=source, location="kbound",
            ))
        for sb in engine.storebuffers:
            stuck = sb.stuck_report()
            if stuck:
                diags.append(Diagnostic(
                    rule="S004", severity=Severity.ERROR,
                    message=(
                        "store buffer retains unretired memory "
                        f"operations: {stuck.strip()}"
                    ),
                    source=source, location=f"sb{sb.cluster}",
                ))

        # S005: the conservation ledger must balance:
        #   entry + created == consumed + leaked(tokens) + parked.
        produced = self.entry_tokens + self.tokens_created
        accounted = self.tokens_consumed + leaked_tokens + ifetch_parked
        if produced != accounted:
            diags.append(Diagnostic(
                rule="S005", severity=Severity.ERROR,
                message=(
                    f"token ledger imbalance: {produced} produced "
                    f"({self.entry_tokens} entry + {self.tokens_created} "
                    f"delivered) vs {accounted} accounted "
                    f"({self.tokens_consumed} consumed + {leaked_tokens} "
                    f"leaked + {ifetch_parked} parked)"
                ),
                source=source, location="ledger",
                hint="engine bug: a token was double-counted or lost "
                     "outside the fault path",
            ))
        diags.append(Diagnostic(
            rule="S005", severity=Severity.INFO,
            message=(
                f"token ledger: {self.entry_tokens} entry + "
                f"{self.tokens_created} delivered, "
                f"{self.tokens_consumed} consumed, "
                f"{self.tokens_dropped} dropped; peak matching "
                f"occupancy {self.peak_matching_rows} rows"
            ),
            source=source,
        ))

    # ------------------------------------------------------------------
    @property
    def violations(self) -> list[Diagnostic]:
        return [d for d in self._diagnostics
                if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when the audited run upheld every invariant."""
        return self._finalized and not self.violations

    def report(self) -> Report:
        """The audit as a :class:`Report` (empty until the run ends)."""
        return Report(list(self._diagnostics))
