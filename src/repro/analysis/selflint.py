"""Determinism self-lint: the D-rules.

The reproduction's core contract is bit-identical results for a given
seed -- across resumes, across ``jobs`` values, across machines.  The
usual way that contract rots is not a simulator bug but an innocent
convenience in the harness: a wall-clock read that leaks into a
record that gets compared, an unseeded ``random`` call in a fixture,
a ``set`` iterated straight into ordered output.  This module is an
AST pass over the ``repro`` source tree itself that flags those
hazards before they ship:

* ``D001`` -- wall-clock reads (``time.time``, ``time.time_ns``,
  ``datetime.now``/``utcnow``).  Monotonic clocks are fine for
  durations; wall-clock values must never order or key anything.
* ``D002`` -- unseeded randomness: module-level ``random.*`` calls
  and ``random.Random()`` with no seed argument.
* ``D003`` -- iteration over a set expression feeding ordered output
  (a ``for`` target, comprehension source, ``join``/``list``/
  ``tuple`` argument) without a ``sorted()`` wrapper.
* ``D004`` -- unsorted filesystem listings (``os.listdir``,
  ``Path.iterdir``, ``glob.glob``) -- OS-order is arbitrary.

A site that is *deliberately* wall-clock (the ledger's human-facing
``ts`` field, say) carries an inline waiver comment::

    "ts": time.time(),  # selflint: allow(D001) human-facing only

The waiver names the rule it silences, so a reviewer sees both the
hazard and the argument in one line; unexplained hazards fail
``repro lint --self`` (and CI).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .diagnostics import Diagnostic, Report, Severity

__all__ = ["SELF_RULES", "lint_self", "lint_source"]

#: rule id -> (title, severity)
SELF_RULES: dict[str, tuple[str, Severity]] = {
    "D001": ("wall-clock read", Severity.ERROR),
    "D002": ("unseeded randomness", Severity.ERROR),
    "D003": ("set iteration feeds ordered output", Severity.ERROR),
    "D004": ("unsorted filesystem listing", Severity.WARNING),
}

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: ``random.<fn>()`` module-level calls that consume the shared,
#: process-global Mersenne state.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
}

_LISTING = {("os", "listdir"), ("glob", "glob"), ("glob", "iglob")}

_WAIVER = re.compile(r"selflint:\s*allow\(([A-Z0-9,\s]+)\)")


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty tuple when not a plain
    attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    """One file's pass; collects (rule, lineno, message) findings."""

    def __init__(self) -> None:
        self.findings: list[tuple[str, int, str]] = []
        self._sorted_depth = 0

    # -- helpers -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append((rule, node.lineno, message))

    def _check_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if len(dotted) >= 2:
            tail = dotted[-2:]
            if tail in _WALL_CLOCK:
                self._flag(
                    "D001", node,
                    f"wall-clock read {'.'.join(dotted)}() -- "
                    "nondeterministic across runs; use "
                    "time.monotonic() for durations, or waive if the "
                    "value is human-facing only",
                )
            if dotted[-2] == "random" and dotted[-1] in _GLOBAL_RANDOM:
                self._flag(
                    "D002", node,
                    f"{'.'.join(dotted)}() uses the process-global "
                    "random state; construct random.Random(seed) "
                    "explicitly",
                )
            if dotted[-2:] == ("random", "Random") and not node.args \
                    and not node.keywords:
                self._flag(
                    "D002", node,
                    "random.Random() without a seed is entropy-"
                    "seeded; pass an explicit seed",
                )
            if tail in _LISTING and self._sorted_depth == 0:
                self._flag(
                    "D004", node,
                    f"{'.'.join(dotted)}() returns entries in "
                    "arbitrary OS order; wrap in sorted()",
                )
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("iterdir", "glob", "rglob") \
                and self._sorted_depth == 0 and not _dotted(node.func):
            # A method call on a non-trivial expression: pathlib-style
            # listing (module-level glob.glob is handled above).
            self._flag(
                "D004", node,
                f".{node.func.attr}() returns entries in arbitrary "
                "OS order; wrap in sorted()",
            )

    def _check_iteration(self, source: ast.AST, what: str) -> None:
        if self._sorted_depth == 0 and _is_set_expr(source):
            self._flag(
                "D003", source,
                f"{what} iterates a set -- hash order feeds the "
                "result; wrap in sorted()",
            )

    # -- visitors ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        is_sorted = (isinstance(node.func, ast.Name)
                     and node.func.id in ("sorted", "len", "sum",
                                          "min", "max", "any", "all"))
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join":
            # "sep".join(<set>) serialises hash order directly.
            for arg in node.args:
                self._check_iteration(arg, "str.join argument")
        if is_sorted:
            # Order-insensitive consumers: iteration below is fine.
            self._sorted_depth += 1
            self.generic_visit(node)
            self._sorted_depth -= 1
        else:
            self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _comp(self, node) -> None:
        ordered = not isinstance(node, (ast.SetComp, ast.DictComp))
        for gen in node.generators:
            if ordered:
                self._check_iteration(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _comp
    visit_GeneratorExp = _comp


def _waived(lines: list[str], lineno: int) -> set[str]:
    """Rules waived at ``lineno`` (1-based): an inline or
    immediately-preceding ``# selflint: allow(D00x)`` comment."""
    waived: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(lines):
            match = _WAIVER.search(lines[idx])
            if match:
                waived.update(
                    part.strip() for part in match.group(1).split(",")
                )
    return waived


def lint_source(text: str, relpath: str) -> list[Diagnostic]:
    """Run the D-rules over one file's source text."""
    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="X000", severity=Severity.ERROR,
            message=f"unparseable: {exc}", source=relpath,
        )]
    visitor = _Visitor()
    visitor.visit(tree)
    lines = text.splitlines()
    diags = []
    for rule_id, lineno, message in visitor.findings:
        if rule_id in _waived(lines, lineno):
            continue
        _, severity = SELF_RULES[rule_id]
        diags.append(Diagnostic(
            rule=rule_id, severity=severity, message=message,
            source=relpath, location=f"L{lineno}",
        ))
    return diags


def lint_self(root=None) -> Report:
    """Run the D-rules over the installed ``repro`` source tree (or
    an explicit directory), one deterministic pass."""
    if root is None:
        root = Path(__file__).resolve().parents[1]
    root = Path(root)
    report = Report()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent).as_posix()
        report.extend(lint_source(path.read_text(), rel))
    report.dedup()
    return report
