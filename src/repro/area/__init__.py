"""Area and timing models derived from the paper's RTL synthesis.

* :mod:`repro.area.model` -- the Table 3 closed-form area model.
* :mod:`repro.area.budget` -- the Table 2 measured cluster budget.
* :mod:`repro.area.estimator` -- first-principles cross-check.
* :mod:`repro.area.timing` -- the 20 FO4 clock model.
"""

from .budget import (
    budget_rows,
    cluster_total_mm2,
    domain_total_mm2,
    format_budget_table,
    pe_total_mm2,
    sram_fraction,
)
from .estimator import estimate_chip_mm2, estimate_constants
from .floorplan import Floorplan
from .model import (
    MAX_DIE_MM2,
    UTILIZATION,
    AreaBreakdown,
    breakdown,
    chip_area,
    cluster_area,
    domain_area,
    fits_die,
    pe_area,
)
from .timing import (
    FO4_PS,
    TARGET_CYCLE_FO4,
    TimingReport,
    cycle_time_fo4,
    cycles_to_seconds,
    meets_clock_target,
    timing_report,
)

__all__ = [
    "budget_rows",
    "cluster_total_mm2",
    "domain_total_mm2",
    "format_budget_table",
    "pe_total_mm2",
    "sram_fraction",
    "estimate_chip_mm2",
    "Floorplan",
    "estimate_constants",
    "MAX_DIE_MM2",
    "UTILIZATION",
    "AreaBreakdown",
    "breakdown",
    "chip_area",
    "cluster_area",
    "domain_area",
    "fits_die",
    "pe_area",
    "FO4_PS",
    "TARGET_CYCLE_FO4",
    "TimingReport",
    "cycle_time_fo4",
    "cycles_to_seconds",
    "meets_clock_target",
    "timing_report",
]
