"""The RTL cluster area budget (paper Table 2).

Table 2 reports measured post-synthesis areas for the baseline cluster
(C=1, D=4, P=8, V=128, M=128, 32 KB L1).  Those measurements are the
calibration source for the Table 3 closed-form model; this module
reproduces the table itself, including the percentage columns, so the
Table 2 benchmark can print it and tests can check internal
consistency (sums, percentages, the "71% of cluster is PEs" and "~80%
SRAM" claims of Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WaveScalarConfig

#: Measured component areas for one PE (mm^2, Table 2).
PE_COMPONENTS_MM2 = {
    "INPUT": 0.01,
    "MATCH": 0.58,
    "DISPATCH": 0.01,
    "EXECUTE": 0.02,
    "OUTPUT": 0.02,
    "instruction store": 0.31,
}

#: Measured non-PE domain components (mm^2 per domain, Table 2).
DOMAIN_COMPONENTS_MM2 = {
    "MemPE": 0.13,
    "NetPE": 0.13,
    "FPU": 0.53,
}

#: Measured non-domain cluster components (mm^2 per cluster, Table 2).
CLUSTER_COMPONENTS_MM2 = {
    "network switch": 0.37,
    "store buffer": 2.62,
    "data cache": 6.18,
}


@dataclass(frozen=True)
class BudgetRow:
    """One row of the Table 2 reproduction."""

    component: str
    area_pe: float | None
    area_domain: float | None
    area_cluster: float
    pct_pe: float | None
    pct_domain: float | None
    pct_cluster: float


def pe_total_mm2() -> float:
    return sum(PE_COMPONENTS_MM2.values())


def domain_total_mm2(config: WaveScalarConfig | None = None) -> float:
    pes = config.pes_per_domain if config else 8
    return pes * pe_total_mm2() + sum(DOMAIN_COMPONENTS_MM2.values())


def cluster_total_mm2(config: WaveScalarConfig | None = None) -> float:
    domains = config.domains_per_cluster if config else 4
    return domains * domain_total_mm2(config) + sum(
        CLUSTER_COMPONENTS_MM2.values()
    )


def sram_fraction() -> float:
    """Share of the cluster budget in SRAM structures (matching tables,
    instruction stores, data cache); Section 4.1 reports ~80%."""
    cluster = cluster_total_mm2()
    sram = 4 * 8 * (
        PE_COMPONENTS_MM2["MATCH"] + PE_COMPONENTS_MM2["instruction store"]
    ) + CLUSTER_COMPONENTS_MM2["data cache"]
    return sram / cluster


def budget_rows() -> list[BudgetRow]:
    """The full Table 2, recomputed from the per-component areas."""
    pe_total = pe_total_mm2()
    domain_total = domain_total_mm2()
    cluster_total = cluster_total_mm2()
    rows: list[BudgetRow] = []

    for name, area in PE_COMPONENTS_MM2.items():
        rows.append(
            BudgetRow(
                component=name,
                area_pe=area,
                area_domain=area * 8,
                area_cluster=area * 32,
                pct_pe=area / pe_total,
                pct_domain=area * 8 / domain_total,
                pct_cluster=area * 32 / cluster_total,
            )
        )
    rows.append(
        BudgetRow(
            component="PE total",
            area_pe=pe_total,
            area_domain=pe_total * 8,
            area_cluster=pe_total * 32,
            pct_pe=1.0,
            pct_domain=pe_total * 8 / domain_total,
            pct_cluster=pe_total * 32 / cluster_total,
        )
    )
    for name, area in DOMAIN_COMPONENTS_MM2.items():
        rows.append(
            BudgetRow(
                component=name,
                area_pe=None,
                area_domain=area,
                area_cluster=area * 4,
                pct_pe=None,
                pct_domain=area / domain_total,
                pct_cluster=area * 4 / cluster_total,
            )
        )
    rows.append(
        BudgetRow(
            component="domain total",
            area_pe=None,
            area_domain=domain_total,
            area_cluster=domain_total * 4,
            pct_pe=None,
            pct_domain=1.0,
            pct_cluster=domain_total * 4 / cluster_total,
        )
    )
    for name, area in CLUSTER_COMPONENTS_MM2.items():
        rows.append(
            BudgetRow(
                component=name,
                area_pe=None,
                area_domain=None,
                area_cluster=area,
                pct_pe=None,
                pct_domain=None,
                pct_cluster=area / cluster_total,
            )
        )
    rows.append(
        BudgetRow(
            component="cluster total",
            area_pe=None,
            area_domain=None,
            area_cluster=cluster_total,
            pct_pe=None,
            pct_domain=None,
            pct_cluster=1.0,
        )
    )
    return rows


def format_budget_table() -> str:
    """Render the reproduction of Table 2 as aligned text."""
    lines = [
        f"{'component':<20}{'PE mm2':>9}{'domain mm2':>12}"
        f"{'cluster mm2':>13}{'% PE':>8}{'% domain':>10}{'% cluster':>11}"
    ]

    def fmt(x: float | None, pct: bool = False) -> str:
        if x is None:
            return ""
        return f"{x * 100:.1f}%" if pct else f"{x:.2f}"

    for row in budget_rows():
        lines.append(
            f"{row.component:<20}"
            f"{fmt(row.area_pe):>9}"
            f"{fmt(row.area_domain):>12}"
            f"{fmt(row.area_cluster):>13}"
            f"{fmt(row.pct_pe, True):>8}"
            f"{fmt(row.pct_domain, True):>10}"
            f"{fmt(row.pct_cluster, True):>11}"
        )
    return "\n".join(lines)
