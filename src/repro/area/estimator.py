"""Bottom-up area estimator (the RTL-model substitute).

The paper derives its per-entry area constants from Synopsys/Cadence
synthesis of real Verilog onto TSMC 90 nm cells.  Without that flow we
re-derive the same constants from first principles and check they land
within a factor of ~2 of the paper's calibrated numbers.  The
design-space study itself always uses the paper's constants
(:mod:`repro.area.model`); this estimator exists to justify them and to
let users extrapolate to structures the paper never synthesised.

Density assumptions (90 nm):

* Small, heavily ported microarchitectural storage (matching tables,
  instruction stores, ordering tables, network queues) synthesises to
  flop/latch arrays via DesignWare building blocks: ~18 um^2 per bit
  including muxing.
* The L1 is a compiled SRAM macro with 4 access ports ("4 accesses per
  cycle", Table 1); multi-porting costs roughly the square of the port
  count in cell area: ~16x a single-ported bit, ~2x peripheral
  overhead.
* The L2 is a large single-ported compiled macro: ~1.0 um^2/bit plus
  25% periphery.
* Synthesised logic: ~250k NAND2-equivalent gates per mm^2; a compact
  64-bit Booth multiplier ~12k gates, 64-bit ALU ~1.2k gates, an FPU
  ~120k gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WaveScalarConfig

FLOP_UM2_PER_BIT = 18.0
SRAM_UM2_PER_BIT = 1.0
GATES_PER_MM2 = 250_000.0
UM2_PER_MM2 = 1e6


def flop_array_mm2(bits: float) -> float:
    """Area of a small flop/latch-based storage structure."""
    return bits * FLOP_UM2_PER_BIT / UM2_PER_MM2


def sram_mm2(bits: float, ports: int = 1, overhead: float = 1.25) -> float:
    """Area of a compiled SRAM macro with ``ports`` access ports."""
    port_factor = float(ports * ports) if ports > 1 else 1.0
    return bits * SRAM_UM2_PER_BIT * port_factor * overhead / UM2_PER_MM2


def logic_mm2(gates: float) -> float:
    return gates / GATES_PER_MM2


# ----------------------------------------------------------------------
# Structure-level estimates
# ----------------------------------------------------------------------
def matching_entry_bits() -> int:
    """Bits per matching-table row: two 64-bit operand columns, the
    1-bit third column, and the tracker-board tag (thread + wave +
    instruction index ~48 bits, presence bits, LRU)."""
    return 64 * 2 + 1 + 48 + 4


def matching_table_mm2(entries: int) -> float:
    return flop_array_mm2(entries * matching_entry_bits()) + \
        logic_mm2(6_000)  # hash, comparators, bank arbitration


def istore_entry_bits() -> int:
    """Decoded instruction: opcode, immediate, 4 destinations, wave
    annotation, control bits -- ~110 bits over several small per-stage
    arrays (Section 3.2 keeps each single-ported)."""
    return 110


def istore_mm2(entries: int) -> float:
    return flop_array_mm2(entries * istore_entry_bits())


def pe_logic_mm2() -> float:
    """INPUT/DISPATCH/EXECUTE/OUTPUT logic: ALU + compact multiplier,
    queues and pipeline registers."""
    return logic_mm2(1_200 + 12_000 + 4_000)


def l1_mm2_per_kb() -> float:
    # Data + tags (~9%) with 4 access ports.
    bits_per_kb = 8 * 1024 * 1.09
    return sram_mm2(bits_per_kb, ports=4, overhead=2.0) + logic_mm2(1_000)


def l2_mm2_per_mb() -> float:
    bits_per_mb = 8 * 1024 * 1024 * 1.07
    return sram_mm2(bits_per_mb, ports=1, overhead=1.25)


def store_buffer_mm2() -> float:
    """Ordering tables for 4 in-flight waves (128 entries x ~200 bits:
    address, data, annotation links), two partial store queues, and the
    3-stage processing pipeline."""
    ordering = flop_array_mm2(4 * 128 * 200)
    psqs = flop_array_mm2(2 * 4 * 140)
    logic = logic_mm2(60_000)
    return ordering + psqs + logic


def network_switch_mm2() -> float:
    """Six ports x two virtual channels x 8-entry output queues of
    ~72-bit flits, plus crossbar and routing logic."""
    queues = flop_array_mm2(6 * 2 * 8 * 72)
    return queues + logic_mm2(40_000)


def fpu_mm2() -> float:
    return logic_mm2(120_000)


def pseudo_pe_mm2() -> float:
    """MEM/NET pseudo-PEs: interface queues and arbitration."""
    return flop_array_mm2(16 * 72) + logic_mm2(20_000)


# ----------------------------------------------------------------------
# Model-level estimates (same shape as repro.area.model)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EstimatedConstants:
    """First-principles counterparts of the Table 3 constants."""

    matching_mm2_per_entry: float
    istore_mm2_per_instruction: float
    pe_other_mm2: float
    pseudo_pe_mm2: float
    store_buffer_mm2: float
    l1_mm2_per_kb: float
    network_switch_mm2: float
    l2_mm2_per_mb: float


def estimate_constants() -> EstimatedConstants:
    """Derive per-unit constants from the structure estimates, using
    the same reference sizes the paper synthesised (128 entries)."""
    return EstimatedConstants(
        matching_mm2_per_entry=matching_table_mm2(128) / 128,
        istore_mm2_per_instruction=istore_mm2(128) / 128,
        pe_other_mm2=pe_logic_mm2(),
        pseudo_pe_mm2=pseudo_pe_mm2(),
        store_buffer_mm2=store_buffer_mm2(),
        l1_mm2_per_kb=l1_mm2_per_kb(),
        network_switch_mm2=network_switch_mm2(),
        l2_mm2_per_mb=l2_mm2_per_mb(),
    )


def estimate_chip_mm2(config: WaveScalarConfig) -> float:
    """Bottom-up chip area under the estimated constants."""
    consts = estimate_constants()
    pe = (
        config.matching_entries * consts.matching_mm2_per_entry
        + config.virtualization * consts.istore_mm2_per_instruction
        + consts.pe_other_mm2
    )
    domain = 2 * consts.pseudo_pe_mm2 + config.pes_per_domain * pe + fpu_mm2()
    cluster = (
        config.domains_per_cluster * domain
        + consts.store_buffer_mm2
        + config.l1_kb * consts.l1_mm2_per_kb
        + consts.network_switch_mm2
    )
    from .model import UTILIZATION

    return (
        config.clusters * cluster / UTILIZATION
        + config.l2_mb * consts.l2_mm2_per_mb
    )
