"""Chip floorplan geometry.

Section 3.3.2: "Each cluster contains an L1 cache, and the banks of an
L2 cache and a coherence directory surround the array of clusters",
with L2 hit latency "20-30 cycles, depending upon address and distance
to a requesting cluster".  This module makes that geometry explicit:

* clusters tile a near-square grid, each a square of its modelled area,
* L2 banks (with their directory slices) are placed evenly around the
  perimeter of the cluster array,
* distances are Euclidean millimetres between cluster centres and bank
  positions, converted to cycles at a repeated-wire signal velocity.

The memory hierarchy uses :meth:`Floorplan.l2_latency` for bank access
timing, which lands in the paper's 20-30 cycle band for in-budget
chips by construction of the velocity constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import WaveScalarConfig
from .model import cluster_area

#: Signal velocity over repeated upper-metal wire at 90 nm / 20 FO4,
#: in millimetres per cycle.  ~1 mm/cycle is the classic wire-delay
#: figure for this generation; it puts a 400 mm^2 chip's far corner
#: ~10 cycles from a bank, matching the paper's 20-30 cycle L2 band.
MM_PER_CYCLE = 1.0


@dataclass(frozen=True)
class Point:
    x: float
    y: float

    def distance(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Floorplan:
    """Physical layout of one configuration."""

    def __init__(self, config: WaveScalarConfig) -> None:
        self.config = config
        self.cluster_side = math.sqrt(cluster_area(config))
        cols, rows = config.grid_shape
        self.cols = cols
        self.rows = rows
        self.core_width = cols * self.cluster_side
        self.core_height = rows * self.cluster_side
        # One L2 bank per cluster-facing perimeter slot, at least 4
        # (matching the hierarchy's bank count).
        self.n_banks = max(4, config.clusters)

    # ------------------------------------------------------------------
    def cluster_center(self, cluster: int) -> Point:
        x, y = self.config.cluster_xy(cluster)
        side = self.cluster_side
        return Point((x + 0.5) * side, (y + 0.5) * side)

    def bank_position(self, bank: int) -> Point:
        """Banks spaced evenly along the core perimeter, clockwise from
        the west edge."""
        perimeter = 2 * (self.core_width + self.core_height)
        offset = (bank + 0.5) * perimeter / self.n_banks
        w, h = self.core_width, self.core_height
        if offset < h:  # west edge, going north
            return Point(0.0, offset)
        offset -= h
        if offset < w:  # north edge, going east
            return Point(offset, h)
        offset -= w
        if offset < h:  # east edge, going south
            return Point(w, h - offset)
        offset -= h
        return Point(w - offset, 0.0)  # south edge, going west

    # ------------------------------------------------------------------
    def bank_distance_mm(self, cluster: int, bank: int) -> float:
        return self.cluster_center(cluster).distance(
            self.bank_position(bank)
        )

    def l2_latency(self, cluster: int, bank: int) -> int:
        """Cycles for an L2 access from ``cluster`` to ``bank``:
        the base pipeline latency plus round-trip wire distance,
        clamped to the paper's 20-30 band."""
        cfg = self.config
        wire = 2.0 * self.bank_distance_mm(cluster, bank) / MM_PER_CYCLE
        return int(
            min(cfg.l2_max_latency, max(cfg.l2_base_latency,
                                        cfg.l2_base_latency + wire -
                                        self.cluster_side))
        )

    def worst_case_l2_latency(self) -> int:
        return max(
            self.l2_latency(c, b)
            for c in range(self.config.clusters)
            for b in range(self.n_banks)
        )

    # ------------------------------------------------------------------
    def render(self, scale: float = 0.55) -> str:
        """ASCII floorplan: cluster boxes with the L2 ring around them."""
        cell_w = max(6, int(self.cluster_side * scale * 2))
        cell_h = max(3, int(self.cluster_side * scale))
        width = self.cols * cell_w + 2
        lines = []
        lines.append("L2/directory ring".center(width, "="))
        for row in range(self.rows - 1, -1, -1):
            top = "+".join("-" * (cell_w - 1) for _ in range(self.cols))
            lines.append("|" + top + "|")
            for inner in range(cell_h - 1):
                cells = []
                for col in range(self.cols):
                    cluster = row * self.cols + col
                    if cluster < self.config.clusters and inner == \
                            (cell_h - 1) // 2:
                        label = f"C{cluster}".center(cell_w - 1)
                    else:
                        label = " " * (cell_w - 1)
                    cells.append(label)
                lines.append("|" + "|".join(cells) + "|")
        bottom = "+".join("-" * (cell_w - 1) for _ in range(self.cols))
        lines.append("|" + bottom + "|")
        lines.append("=" * width)
        lines.append(
            f"core {self.core_width:.1f} x {self.core_height:.1f} mm, "
            f"{self.n_banks} L2 banks on the perimeter, worst-case L2 "
            f"latency {self.worst_case_l2_latency()} cycles"
        )
        return "\n".join(lines)
