"""The WaveScalar area model (paper Table 3).

The paper distils its RTL synthesis results (90 nm TSMC, 20 FO4) into a
closed-form model: per-entry costs for the SRAM-dominated structures
(matching table, instruction store, caches), fixed costs for the other
components, and a utilisation factor covering wiring.  This module
transcribes that model exactly; every constant below is from Table 3.

The area model is what the design-space exploration consumes; the
independent bottom-up estimator in :mod:`repro.area.estimator`
cross-checks these constants against first-principles SRAM/logic area.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WaveScalarConfig

# ----------------------------------------------------------------------
# Table 3 constants (mm^2, 90 nm)
# ----------------------------------------------------------------------
MATCHING_MM2_PER_ENTRY = 0.004  # M_area
ISTORE_MM2_PER_INSTRUCTION = 0.002  # V_area
PE_OTHER_MM2 = 0.05  # e_area: INPUT/DISPATCH/EXECUTE/OUTPUT logic
PSEUDO_PE_MM2 = 0.1236  # PPE_area (MEM and NET)
STORE_BUFFER_MM2 = 2.464  # SB_area
L1_MM2_PER_KB = 0.363  # L1_area
NETWORK_SWITCH_MM2 = 0.349  # N_area
L2_MM2_PER_MB = 11.78  # L2_area
UTILIZATION = 0.94  # U: cell packing / routing overhead

#: Die-size cap used by the paper's design-space pruning (Section 4.2).
MAX_DIE_MM2 = 400.0

#: FPU area per domain (Table 2: 0.53 mm^2 per domain).  The Table 3
#: model folds this into the domain cost; we keep it explicit so the
#: Table 2 budget reproduction can report it separately.
FPU_MM2_PER_DOMAIN = 0.527


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one configuration, by component (mm^2)."""

    pe_matching: float
    pe_istore: float
    pe_other: float
    pseudo_pes: float
    fpus: float
    store_buffers: float
    l1: float
    network_switches: float
    l2: float
    wiring_overhead: float

    @property
    def pe_total(self) -> float:
        return self.pe_matching + self.pe_istore + self.pe_other

    @property
    def cluster_logic(self) -> float:
        """Everything inside the clusters, before utilisation."""
        return (
            self.pe_total
            + self.pseudo_pes
            + self.fpus
            + self.store_buffers
            + self.l1
            + self.network_switches
        )

    @property
    def total(self) -> float:
        return self.cluster_logic + self.wiring_overhead + self.l2

    @property
    def sram_fraction(self) -> float:
        """Fraction of cluster logic spent on SRAM structures --
        the paper reports ~80% (Section 4.1)."""
        sram = self.pe_matching + self.pe_istore + self.l1
        return sram / self.cluster_logic if self.cluster_logic else 0.0


def pe_area(config: WaveScalarConfig) -> float:
    """PE_area = M*M_area + V*V_area + e_area."""
    return (
        config.matching_entries * MATCHING_MM2_PER_ENTRY
        + config.virtualization * ISTORE_MM2_PER_INSTRUCTION
        + PE_OTHER_MM2
    )


def domain_area(config: WaveScalarConfig) -> float:
    """D_area = 2*PPE_area + P*PE_area (+ the shared FPU)."""
    return (
        2 * PSEUDO_PE_MM2
        + config.pes_per_domain * pe_area(config)
        + FPU_MM2_PER_DOMAIN
    )


def cluster_area(config: WaveScalarConfig) -> float:
    """C_area = D*D_area + SB_area + L1*L1_area + N_area."""
    return (
        config.domains_per_cluster * domain_area(config)
        + STORE_BUFFER_MM2
        + config.l1_kb * L1_MM2_PER_KB
        + NETWORK_SWITCH_MM2
    )


def chip_area(config: WaveScalarConfig) -> float:
    """WC_area = (C * C_area)/U + L2_area (Table 3's bottom line)."""
    return (
        config.clusters * cluster_area(config) / UTILIZATION
        + config.l2_mb * L2_MM2_PER_MB
    )


def breakdown(config: WaveScalarConfig) -> AreaBreakdown:
    """Full per-component decomposition of :func:`chip_area`."""
    n_pes = config.total_pes
    n_domains = config.clusters * config.domains_per_cluster
    pe_matching = n_pes * config.matching_entries * MATCHING_MM2_PER_ENTRY
    pe_istore = n_pes * config.virtualization * ISTORE_MM2_PER_INSTRUCTION
    pe_other = n_pes * PE_OTHER_MM2
    pseudo = n_domains * 2 * PSEUDO_PE_MM2
    fpus = n_domains * FPU_MM2_PER_DOMAIN
    sbs = config.clusters * STORE_BUFFER_MM2
    l1 = config.clusters * config.l1_kb * L1_MM2_PER_KB
    switches = config.clusters * NETWORK_SWITCH_MM2
    logic = (
        pe_matching + pe_istore + pe_other + pseudo + fpus + sbs + l1
        + switches
    )
    wiring = logic * (1.0 / UTILIZATION - 1.0)
    return AreaBreakdown(
        pe_matching=pe_matching,
        pe_istore=pe_istore,
        pe_other=pe_other,
        pseudo_pes=pseudo,
        fpus=fpus,
        store_buffers=sbs,
        l1=l1,
        network_switches=switches,
        l2=config.l2_mb * L2_MM2_PER_MB,
        wiring_overhead=wiring,
    )


def fits_die(config: WaveScalarConfig, budget_mm2: float = MAX_DIE_MM2) -> bool:
    """Whether the configuration fits the paper's 400 mm^2 cap."""
    return chip_area(config) <= budget_mm2
