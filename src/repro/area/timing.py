"""Cycle-time model (Section 2.1 and 4.1).

The paper holds clock frequency at 20 FO4 across the design space and
reports how structure sizes interact with that target:

* FO1 measured at 15.8 ps via a synthesised ring oscillator; FO4
  approximated as 3x FO1 = 47.3 ps (90 nm GT cells).
* The PE critical path is the integer multiplier fed from the pod
  partner's bypass -- until the matching cache or instruction store
  grows past 256 entries, at which point MATCH/DISPATCH paths dominate
  (+21% cycle time for a 256-entry matching cache, +7% for a 256-entry
  instruction store).
* Below 256 entries, resizing changes cycle time by under 5%.

This module encodes those measurements so the design-space pruner can
reject configurations that would break the 20 FO4 target, and so
results can be converted from cycles to wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WaveScalarConfig

FO1_PS = 15.8
FO4_PS = 3 * FO1_PS  # 47.4 ps (the paper rounds to 47.3)
TARGET_CYCLE_FO4 = 20.0

#: Largest structure sizes that keep the 20 FO4 clock (Section 4.1).
MAX_MATCHING_ENTRIES = 128
MAX_VIRTUALIZATION = 256  # "structure size limits ... in Table 3" cap V at 256
MAX_PES_PER_DOMAIN = 8
MAX_DOMAINS_PER_CLUSTER = 4

#: Cycle-time penalty factors at 256 entries (Section 4.1).
MATCHING_256_PENALTY = 1.21
ISTORE_256_PENALTY = 1.07
#: Sub-256 structures vary the clock by <5%; we model that as exactly
#: 1.0 (the paper treats them as equal).
SMALL_STRUCTURE_FACTOR = 1.0


@dataclass(frozen=True)
class TimingReport:
    """Clock analysis of one configuration."""

    cycle_fo4: float
    cycle_ps: float
    frequency_ghz: float
    critical_path: str
    meets_target: bool


def cycle_time_fo4(config: WaveScalarConfig) -> tuple[float, str]:
    """(cycle time in FO4, critical-path description)."""
    factor = SMALL_STRUCTURE_FACTOR
    path = "EXECUTE integer multiply via pod bypass"
    if config.matching_entries >= 256:
        factor = max(factor, MATCHING_256_PENALTY)
        path = "MATCH: matching-cache access"
    if config.virtualization >= 256 and config.virtualization > \
            config.matching_entries:
        factor = max(factor, ISTORE_256_PENALTY)
        if factor == ISTORE_256_PENALTY:
            path = "DISPATCH: instruction-store access"
    elif config.virtualization >= 256:
        factor = max(factor, ISTORE_256_PENALTY)
    return TARGET_CYCLE_FO4 * factor, path


def timing_report(config: WaveScalarConfig) -> TimingReport:
    fo4, path = cycle_time_fo4(config)
    ps = fo4 * FO4_PS
    return TimingReport(
        cycle_fo4=fo4,
        cycle_ps=ps,
        frequency_ghz=1e3 / ps,
        critical_path=path,
        meets_target=fo4 <= TARGET_CYCLE_FO4 + 1e-9,
    )


def meets_clock_target(config: WaveScalarConfig) -> bool:
    """True when the configuration sustains the 20 FO4 clock."""
    report = timing_report(config)
    return (
        report.meets_target
        and config.matching_entries <= MAX_MATCHING_ENTRIES
        and config.virtualization <= MAX_VIRTUALIZATION
        and config.pes_per_domain <= MAX_PES_PER_DOMAIN
        and config.domains_per_cluster <= MAX_DOMAINS_PER_CLUSTER
    )


def cycles_to_seconds(cycles: int, config: WaveScalarConfig) -> float:
    """Wall-clock time of a run at this configuration's clock."""
    fo4, _ = cycle_time_fo4(config)
    return cycles * fo4 * FO4_PS * 1e-12
