"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run --workload fft --clusters 4 --threads 16
    python -m repro run --workload gzip --sanitize
    python -m repro area --clusters 4 --l2-mb 2
    python -m repro designs
    python -m repro sweep --suite splash --sample 6
    python -m repro sweep --suite spec --ledger sweep.jsonl --resume
    python -m repro lint examples/ --check-config
    python -m repro lint all --json
    python -m repro trace --workload mcf --events 40
    python -m repro trace --workload mcf --trace-out trace.json
    python -m repro run --workload fft --profile
    python -m repro stats sweep.jsonl
    python -m repro chaos --seed 7 --json-out invariants.json
    python -m repro ledger verify sweep.jsonl
    python -m repro ledger repair sweep.jsonl
    python -m repro ledger compact sweep.jsonl

Every command is a thin veneer over the library; anything the CLI
prints can be recomputed through :mod:`repro.core`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .area import breakdown, timing_report
from .core import WaveScalarConfig, WaveScalarProcessor
from .sim.backends import BACKENDS, DEFAULT_BACKEND
from .harness.supervisor import DEFAULT_BATCH_WIDTH
from .core.experiments import evaluate_design_space
from .design import pareto_front, viable_designs
from .report import scatter
from .workloads import (
    MEDIA_NAMES,
    SPEC_NAMES,
    SPLASH_NAMES,
    TENSOR_NAMES,
    WORKLOADS,
    Scale,
    get,
)

SUITES = {
    "spec": SPEC_NAMES,
    "media": MEDIA_NAMES,
    "splash": SPLASH_NAMES,
    "tensor": TENSOR_NAMES,
    "all": tuple(sorted(WORKLOADS)),
}


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", type=int, default=1)
    parser.add_argument("--domains", type=int, default=4,
                        help="domains per cluster")
    parser.add_argument("--pes", type=int, default=8, help="PEs per domain")
    parser.add_argument("--virtualization", "-V", type=int, default=128,
                        help="instruction-store slots per PE")
    parser.add_argument("--matching", "-M", type=int, default=128,
                        help="matching-table entries per PE")
    parser.add_argument("--l1-kb", type=int, default=32)
    parser.add_argument("--l2-mb", type=int, default=0)


def _config_from(args: argparse.Namespace) -> WaveScalarConfig:
    return WaveScalarConfig(
        clusters=args.clusters,
        domains_per_cluster=args.domains,
        pes_per_domain=args.pes,
        virtualization=args.virtualization,
        matching_entries=args.matching,
        l1_kb=args.l1_kb,
        l2_mb=args.l2_mb,
    )


def cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'workload':<14}{'suite':<12}{'threads':<9}description")
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        print(
            f"{name:<14}{w.suite.value:<12}"
            f"{'multi' if w.multithreaded else 'single':<9}"
            f"{w.description}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    workload = get(args.workload)
    threads = args.threads if workload.multithreaded else None
    proc = WaveScalarProcessor(config, backend=args.backend)
    print(proc.describe())
    if args.backend != "plain":
        print(f"engine backend: {args.backend}")
    sanitizer = None
    if args.sanitize:
        from .analysis import RuntimeSanitizer

        sanitizer = RuntimeSanitizer()
    trace = None
    if args.trace_out:
        from .sim.trace import Trace

        trace = Trace()
    profile = None
    if args.profile:
        from .obs import PhaseProfile

        profile = PhaseProfile()
    result = proc.run_workload(
        workload, scale=Scale[args.scale.upper()], threads=threads,
        k=args.k, seed=args.seed, sanitizer=sanitizer,
        strict=not args.sanitize, trace=trace, profile=profile,
    )
    if proc.last_backend_fallback:
        print(f"note: batched backend fell back to plain "
              f"({proc.last_backend_fallback}); results are "
              f"bit-identical either way")
    print(result.summary())
    fr = result.stats.traffic_fractions()
    print(
        f"traffic: pod {fr['pod']:.0%} / domain {fr['domain']:.0%} / "
        f"cluster {fr['cluster']:.0%} / grid {fr['grid']:.1%}"
    )
    print(f"outputs: {result.outputs()}")
    if trace is not None:
        written = trace.to_chrome(args.trace_out)
        print(_trace_capture_line(trace))
        print(f"chrome trace: {args.trace_out} ({written} trace "
              f"events; open in https://ui.perfetto.dev)")
    if profile is not None:
        print()
        print("hot-loop phase profile:")
        print(profile.render())
    if sanitizer is not None:
        print()
        print(sanitizer.report().render())
        if not sanitizer.ok:
            return 1
    return 0


def _lint_exit(merged, fail_on: str) -> int:
    """Exit code for a lint report under a ``--fail-on`` threshold:
    non-zero when any diagnostic at or above the threshold severity
    exists (error < warning < info, compiler convention)."""
    if fail_on == "info":
        return 1 if len(merged) else 0
    if fail_on == "warning":
        return 1 if (merged.has_errors or merged.warnings) else 0
    return 1 if merged.has_errors else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_config, merge_reports, resolve_targets

    if args.self_lint:
        from .analysis.selflint import lint_self

        merged = lint_self()
        if args.json:
            print(merged.to_json(indent=2))
        else:
            for diag in merged.sorted():
                print(diag.render())
            counts = ", ".join(
                f"{rule} x{count}"
                for rule, count in merged.counts_by_rule().items()
            )
            print(f"self-lint (determinism D-rules): {merged.summary()}"
                  + (f" [{counts}]" if counts else ""))
        return _lint_exit(merged, args.fail_on)

    targets = args.targets or ["all"]
    results = resolve_targets(
        targets, scale=Scale[args.scale.upper()],
        threads=args.threads,
    )
    if args.check_config:
        results.append(lint_config(_config_from(args)))
    merged = merge_reports(results)
    if args.json:
        print(merged.to_json(indent=2))
    else:
        for result in results:
            diags = result.report.sorted()
            if not args.verbose:
                from .analysis import Severity

                diags = [d for d in diags
                         if d.severity is not Severity.INFO]
            for diag in diags:
                print(diag.render())
        clean = sum(1 for r in results if not len(r.report))
        counts = ", ".join(
            f"{rule} x{count}"
            for rule, count in merged.counts_by_rule().items()
        )
        print(
            f"linted {len(results)} target(s) ({clean} silent): "
            f"{merged.summary()}"
            + (f" [{counts}]" if counts else "")
        )
    return _lint_exit(merged, args.fail_on)


def cmd_area(args: argparse.Namespace) -> int:
    from .area import Floorplan

    config = _config_from(args)
    bd = breakdown(config)
    report = timing_report(config)
    print(f"{config.describe()}")
    print(f"clock: {report.cycle_fo4:.0f} FO4 = {report.cycle_ps:.0f} ps "
          f"({report.frequency_ghz:.2f} GHz); critical path: "
          f"{report.critical_path}")
    rows = [
        ("PE matching tables", bd.pe_matching),
        ("PE instruction stores", bd.pe_istore),
        ("PE other logic", bd.pe_other),
        ("pseudo PEs", bd.pseudo_pes),
        ("FPUs", bd.fpus),
        ("store buffers", bd.store_buffers),
        ("L1 caches", bd.l1),
        ("network switches", bd.network_switches),
        ("wiring overhead", bd.wiring_overhead),
        ("L2", bd.l2),
    ]
    for name, value in rows:
        print(f"  {name:<24}{value:>9.2f} mm2 {value / bd.total:>7.1%}")
    print(f"  {'total':<24}{bd.total:>9.2f} mm2")
    if args.floorplan:
        print()
        print(Floorplan(config).render())
    return 0


def cmd_designs(args: argparse.Namespace) -> int:
    designs = viable_designs(ratio=args.ratio)
    print(f"{len(designs)} viable designs (virtualization ratio "
          f"{args.ratio}):")
    for d in designs:
        print(f"  {d.area_mm2:>6.0f} mm2  {d.config.describe()}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_graph, bound_for_cell, workload_statics
    from .harness.spec import CellSpec

    config = _config_from(args)
    names = SUITES[args.suite] if args.suite else [args.workload]
    reports = []
    exit_code = 0
    for name in names:
        spec = CellSpec(
            config=config, workload=name, scale=args.scale,
            threads=args.threads,
        )
        bound = bound_for_cell(spec)
        reports.append(bound)
        if bound.proven_deadlock:
            exit_code = 1
    if args.json:
        import json as _json

        print(_json.dumps([b.to_dict() for b in reports], indent=2))
        return exit_code
    for bound in reports:
        print(bound.render())
        print(f"  binding roof       {bound.binding_roof}")
        if args.verbose:
            statics = workload_statics(
                bound.workload, scale=args.scale, threads=args.threads
            )
            if statics.graph is not None:
                for diag in analyze_graph(statics.graph).sorted():
                    print(f"  {diag.render()}")
        print()
    return exit_code


def cmd_sweep(args: argparse.Namespace) -> int:
    from .harness.sweep import design_space_sweep

    if args.resume and not args.ledger:
        print("error: --resume requires --ledger PATH", file=sys.stderr)
        return 2
    import os

    names = SUITES[args.suite]
    designs = viable_designs()[:: args.sample]
    threaded = args.suite == "splash"
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    print(
        f"evaluating {len(designs)} designs on suite {args.suite!r} "
        f"({'best thread count' if threaded else 'single-threaded'}"
        f"{f', {jobs} jobs' if jobs > 1 else ''}) ..."
    )
    # Subprocess isolation (watchdog, kill protection) engages when a
    # ledger or timeout asks for a supervised campaign; plain sweeps
    # stay in-process for speed (with jobs>1 each cell already runs
    # inside a worker process, so "inline" still isolates the driver).
    isolation = "process" if (args.ledger or args.timeout_s is not None) \
        else "inline"
    progress = None
    if args.progress:
        from .obs import ThroughputMeter

        # The lane count is a lower bound on cells (thread escalation
        # adds more), so the ETA is optimistic for threaded suites;
        # the driver's own meter in the final summary is exact.
        meter = ThroughputMeter(
            total=None if threaded else len(designs) * len(names)
        )

        def progress(spec, record):
            meter.note()
            status = record.get("status", "?")
            print(f"  [{meter.render()}] {spec.describe()}: {status}")

    points, report = design_space_sweep(
        designs, names, scale=Scale[args.scale.upper()],
        threaded=threaded, ledger_path=args.ledger, resume=args.resume,
        timeout_s=args.timeout_s, isolation=isolation, jobs=jobs,
        progress=progress, failure_budget=args.failure_budget,
        prune=args.prune, surrogate=args.surrogate,
        backend=args.backend, batch_width=args.batch_width,
    )
    if args.save:
        from .design import dump_points

        dump_points(points, args.save,
                    metadata={"suite": args.suite, "scale": args.scale})
        print(f"sweep saved to {args.save}")
    print(scatter(points, title=f"{args.suite} @ {args.scale}"))
    print("\nPareto frontier:")
    for p in pareto_front(points):
        print(f"  {p.area:>6.0f} mm2  AIPC {p.performance:5.2f}  {p.label}")
    if report.failures:
        print("\nzero-scored cells:")
        for failure in report.failures:
            print(f"  {failure.render()}")
    if args.ledger:
        print(f"ledger: {args.ledger} (inspect with `repro stats "
              f"{args.ledger}`)")
    print(report.summary())
    metrics = report.metrics_summary()
    if metrics:
        print(metrics)
    return 3 if report.aborted else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos campaign and report which injections fired
    and which invariants held (exit non-zero on violation)."""
    import tempfile
    from pathlib import Path

    from .harness.chaos import dump_report, plan_for_seed, run_chaos_campaign

    overrides = {"rate": args.rate, "poison_rate": args.poison_rate}
    if args.points:
        overrides["points"] = tuple(args.points.split(","))
    if args.stall_s is not None:
        overrides["stall_s"] = args.stall_s
    plan = plan_for_seed(args.seed, **overrides)
    designs = viable_designs()[:: args.sample][: args.designs]
    names = SUITES[args.suite][: args.workloads]
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(
        f"chaos campaign: seed {args.seed}, {len(designs)} design(s) x "
        f"{len(names)} workload(s), {len(plan.points)} injection "
        f"point(s) armed (workdir {workdir})"
    )
    report = run_chaos_campaign(
        designs, names, plan=plan, workdir=workdir,
        scale=Scale[args.scale.upper()], jobs=args.jobs,
        isolation=args.isolation, timeout_s=args.timeout_s,
        failure_budget=args.failure_budget,
    )
    print(report.render())
    if args.json_out:
        dump_report(report, args.json_out)
        print(f"invariant report written to {args.json_out}")
    if args.workdir:
        print(f"ledgers kept in {Path(workdir)}")
    else:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)
    return 0 if report.ok else 1


def cmd_ledger(args: argparse.Namespace) -> int:
    """Ledger maintenance: verify / repair / compact."""
    import json

    from .harness.ledger import Ledger, summarize

    ledger = Ledger(args.path)
    if not ledger.path.exists():
        print(f"error: no ledger at {args.path}", file=sys.stderr)
        return 2
    if args.action == "verify":
        audit = ledger.verify()
        if args.json:
            document = {
                "lines": audit.lines, "ok": audit.ok,
                "legacy": audit.legacy, "torn": audit.torn,
                "corrupt_json": audit.corrupt_json,
                "crc_mismatch": audit.crc_mismatch,
                "records": audit.records,
                "superseded": audit.superseded,
                "clean": audit.clean,
                "issues": [
                    {"line": i.line_no, "reason": i.reason}
                    for i in audit.issues
                ],
            }
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(f"{args.path}: {audit.summary()}")
            for issue in audit.issues:
                print(f"  {issue.render()}")
        return 0 if audit.clean else 1
    report = ledger.repair() if args.action == "repair" \
        else ledger.compact()
    print(f"{args.path}: {report.summary()}")
    counts = summarize(ledger.load())
    print("statuses: " + ", ".join(
        f"{v} {k}" for k, v in sorted(counts.items())
    ))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from .workloads.characterize import (
        characterization_table,
        profile_workload,
    )

    names = SUITES[args.suite]
    scale = Scale[args.scale.upper()]
    profiles = []
    for name in names:
        w = get(name)
        threads = args.threads if w.multithreaded else None
        profiles.append(profile_workload(w, scale, threads=threads))
    print(characterization_table(profiles))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from .core.experiments import tune_workload

    w = get(args.workload)
    threads = args.threads if w.multithreaded else None
    result = tune_workload(
        args.workload, Scale[args.scale.upper()], threads=threads
    )
    print(
        f"{result.application}: k_opt={result.k_opt} "
        f"u_opt={result.u_opt} virtualization ratio "
        f"{result.virtualization_ratio:.3f}"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .report import generate_report

    text = generate_report(
        scale=Scale[args.scale.upper()], sample=args.sample,
        ledger_path=args.ledger,
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _trace_capture_line(trace) -> str:
    """One honest line about what the bounded trace kept.

    ``Trace.dropped`` used to be silently swallowed here: a truncated
    trace printed like a complete one.  Now every capture reports its
    limit, policy, and drop count.
    """
    line = (
        f"trace captured {len(trace.events)} events "
        f"(limit {trace.limit}, policy {trace.policy})"
    )
    if trace.dropped:
        if trace.policy == "drop_newest":
            kept, hint = "first", (
                "raise the limit, or use policy drop-oldest to keep "
                "the end of the run"
            )
        else:
            kept, hint = "last", "raise the limit to keep more"
        line += (
            f"; {trace.dropped} events DROPPED -- only the {kept} "
            f"{len(trace.events)} were kept ({hint})"
        )
    return line


def cmd_trace(args: argparse.Namespace) -> int:
    from .place.snake import place
    from .sim.engine import Engine
    from .sim.trace import Trace

    config = _config_from(args)
    workload = get(args.workload)
    threads = args.threads if workload.multithreaded else None
    graph = workload.instantiate(
        scale=Scale[args.scale.upper()], threads=threads, seed=args.seed
    )
    engine = Engine(graph, config, place(graph, config))
    engine.trace = Trace(
        limit=args.limit, policy=args.policy.replace("-", "_")
    )
    engine.run()
    trace = engine.trace
    events = list(trace.events)[: args.events]
    for e in events:
        print(e.render())
    print(f"... showing {len(events)} of {len(trace.events)} events")
    print(_trace_capture_line(trace))
    if args.trace_out:
        written = trace.to_chrome(args.trace_out)
        print(f"chrome trace: {args.trace_out} ({written} trace "
              f"events; open in https://ui.perfetto.dev)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .harness.ledger import Ledger, summarize
    from .obs import aggregate_records

    ledger = Ledger(args.ledger)
    if not ledger.path.exists():
        print(f"error: no ledger at {args.ledger}", file=sys.stderr)
        return 2
    records = ledger.load()
    if not records:
        print(f"error: {args.ledger} holds no records", file=sys.stderr)
        return 2
    registry = aggregate_records(records.values())
    if args.json:
        import json

        document = registry.to_dict()
        document["statuses"] = summarize(
            records, ledger.torn_lines, ledger.corrupt_lines
        )
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"ledger: {args.ledger} ({len(records)} cells)")
    if ledger.torn_lines:
        print(f"warning: {ledger.torn_lines} torn ledger line(s) skipped")
    if ledger.corrupt_lines:
        print(f"warning: {ledger.corrupt_lines} checksum-failed "
              f"line(s) skipped (run `repro ledger repair "
              f"{args.ledger}`)")
    print(registry.render("sweep metrics:"))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzz campaign: seeded programs through every
    oracle (interpreter, plain engine, batched backend, static bound,
    linter); divergences are minimized and written to the corpus."""
    import json

    from .fuzz import get_defect, run_campaign

    try:
        defect = get_defect(args.defect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(seed, result):
        if not args.json and (seed + 1 - args.start) % 50 == 0:
            print(f"  seed {seed}: {result.seeds_run} run, "
                  f"{len(result.cases)} divergence(s)")

    if not args.json:
        print(f"fuzzing seeds {args.start}..{args.start + args.seeds - 1}"
              + (f" with seeded defect {args.defect!r}" if args.defect
                 else ""))
    result = run_campaign(
        seeds=args.seeds, start=args.start, corpus_dir=args.corpus,
        minimize=args.minimize, defect=defect, defect_name=args.defect,
        progress=progress,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"{result.seeds_run} program(s): {result.programs_clean} "
              f"clean, {len(result.cases)} divergent "
              f"({result.total_static} static / {result.total_dynamic} "
              f"dynamic instructions covered)")
        for case in result.cases:
            size = (f"{case.graph_len} -> {case.minimized_len} instrs"
                    if case.minimized_len is not None
                    else f"{case.graph_len} instrs")
            print(f"  seed {case.seed} [{case.kind}] {size}: "
                  f"{case.detail[:100]}")
        if result.cases and args.corpus:
            print(f"repro cases written to {args.corpus}/")
    return 1 if result.cases else 0


def cmd_surrogate(args: argparse.Namespace) -> int:
    """Surrogate model tooling over a sweep ledger.

    ``report``: extract the training set (streaming selective-field
    decode), fit on a deterministic holdout split, and print the
    exact-vs-predicted calibration (MAE, empirical interval coverage).
    Exits non-zero when coverage misses the target -- the CI gate that
    keeps ``--surrogate`` sweeps honest.
    """
    import json

    from .harness.ledger import Ledger
    from .surrogate import calibration_report, extract_training_set

    ledger = Ledger(args.ledger)
    if not ledger.path.exists():
        print(f"error: no ledger at {args.ledger}", file=sys.stderr)
        return 2
    training = extract_training_set(ledger)
    try:
        report = calibration_report(
            training, holdout=args.holdout, seed=args.seed,
            coverage=args.coverage,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"ledger: {args.ledger}")
        print(report.render())
    return 0 if report.calibrated else 1


#: Substrings classifying benchmark metrics for baseline comparison.
#: A metric whose key matches neither list is informational only.
_LOWER_BETTER = ("wall", "overhead", "error", "mae", "loss", "width",
                 "miss", "torn", "corrupt", "fallback", "retried",
                 "failed", "poisoned")
_HIGHER_BETTER = ("speedup", "per_s", "aipc", "rate", "coverage",
                  "reduction", "throughput", "hits", "pruned",
                  "predicted")


def _bench_scalars(doc, prefix: str = "") -> dict[str, float]:
    """Flatten numeric scalars (one nesting level deep, matching
    :func:`_bench_lines`) into ``dotted.key -> value``."""
    out: dict[str, float] = {}
    if not isinstance(doc, dict):
        return out
    for key, value in doc.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[f"{prefix}{key}"] = float(value)
        elif isinstance(value, dict) and not prefix:
            out.update(_bench_scalars(value, prefix=f"{key}."))
    return out


def _bench_direction(key: str) -> int:
    """``-1`` when lower is better, ``+1`` when higher is, ``0`` when
    the key name decides neither (then drift is reported, not
    judged).  The *last* path component decides, so
    ``surrogate.coverage`` reads as a coverage."""
    leaf = key.rsplit(".", 1)[-1]
    lower = any(mark in leaf for mark in _LOWER_BETTER)
    higher = any(mark in leaf for mark in _HIGHER_BETTER)
    if lower == higher:
        return 0
    return -1 if lower else 1


def _compare_benchmarks(
    current: dict[str, dict], baseline_dir, tolerance: float,
) -> tuple[list[str], int]:
    """Compare current benchmark documents against ``baseline_dir``.

    Returns display lines and the regression count.  A *regression* is
    a judged metric moving in its bad direction by more than
    ``tolerance`` (relative); improvements and unjudged drift are
    reported but never counted.
    """
    import json
    from pathlib import Path

    lines: list[str] = []
    regressions = 0
    baseline_dir = Path(baseline_dir)
    for name in sorted(current):
        base_path = baseline_dir / name
        if not base_path.exists():
            lines.append(f"{name}: no baseline (new benchmark)")
            continue
        try:
            base_doc = json.loads(base_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            lines.append(f"{name}: unreadable baseline ({exc})")
            continue
        now = _bench_scalars(current[name])
        base = _bench_scalars(base_doc)
        for key in sorted(set(now) & set(base)):
            old, new = base[key], now[key]
            if old == new:
                continue
            scale = max(abs(old), abs(new), 1e-12)
            drift = (new - old) / scale
            if abs(drift) <= tolerance:
                continue
            direction = _bench_direction(key)
            if direction == 0:
                lines.append(
                    f"{name}: {key} drifted {old:.4g} -> {new:.4g}"
                )
            elif drift * direction < 0:
                regressions += 1
                lines.append(
                    f"{name}: REGRESSION {key} {old:.4g} -> {new:.4g} "
                    f"({drift:+.1%}, tolerance {tolerance:.0%})"
                )
            else:
                lines.append(
                    f"{name}: improved {key} {old:.4g} -> {new:.4g} "
                    f"({drift:+.1%})"
                )
    return lines, regressions


def _bench_lines(doc: dict) -> list[str]:
    """Flatten one benchmark document into display lines: top-level
    scalars as ``key = value``, nested dicts as one ``key: k=v, ...``
    line each, lists by length only.  Benchmark schemas differ file to
    file (that is the drift this command absorbs), so the rendering is
    deliberately schema-agnostic."""
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = []
    for key, value in doc.items():
        if isinstance(value, dict):
            inner = ", ".join(
                f"{k}={fmt(v)}" for k, v in value.items()
                if isinstance(v, (int, float, str, bool))
            )
            if inner:
                lines.append(f"{key}: {inner}")
        elif isinstance(value, (int, float, str, bool)):
            lines.append(f"{key} = {fmt(value)}")
        elif isinstance(value, list):
            lines.append(f"{key}: [{len(value)} item(s)]")
    return lines


def cmd_bench_summary(args: argparse.Namespace) -> int:
    """One screen over every ``BENCH_*.json`` benchmark artifact.

    Benchmarks historically scattered their JSON between the repo root
    (``BENCH_engine.json``, ``BENCH_chaos.json``, ...) and
    ``benchmarks/results/``; this scans both so nothing drifts out of
    view, mirroring the CI upload glob.
    """
    import json
    from pathlib import Path

    root = Path(args.root)
    paths = sorted(
        set(root.glob("BENCH_*.json"))
        | set((root / "benchmarks" / "results").glob("BENCH_*.json"))
    )
    if not paths:
        print(f"no BENCH_*.json found under {root}", file=sys.stderr)
        return 2
    bad = 0
    docs: dict[str, dict] = {}
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"{path}: unreadable ({exc})")
            bad += 1
            continue
        if not text.strip():
            print(f"{path}: empty file")
            bad += 1
            continue
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{path}: malformed JSON ({exc})")
            bad += 1
            continue
        print(f"{path}:")
        if isinstance(doc, dict):
            docs[path.name] = doc
            for line in _bench_lines(doc):
                print(f"  {line}")
        elif isinstance(doc, list):
            print(f"  [{len(doc)} top-level item(s)]")
        else:
            print(f"  [non-object document: {type(doc).__name__}]")
            bad += 1
    regressions = 0
    if args.baseline:
        from pathlib import Path as _Path

        if not _Path(args.baseline).is_dir():
            print(f"error: baseline dir {args.baseline} not found",
                  file=sys.stderr)
            return 2
        lines, regressions = _compare_benchmarks(
            docs, args.baseline, args.tolerance
        )
        print(f"\nbaseline comparison ({args.baseline}, tolerance "
              f"{args.tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not lines:
            print("  no drift beyond tolerance")
        if regressions:
            print(f"{regressions} regression(s) vs baseline",
                  file=sys.stderr)
    if bad:
        print(f"warning: {bad} bad benchmark file(s) skipped",
              file=sys.stderr)
    if args.strict and (bad or regressions):
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WaveScalar area/performance study (ISCA'06 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    p_run = sub.add_parser("run", help="run one workload")
    _add_config_args(p_run)
    p_run.add_argument("--workload", "-w", required=True,
                       choices=sorted(WORKLOADS))
    p_run.add_argument("--threads", "-t", type=int, default=4)
    p_run.add_argument("--scale", default="small",
                       choices=[s.value for s in Scale])
    p_run.add_argument("--k", type=int, default=None,
                       help="k-loop bound override")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--sanitize", action="store_true",
                       help="audit runtime invariants (token "
                            "conservation, matching-table leaks, queue "
                            "bounds); violations exit non-zero")
    p_run.add_argument("--trace-out", default=None, dest="trace_out",
                       metavar="PATH",
                       help="record a pipeline trace and export it as "
                            "Chrome trace-event JSON (open in Perfetto)")
    p_run.add_argument("--profile", action="store_true",
                       help="attribute hot-loop time to pipeline "
                            "phases (input/match/dispatch/execute/"
                            "deliver) and print the table")
    p_run.add_argument("--backend", default=DEFAULT_BACKEND,
                       choices=BACKENDS,
                       help="engine backend (bit-identical results; "
                            "'batched' pays off in sweeps, not single "
                            "runs, and falls back to plain when a "
                            "trace/sanitizer/profile is attached)")

    p_area = sub.add_parser("area", help="area/timing breakdown")
    _add_config_args(p_area)
    p_area.add_argument("--floorplan", action="store_true",
                        help="render the ASCII floorplan")

    p_designs = sub.add_parser("designs", help="list viable designs")
    p_designs.add_argument("--ratio", type=float, default=1.0)

    p_sweep = sub.add_parser("sweep", help="mini Pareto sweep")
    p_sweep.add_argument("--suite", default="spec", choices=sorted(SUITES))
    p_sweep.add_argument("--sample", type=int, default=6,
                         help="evaluate every Nth design")
    p_sweep.add_argument("--scale", default="tiny",
                         choices=[s.value for s in Scale])
    p_sweep.add_argument("--save", default=None,
                         help="write the evaluated points to a JSON file")
    p_sweep.add_argument("--ledger", default=None, metavar="PATH",
                         help="JSONL results ledger: every finished "
                              "cell is checkpointed here")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip cells already recorded in --ledger")
    p_sweep.add_argument("--timeout-s", type=float, default=None,
                         dest="timeout_s", metavar="S",
                         help="wall-clock watchdog per cell; a hung "
                              "run is killed and recorded")
    p_sweep.add_argument("--progress", action="store_true",
                         help="print one line per resolved cell with "
                              "running cells/s and ETA")
    p_sweep.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                         help="worker processes for the sweep (1 = "
                              "serial, 0 = one per core); lanes of "
                              "independent (design, workload) pairs "
                              "run concurrently, results are "
                              "identical to a serial sweep")
    p_sweep.add_argument("--failure-budget", type=float, default=None,
                         dest="failure_budget", metavar="FRAC",
                         help="abort the campaign (exit 3, partial "
                              "report) when more than this fraction "
                              "of resolved cells failed or were "
                              "poisoned, e.g. 0.5")
    p_sweep.add_argument("--prune", action="store_true",
                         help="skip cells whose static AIPC upper "
                              "bound is dominated by an already-"
                              "measured cheaper design (pruned_static "
                              "ledger records; the Pareto frontier is "
                              "bit-identical to an unpruned sweep; "
                              "forces serial execution)")
    p_sweep.add_argument("--surrogate", action="store_true",
                         help="active-learning sweep: a conformal "
                              "surrogate trained on the measurements "
                              "so far skips designs that provably "
                              "cannot reach the Pareto frontier "
                              "(predicted ledger records with "
                              "interval + model hash; the frontier "
                              "itself is always measured exactly; "
                              "forces serial execution)")
    p_sweep.add_argument("--backend", default=DEFAULT_BACKEND,
                         choices=BACKENDS,
                         help="engine backend; 'batched' lockstep-"
                              "executes groups of same-workload cells "
                              "for sweep-level throughput, with "
                              "records bit-identical to 'plain'")
    p_sweep.add_argument("--batch-width", type=int,
                         default=DEFAULT_BATCH_WIDTH,
                         dest="batch_width", metavar="N",
                         help="cells per lockstep batch group "
                              "(batched backend only)")

    p_analyze = sub.add_parser(
        "analyze", help="static dataflow analysis: token-occupancy "
                        "proofs and a sound AIPC upper bound per "
                        "(workload, config) cell, no simulation"
    )
    _add_config_args(p_analyze)
    group = p_analyze.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", "-w", choices=sorted(WORKLOADS))
    group.add_argument("--suite", choices=sorted(SUITES))
    p_analyze.add_argument("--scale", default="tiny",
                           choices=[s.value for s in Scale])
    p_analyze.add_argument("--threads", "-t", type=int, default=None,
                           help="thread count for multithreaded "
                                "workloads")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit bound reports as JSON")
    p_analyze.add_argument("--verbose", "-v", action="store_true",
                           help="also run the graph rule registry and "
                                "print its diagnostics")

    p_lint = sub.add_parser(
        "lint", help="static analysis of programs and configs"
    )
    _add_config_args(p_lint)
    p_lint.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="workload name, suite name, .wsasm file, or directory "
             "(default: every bundled workload)",
    )
    p_lint.add_argument("--scale", default="tiny",
                        choices=[s.value for s in Scale],
                        help="scale at which workloads are instantiated")
    p_lint.add_argument("--threads", "-t", type=int, default=None,
                        help="thread count for multithreaded workloads")
    p_lint.add_argument("--check-config", action="store_true",
                        dest="check_config",
                        help="also lint the processor configuration "
                             "built from the config flags")
    p_lint.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")
    p_lint.add_argument("--verbose", "-v", action="store_true",
                        help="include info-level diagnostics")
    p_lint.add_argument("--fail-on", default="error", dest="fail_on",
                        choices=["error", "warning", "info"],
                        help="lowest severity that makes the exit "
                             "code non-zero (default: error; "
                             "'warning' also fails on warnings, "
                             "'info' fails on any diagnostic)")
    p_lint.add_argument("--self", action="store_true", dest="self_lint",
                        help="lint the repro source tree itself for "
                             "determinism hazards (D-rules: wall-"
                             "clock reads, unseeded randomness, set "
                             "iteration feeding ordered output)")

    p_char = sub.add_parser("characterize",
                            help="workload shape table (Section 2.2)")
    p_char.add_argument("--suite", default="all", choices=sorted(SUITES))
    p_char.add_argument("--threads", "-t", type=int, default=4)
    p_char.add_argument("--scale", default="tiny",
                        choices=[s.value for s in Scale])

    p_tune = sub.add_parser("tune",
                            help="Table 4 matching-table tuning row")
    p_tune.add_argument("--workload", "-w", required=True,
                        choices=sorted(WORKLOADS))
    p_tune.add_argument("--threads", "-t", type=int, default=4)
    p_tune.add_argument("--scale", default="tiny",
                        choices=[s.value for s in Scale])

    p_report = sub.add_parser(
        "report", help="generate a markdown reproduction report"
    )
    p_report.add_argument("--scale", default="tiny",
                          choices=[s.value for s in Scale])
    p_report.add_argument("--sample", type=int, default=8,
                          help="evaluate every Nth design")
    p_report.add_argument("--output", "-o", default=None)
    p_report.add_argument(
        "--ledger", default=None,
        help="append a campaign-observability section aggregated from "
             "this sweep ledger",
    )

    p_trace = sub.add_parser("trace", help="pipeline event trace")
    _add_config_args(p_trace)
    p_trace.add_argument("--workload", "-w", required=True,
                         choices=sorted(WORKLOADS))
    p_trace.add_argument("--threads", "-t", type=int, default=2)
    p_trace.add_argument("--scale", default="tiny",
                         choices=[s.value for s in Scale])
    p_trace.add_argument("--events", type=int, default=60)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--limit", type=int, default=100_000,
                         help="trace capacity; events beyond it are "
                              "dropped per --policy and reported")
    p_trace.add_argument("--policy", default="drop-newest",
                         choices=("drop-newest", "drop-oldest"),
                         help="at capacity, drop-newest keeps the "
                              "first --limit events (run start); "
                              "drop-oldest is a ring buffer keeping "
                              "the last --limit (run end)")
    p_trace.add_argument("--trace-out", default=None, dest="trace_out",
                         metavar="PATH",
                         help="also export the trace as Chrome "
                              "trace-event JSON (open in Perfetto)")

    p_stats = sub.add_parser(
        "stats", help="aggregate observability metrics from a sweep "
                      "ledger"
    )
    p_stats.add_argument("ledger", metavar="LEDGER",
                         help="JSONL ledger written by sweep --ledger")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the aggregated registry as JSON")

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign: inject "
                      "worker/driver/ledger faults, recover, and "
                      "prove the invariants held"
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="chaos seed; the same seed fires the "
                              "same faults at the same cells")
    p_chaos.add_argument("--rate", type=float, default=0.25,
                         help="per-(point, cell) injection probability")
    p_chaos.add_argument("--poison-rate", type=float, default=0.2,
                         dest="poison_rate",
                         help="probability a cell crashes its worker "
                              "on every attempt (circuit-breaker "
                              "quarantine path)")
    p_chaos.add_argument("--points", default=None,
                         help="comma-separated injection points "
                              "(default: the full catalogue)")
    p_chaos.add_argument("--suite", default="spec",
                         choices=sorted(SUITES))
    p_chaos.add_argument("--workloads", type=int, default=2,
                         metavar="N", help="workloads from the suite")
    p_chaos.add_argument("--designs", type=int, default=2, metavar="N",
                         help="designs from the viable set")
    p_chaos.add_argument("--sample", type=int, default=8,
                         help="take every Nth viable design")
    p_chaos.add_argument("--scale", default="tiny",
                         choices=[s.value for s in Scale])
    p_chaos.add_argument("--jobs", "-j", type=int, default=2)
    p_chaos.add_argument("--isolation", default="process",
                         choices=("process", "inline"),
                         help="inline disables worker-side sabotage "
                              "(kill/stall/poison) but keeps ledger "
                              "and driver faults")
    p_chaos.add_argument("--timeout-s", type=float, default=60.0,
                         dest="timeout_s")
    p_chaos.add_argument("--stall-s", type=float, default=None,
                         dest="stall_s",
                         help="injected stall duration (default: "
                              "plan default; must exceed --timeout-s "
                              "for the watchdog to fire)")
    p_chaos.add_argument("--failure-budget", type=float, default=None,
                         dest="failure_budget")
    p_chaos.add_argument("--workdir", default=None,
                         help="keep the campaign ledgers here "
                              "(default: temp dir, removed)")
    p_chaos.add_argument("--json-out", default=None, dest="json_out",
                         metavar="PATH",
                         help="write the invariant report as JSON")

    p_ledger = sub.add_parser(
        "ledger", help="ledger maintenance: verify integrity, repair "
                       "(quarantine bad lines), compact (collapse "
                       "superseded records)"
    )
    p_ledger.add_argument("action",
                          choices=("verify", "repair", "compact"))
    p_ledger.add_argument("path", metavar="LEDGER",
                          help="JSONL ledger written by sweep --ledger")
    p_ledger.add_argument("--json", action="store_true",
                          help="emit the verify audit as JSON")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzz campaign: seeded programs cross-"
             "checked across interpreter, engines, and static bounds",
    )
    p_fuzz.add_argument("--seeds", type=int, default=100, metavar="N",
                        help="number of seeds to fuzz (default 100)")
    p_fuzz.add_argument("--start", type=int, default=0, metavar="SEED",
                        help="first seed (default 0)")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="write minimized repro cases to this "
                             "directory")
    p_fuzz.add_argument("--minimize", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="delta-debug divergent programs to "
                             "minimal repros (default: on)")
    p_fuzz.add_argument("--defect", default=None,
                        help="seed an intentional harness-boundary "
                             "engine defect (off-by-one, "
                             "dropped-output, sign-flip) to prove the "
                             "harness catches it")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the campaign report as JSON")

    p_bench = sub.add_parser(
        "bench-summary",
        help="one-screen summary of every BENCH_*.json benchmark "
             "artifact (repo root and benchmarks/results)",
    )
    p_bench.add_argument("--root", default=".",
                         help="directory to scan (default: cwd)")
    p_bench.add_argument("--baseline", default=None, metavar="DIR",
                         help="compare each BENCH_*.json against the "
                              "same-named file in this directory; "
                              "judged metrics moving the wrong way "
                              "beyond --tolerance are flagged as "
                              "regressions")
    p_bench.add_argument("--tolerance", type=float, default=0.10,
                         metavar="FRAC",
                         help="relative drift allowed before a "
                              "baseline metric is flagged "
                              "(default 0.10)")
    p_bench.add_argument("--strict", action="store_true",
                         help="exit non-zero on any bad benchmark "
                              "file or baseline regression (default: "
                              "report and continue)")

    p_surr = sub.add_parser(
        "surrogate",
        help="surrogate model tooling: exact-vs-predicted calibration "
             "over a sweep ledger",
    )
    p_surr.add_argument("action", choices=("report",))
    p_surr.add_argument("ledger", metavar="LEDGER",
                        help="JSONL ledger written by sweep --ledger")
    p_surr.add_argument("--holdout", type=float, default=0.25,
                        help="held-out fraction for calibration "
                             "(default 0.25)")
    p_surr.add_argument("--coverage", type=float, default=0.9,
                        help="target interval coverage (default 0.9)")
    p_surr.add_argument("--seed", type=int, default=0,
                        help="seed for the deterministic split/fit")
    p_surr.add_argument("--json", action="store_true",
                        help="emit the calibration report as JSON")

    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "area": cmd_area,
    "designs": cmd_designs,
    "sweep": cmd_sweep,
    "analyze": cmd_analyze,
    "lint": cmd_lint,
    "trace": cmd_trace,
    "stats": cmd_stats,
    "report": cmd_report,
    "characterize": cmd_characterize,
    "tune": cmd_tune,
    "chaos": cmd_chaos,
    "ledger": cmd_ledger,
    "fuzz": cmd_fuzz,
    "bench-summary": cmd_bench_summary,
    "surrogate": cmd_surrogate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:  # piping into head etc. is fine
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
