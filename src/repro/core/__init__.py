"""Public API of the WaveScalar reproduction.

Most users need only::

    from repro.core import WaveScalarConfig, WaveScalarProcessor

    proc = WaveScalarProcessor(WaveScalarConfig(clusters=4))
    result = proc.run(graph)
    print(result.aipc, result.area_mm2)
"""

from .config import BASELINE, WaveScalarConfig
from .processor import WaveScalarProcessor
from .results import SimulationResult, SweepResult

__all__ = [
    "BASELINE",
    "WaveScalarConfig",
    "WaveScalarProcessor",
    "SimulationResult",
    "SweepResult",
]
