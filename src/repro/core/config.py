"""WaveScalar processor configuration.

:class:`WaveScalarConfig` captures the seven area-model parameters of
Table 3 plus the fixed microarchitectural constants of Table 1.  The
same object parameterises the area model (:mod:`repro.area`), placement
(:mod:`repro.place`) and the cycle-level simulator (:mod:`repro.sim`),
so one configuration means one processor everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WaveScalarConfig:
    """One point in the WaveScalar design space.

    The first seven fields are the area-model parameters (paper
    Table 3); the remainder are microarchitectural constants from
    Table 1 and Section 3, exposed so the ablation studies in
    Section 3.2/3.3 can be reproduced.
    """

    # ------------------------------------------------------------------
    # Table 3 design-space parameters
    # ------------------------------------------------------------------
    clusters: int = 1
    domains_per_cluster: int = 4
    pes_per_domain: int = 8
    virtualization: int = 128  # V: instruction-store slots per PE
    matching_entries: int = 128  # M: matching-table rows per PE
    l1_kb: int = 32  # per cluster
    l2_mb: int = 0  # total, 0 = no L2

    # ------------------------------------------------------------------
    # Matching table microarchitecture (Section 3.2)
    # ------------------------------------------------------------------
    matching_associativity: int = 2
    matching_banks: int = 4
    matching_hash_k: int = 4  # k in the tuned hash I*k + (w mod k)
    overflow_penalty: int = 40  # cycles for an evicted token round trip
    istore_miss_penalty: int = 120  # ~3x a matching miss (Section 4.2)

    # ------------------------------------------------------------------
    # Pipeline & pod behaviour (Section 3.2)
    # ------------------------------------------------------------------
    pods_enabled: bool = True  # pairs of PEs snoop bypass networks
    speculative_fire: bool = True  # back-to-back dependent dispatch
    match_to_dispatch_delay: int = 2  # MATCH + scheduling-queue cycles
    output_queue_entries: int = 4

    # ------------------------------------------------------------------
    # Interconnect latencies (Table 1)
    # ------------------------------------------------------------------
    pod_latency: int = 1
    domain_latency: int = 5
    cluster_latency: int = 9
    intercluster_base: int = 9  # + cluster (hop) distance
    mesh_bandwidth: int = 2  # operands per cycle per port
    mesh_queue_entries: int = 8
    net_pe_bandwidth: int = 1  # operands/cycle a NET pseudo-PE injects

    # ------------------------------------------------------------------
    # Memory system (Section 3.3)
    # ------------------------------------------------------------------
    storebuffer_waves: int = 4
    partial_store_queues: int = 2
    psq_entries: int = 4
    storebuffer_latency: int = 2  # pipelined processing (3 stages, 2 busy)
    l1_associativity: int = 4
    line_bytes: int = 128
    l1_hit_latency: int = 3  # 2 SRAM + 1 processing
    l1_ports: int = 4  # accesses per cycle
    l2_base_latency: int = 20  # 20..30 depending on distance
    l2_max_latency: int = 30
    dram_latency: int = 200

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def pes_per_cluster(self) -> int:
        return self.domains_per_cluster * self.pes_per_domain

    @property
    def total_pes(self) -> int:
        return self.clusters * self.pes_per_cluster

    @property
    def total_instruction_capacity(self) -> int:
        """Static instructions the whole processor can hold."""
        return self.total_pes * self.virtualization

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Mesh layout (cols, rows) of the cluster grid, near-square."""
        cols = int(math.ceil(math.sqrt(self.clusters)))
        rows = int(math.ceil(self.clusters / cols))
        return cols, rows

    def cluster_xy(self, cluster: int) -> tuple[int, int]:
        cols, _ = self.grid_shape
        return cluster % cols, cluster // cols

    def cluster_distance(self, a: int, b: int) -> int:
        """Manhattan hop distance between two clusters."""
        ax, ay = self.cluster_xy(a)
        bx, by = self.cluster_xy(b)
        return abs(ax - bx) + abs(ay - by)

    @property
    def l1_lines(self) -> int:
        return (self.l1_kb * 1024) // self.line_bytes

    @property
    def l1_sets(self) -> int:
        return max(1, self.l1_lines // self.l1_associativity)

    @property
    def l2_lines(self) -> int:
        return (self.l2_mb * 1024 * 1024) // self.line_bytes

    @property
    def line_words(self) -> int:
        return self.line_bytes // 8

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ValueError("need at least one cluster")
        if not 1 <= self.domains_per_cluster <= 4:
            raise ValueError("domains per cluster must be 1..4 (RTL limit)")
        if not 1 <= self.pes_per_domain <= 8:
            raise ValueError("PEs per domain must be 1..8 (RTL limit)")
        if self.pes_per_domain % 2 and self.pods_enabled \
                and self.pes_per_domain > 1:
            raise ValueError("pods require an even number of PEs per domain")
        if self.virtualization < 1 or self.matching_entries < 1:
            raise ValueError("V and M must be positive")
        if self.matching_associativity < 1:
            raise ValueError("associativity must be positive")
        if self.matching_entries % self.matching_associativity:
            raise ValueError("M must be a multiple of the associativity")
        if self.l1_kb < 1:
            raise ValueError("L1 must be at least 1KB")
        if self.l2_mb < 0:
            raise ValueError("L2 size cannot be negative")

    def scaled(self, clusters: int) -> "WaveScalarConfig":
        """The same tile replicated into a different cluster count
        (the naive-scaling experiment of Section 4.2/Figure 7)."""
        return replace(self, clusters=clusters)

    def describe(self) -> str:
        """Compact one-line identity used in tables and logs."""
        return (
            f"C{self.clusters}xD{self.domains_per_cluster}"
            f"xP{self.pes_per_domain} V{self.virtualization} "
            f"M{self.matching_entries} L1:{self.l1_kb}KB L2:{self.l2_mb}MB"
        )


#: The baseline processor of paper Table 1 / Table 2.
BASELINE = WaveScalarConfig(
    clusters=1,
    domains_per_cluster=4,
    pes_per_domain=8,
    virtualization=128,
    matching_entries=128,
    l1_kb=32,
    l2_mb=0,
)
