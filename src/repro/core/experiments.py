"""Experiment drivers: one entry point per table/figure of the paper.

Each function here regenerates one piece of the evaluation (Section 4)
and is called by the corresponding benchmark in ``benchmarks/`` and by
the example scripts.  Results are memoised per process because the
Pareto analysis and the scaling study share many (config, workload)
evaluations.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..design.pareto import ParetoPoint, frontier_rows, pareto_front
from ..design.scaling import ScalingStudy, run_scaling_study
from ..design.space import DesignPoint, viable_designs
from ..design.virtualization import (
    TuningResult,
    tune_application,
)
from ..sim.failures import SimulationDeadlock
from ..workloads.base import Scale, Workload
from ..workloads.registry import SPLASH_NAMES, get
from .config import WaveScalarConfig
from .processor import WaveScalarProcessor
from .results import SimulationResult

logger = logging.getLogger("repro.harness")

#: Thread counts tried for each Splash2 run; the best is reported
#: (Section 4.2: "we ran each application with a range of thread
#: counts ... and report results for the best-performing thread
#: count").
THREAD_CANDIDATES = (1, 2, 4, 8, 16, 32, 64)

#: Memoised verdicts: key -> (True, result) or (False, failure).  The
#: key includes the cycle/event budgets -- a deadlock verdict (or a
#: completed run) observed under a small budget must never be reused
#: for a request with a larger one -- and negative results are cached
#: explicitly so a known-failing cell is not re-simulated either.
_CACHE: dict[tuple, tuple[bool, object]] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_cached(
    config: WaveScalarConfig,
    workload_name: str,
    scale: Scale = Scale.SMALL,
    threads: Optional[int] = None,
    k: Optional[int] = None,
    seed: int = 0,
    max_cycles: int = 20_000_000,
    max_events: int = 200_000_000,
) -> SimulationResult:
    """Memoised workload execution (architectural check included)."""
    key = (config, workload_name, scale, threads, k, seed,
           max_cycles, max_events)
    hit = _CACHE.get(key)
    if hit is not None:
        ok, payload = hit
        if not ok:
            raise payload
        return payload
    workload = get(workload_name)
    proc = WaveScalarProcessor(
        config, max_cycles=max_cycles, max_events=max_events
    )
    try:
        result = proc.run_workload(
            workload, scale=scale, threads=threads, k=k, seed=seed
        )
    except SimulationDeadlock as exc:
        _CACHE[key] = (False, exc)
        raise
    _CACHE[key] = (True, result)
    return result


# ----------------------------------------------------------------------
# Thread-count selection (Splash2)
# ----------------------------------------------------------------------
def feasible_thread_counts(
    workload: Workload, scale: Scale,
    candidates: Sequence[int] = THREAD_CANDIDATES,
) -> list[int]:
    """Thread counts the kernel's problem size admits."""
    feasible = []
    for threads in candidates:
        try:
            workload.instantiate(scale=scale, threads=threads)
        except ValueError:
            continue
        feasible.append(threads)
    return feasible


def best_threaded_result(
    config: WaveScalarConfig,
    workload_name: str,
    scale: Scale = Scale.SMALL,
    candidates: Sequence[int] = THREAD_CANDIDATES,
    max_cycles: int = 20_000_000,
    max_events: int = 200_000_000,
) -> SimulationResult:
    """The best-AIPC thread count for one workload on one config."""
    workload = get(workload_name)
    best: SimulationResult | None = None
    feasible = feasible_thread_counts(workload, scale, candidates)
    for index, threads in enumerate(feasible):
        try:
            result = run_cached(
                config, workload_name, scale, threads=threads,
                max_cycles=max_cycles, max_events=max_events,
            )
        except SimulationDeadlock:
            if best is None and index == len(feasible) - 1:
                raise  # every thread count crawled; surface it
            # More threads only add pressure on a configuration that
            # is already over budget; stop probing upward.
            break
        if best is None or result.aipc > best.aipc:
            best = result
    if best is None:
        raise SimulationDeadlock(
            f"{workload_name}: every thread count exceeded the cycle "
            f"budget on {config.describe()}"
        )
    return best


# ----------------------------------------------------------------------
# Suite-level evaluation (Figures 6 and 7 and Table 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadFailure:
    """One workload that scored zero on one configuration, and why."""

    workload: str
    failure_class: str
    max_cycles: int
    max_events: int
    detail: str = ""

    def render(self) -> str:
        return (
            f"{self.workload}: {self.failure_class} under "
            f"{self.max_cycles} cycles / {self.max_events} events"
            + (f" -- {self.detail}" if self.detail else "")
        )


class SuiteMean(float):
    """A mean-AIPC value that also carries per-workload failure
    reports.  Behaves exactly like ``float`` in arithmetic and
    comparisons, so existing callers are unaffected; auditing code
    reads ``.failures`` to see which workloads scored zero and why."""

    failures: tuple[WorkloadFailure, ...]

    def __new__(cls, value: float, failures: Sequence[WorkloadFailure] = ()):
        obj = super().__new__(cls, value)
        obj.failures = tuple(failures)
        return obj


def suite_mean_aipc(
    config: WaveScalarConfig,
    names: Sequence[str],
    scale: Scale = Scale.SMALL,
    threaded: bool = False,
    candidates: Sequence[int] = THREAD_CANDIDATES,
    sweep_max_cycles: int = 5_000_000,
    sweep_max_events: int = 1_000_000,
) -> SuiteMean:
    """Average AIPC of a workload group on one configuration.

    A run that exceeds ``sweep_max_cycles`` (a pathologically starved
    configuration crawling through matching-table thrash) scores 0 --
    such designs are dominated by construction and the paper's
    analysis would discard them the same way.  Unlike the old silent
    ``pass``, every zero-scored workload is recorded on the returned
    :class:`SuiteMean` and logged, so discarded designs stay auditable.
    """
    total = 0.0
    failures: list[WorkloadFailure] = []
    for name in names:
        try:
            if threaded:
                result = best_threaded_result(
                    config, name, scale, candidates,
                    max_cycles=sweep_max_cycles,
                    max_events=sweep_max_events,
                )
            else:
                result = run_cached(
                    config, name, scale, max_cycles=sweep_max_cycles,
                    max_events=sweep_max_events,
                )
            total += result.aipc
        except SimulationDeadlock as exc:
            detail = str(exc).splitlines()[0] if str(exc) else ""
            failure = WorkloadFailure(
                workload=name,
                failure_class=type(exc).__name__,
                max_cycles=sweep_max_cycles,
                max_events=sweep_max_events,
                detail=detail,
            )
            failures.append(failure)
            logger.warning(
                "%s scored 0 on %s: %s", name, config.describe(),
                failure.render(),
            )
    return SuiteMean(total / len(names), failures)


def evaluate_design_space(
    designs: Iterable[DesignPoint],
    names: Sequence[str],
    scale: Scale = Scale.SMALL,
    threaded: bool = False,
    candidates: Sequence[int] = THREAD_CANDIDATES,
    *,
    ledger_path=None,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    isolation: str = "process",
    jobs: Optional[int] = 1,
) -> list[ParetoPoint]:
    """AIPC-vs-area points for a suite over a set of designs.

    With ``ledger_path``/``resume`` -- or ``jobs`` other than 1 -- the
    evaluation routes through the fault-tolerant harness
    (:func:`repro.harness.sweep.design_space_sweep`): every cell runs
    supervised, is checkpointed to the JSONL ledger, and an
    interrupted campaign resumes without re-simulating finished
    cells.  ``jobs=N`` fans independent ``(design, workload)`` lanes
    out over N worker processes (``None``/``0`` = one per core); the
    returned points are identical for every ``jobs`` value.  The
    default path stays in-process and memoised.
    """
    if ledger_path is not None or resume or jobs != 1:
        from ..harness.sweep import design_space_sweep

        points, _report = design_space_sweep(
            list(designs), names, scale=scale, threaded=threaded,
            candidates=candidates, ledger_path=ledger_path,
            resume=resume, timeout_s=timeout_s, isolation=isolation,
            jobs=jobs,
        )
        return points
    points = []
    for design in designs:
        aipc = suite_mean_aipc(
            design.config, names, scale, threaded, candidates
        )
        points.append(
            ParetoPoint(
                label=design.config.describe(),
                area=design.area_mm2,
                performance=float(aipc),
                payload=design.config,
            )
        )
    return points


def pareto_table(
    points: Sequence[ParetoPoint],
) -> str:
    """Render Table 5-style frontier rows as text."""
    lines = [
        f"{'id':>3} {'configuration':<42} {'area':>7} {'AIPC':>6} "
        f"{'dA%':>6} {'dAIPC%':>7}"
    ]
    for i, row in enumerate(frontier_rows(points), start=1):
        da = f"{row.area_increase * 100:.1f}%" if row.area_increase is not \
            None else "na"
        dp = f"{row.perf_increase * 100:.1f}%" if row.perf_increase is not \
            None else "na"
        lines.append(
            f"{i:>3} {row.point.label:<42} {row.point.area:>7.0f} "
            f"{row.point.performance:>6.2f} {da:>6} {dp:>7}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 4: matching-table tuning
# ----------------------------------------------------------------------
def tuning_config(
    k: int,
    matching_entries: int,
    pes: int = 2,
    base: Optional[WaveScalarConfig] = None,
) -> WaveScalarConfig:
    """The tuning testbed: V=256 with a variable matching table.

    The testbed uses the smallest domain that *fits* the program
    (``pes`` PEs) so each PE's instruction store fills toward its 256
    slots, recreating the per-PE matching pressure the paper tunes
    against -- our kernels are far smaller than Spec binaries, so on a
    full cluster every PE would hold a handful of instructions and no
    over-subscription would ever bind.
    """
    base = base or WaveScalarConfig(
        clusters=1, domains_per_cluster=1,
        pes_per_domain=max(2, min(8, pes)),
        virtualization=256, l1_kb=32, l2_mb=1,
    )
    entries = min(matching_entries, 1 << 14)
    entries -= entries % base.matching_associativity
    return replace(
        base,
        matching_entries=max(base.matching_associativity, entries),
        matching_hash_k=max(1, k),
    )


def tune_workload(
    workload_name: str,
    scale: Scale = Scale.TINY,
    threads: Optional[int] = None,
) -> TuningResult:
    """One Table 4 row: sweep k against an (effectively) infinite
    matching table, then oversubscribe to find u_opt."""
    workload = get(workload_name)
    kwargs = {"threads": threads} if workload.multithreaded else {}
    static_size = len(workload.instantiate(scale=scale, threads=threads))
    pes = -(-static_size // 256)  # smallest PE count that fits at V=256
    pes += pes % 2  # pods need pairs

    def evaluate(k: int, matching_entries: int) -> float:
        config = tuning_config(k, matching_entries, pes=pes)
        try:
            result = run_cached(
                config, workload_name, scale, k=k, max_cycles=3_000_000,
                max_events=5_000_000, **kwargs,
            )
        except SimulationDeadlock:
            # Pathological over-subscription thrashes so hard the run
            # exceeds its cycle budget; the paper's sweep stops at a
            # "significant decrease" -- score it as one.
            return 0.0
        return result.aipc

    return tune_application(workload_name, evaluate, v=256)


# ----------------------------------------------------------------------
# Figure 7: the scaling study
# ----------------------------------------------------------------------
def scaling_study(
    scale: Scale = Scale.SMALL,
    names: Sequence[str] = SPLASH_NAMES,
    designs: Optional[Sequence[DesignPoint]] = None,
    *,
    ledger_path=None,
    resume: bool = False,
    jobs: Optional[int] = 1,
) -> tuple[ScalingStudy, dict[str, float]]:
    """Reproduce the a/b/c/d/e analysis; returns the study plus the
    measured AIPC of each named design.  ``ledger_path``/``resume``
    checkpoint the design-space pass through the sweep harness;
    ``jobs`` parallelises it."""
    designs = list(designs) if designs is not None else viable_designs()
    points = evaluate_design_space(
        designs, names, scale, threaded=True,
        ledger_path=ledger_path, resume=resume, jobs=jobs,
    )

    def perf_of(config: WaveScalarConfig) -> float:
        return suite_mean_aipc(config, names, scale, threaded=True)

    study = run_scaling_study(points, perf_of)
    measured = {
        "a": study.a.performance,
        "b": perf_of(study.b.config),
        "c": study.c.performance,
        "d": perf_of(study.d.config),
        "e": study.e.performance,
        "e16": perf_of(study.e16.config),
    }
    return study, measured


# ----------------------------------------------------------------------
# Figure 8: traffic distribution
# ----------------------------------------------------------------------
def traffic_profile(
    config: WaveScalarConfig,
    names: Sequence[str],
    scale: Scale = Scale.SMALL,
    threaded: bool = False,
) -> dict[str, float]:
    """Aggregate message distribution over a suite (Figure 8 bars)."""
    totals = {"pod": 0, "domain": 0, "cluster": 0, "grid": 0,
              "operand": 0, "memory": 0}
    grand = 0
    for name in names:
        if threaded:
            result = best_threaded_result(config, name, scale)
        else:
            result = run_cached(config, name, scale)
        for kind, per_level in result.stats.messages.items():
            for level, count in per_level.items():
                totals[level] += count
                totals[kind] += count
                grand += count
    if grand == 0:
        return {k: 0.0 for k in totals}
    return {k: v / grand for k, v in totals.items()}
