"""The top-level WaveScalar processor object.

This is the API most users touch::

    from repro.core import WaveScalarConfig, WaveScalarProcessor
    from repro.workloads import get, Scale

    proc = WaveScalarProcessor(WaveScalarConfig(clusters=4, l2_mb=1))
    result = proc.run_workload(get("fft"), scale=Scale.SMALL, threads=8)
    print(result.aipc, result.area_mm2)
"""

from __future__ import annotations

from typing import Optional

from ..area.model import breakdown
from ..area.timing import timing_report
from ..isa.graph import DataflowGraph
from ..lang.kbound import set_k_bound
from ..place.placement import Placement
from ..place.snake import place
from ..sim.backends import (
    DEFAULT_BACKEND,
    batch_unsupported_reason,
    validate_backend,
)
from ..sim.engine import Engine
from ..workloads.base import Scale, Workload
from .config import WaveScalarConfig
from .results import SimulationResult


class WaveScalarProcessor:
    """A configured WaveScalar processor that can execute programs.

    ``backend`` selects the engine driving :meth:`run` (see
    :mod:`repro.sim.backends`): ``plain`` (default), ``profiled``
    (auto-attaches a :class:`~repro.obs.PhaseProfile` when the caller
    did not pass one), or ``batched`` (the lockstep backend at width 1
    -- single runs gain nothing from it, but the selection point keeps
    all three engines interchangeable end to end).  Every backend is
    bit-identical on simulated results; a cell the batched backend
    cannot take (fault plan, trace, sanitizer, profile attached) falls
    back to ``plain``, recorded on :attr:`last_backend_fallback`.
    """

    def __init__(
        self,
        config: WaveScalarConfig,
        max_cycles: int = 20_000_000,
        max_events: int = 200_000_000,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.config = config
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.backend = validate_backend(backend)
        #: Why the last :meth:`run` under ``backend="batched"`` fell
        #: back to the plain engine (``None``: no fallback happened).
        self.last_backend_fallback: Optional[str] = None
        self._area = breakdown(config)
        self._timing = timing_report(config)

    # ------------------------------------------------------------------
    @property
    def area_mm2(self) -> float:
        return self._area.total

    @property
    def frequency_ghz(self) -> float:
        return self._timing.frequency_ghz

    def describe(self) -> str:
        return (
            f"{self.config.describe()} -- {self.area_mm2:.0f} mm2 @ "
            f"{self.frequency_ghz:.2f} GHz ({self._timing.cycle_fo4:.0f} FO4)"
        )

    # ------------------------------------------------------------------
    def place(self, graph: DataflowGraph) -> Placement:
        """Bind a program's instructions to this processor's PEs."""
        return place(graph, self.config)

    def run(
        self,
        graph: DataflowGraph,
        placement: Optional[Placement] = None,
        k: Optional[int] = None,
        strict: bool = True,
        threads: Optional[int] = None,
        faults=None,
        sanitizer=None,
        trace=None,
        profile=None,
        compiled=None,
    ) -> SimulationResult:
        """Execute ``graph`` and return the full result bundle.

        ``k`` rebinds every loop's k-loop bound before execution
        (Table 4 tuning); ``strict`` raises on deadlock rather than
        returning a partial result; ``faults`` attaches a
        :class:`~repro.harness.faults.FaultPlan` for deterministic
        fault injection (harness testing); ``sanitizer`` attaches a
        :class:`~repro.analysis.RuntimeSanitizer` that audits token
        conservation, matching-table leaks, and queue bounds (query it
        after the run -- pair with ``strict=False`` to collect
        violations instead of raising on deadlock); ``trace`` attaches
        a :class:`~repro.sim.trace.Trace` recording pipeline events
        (export with ``trace.to_chrome(path)``); ``profile`` attaches
        a :class:`~repro.obs.PhaseProfile` attributing hot-loop time
        to pipeline phases; ``compiled`` passes the graph's pre-built
        :class:`~repro.sim.compile.CompiledGraph` decode straight to
        the engine (it must belong to ``graph``, so it cannot be
        combined with ``k`` rebinding, which derives a new graph).
        """
        if k is not None:
            graph = set_k_bound(graph, k)
        if placement is None:
            placement = self.place(graph)
        if self.backend == "profiled" and profile is None:
            from ..obs import PhaseProfile

            profile = PhaseProfile()
        engine = Engine(
            graph, self.config, placement, max_cycles=self.max_cycles,
            max_events=self.max_events, compiled=compiled,
        )
        if faults is not None:
            engine.faults = faults
        if sanitizer is not None:
            engine.sanitizer = sanitizer
        if trace is not None:
            engine.trace = trace
        if profile is not None:
            engine.profile = profile
        self.last_backend_fallback = None
        if self.backend == "batched":
            self.last_backend_fallback = batch_unsupported_reason(
                faults=faults, trace=trace, sanitizer=sanitizer,
                profile=profile,
            )
        if self.backend == "batched" and self.last_backend_fallback is None:
            from ..sim.batched import BatchedEngine

            outcome = BatchedEngine([engine]).run(strict=strict)[0]
            if not outcome.ok:
                raise outcome.error
            stats = outcome.stats
        else:
            stats = engine.run(strict=strict)
        return SimulationResult(
            program=graph.name,
            config=self.config,
            stats=stats,
            area=self._area,
            timing=self._timing,
            threads=threads,
        )

    def run_workload(
        self,
        workload: Workload,
        scale: Scale = Scale.SMALL,
        threads: Optional[int] = None,
        k: Optional[int] = None,
        seed: int = 0,
        check: bool = True,
        faults=None,
        sanitizer=None,
        strict: bool = True,
        trace=None,
        profile=None,
    ) -> SimulationResult:
        """Instantiate and execute one registry workload.

        With ``check`` (default) the architectural outputs are compared
        against the workload's pure-Python reference; a mismatch raises
        ``AssertionError`` -- a simulator correctness bug, never a
        performance matter.  An active ``faults`` plan skips the check:
        injected faults corrupt outputs by design.  ``sanitizer``,
        ``strict``, ``trace``, and ``profile`` pass through to
        :meth:`run`.
        """
        graph = workload.instantiate(
            scale=scale, threads=threads, k=k, seed=seed
        )
        result = self.run(
            graph, threads=threads, faults=faults, sanitizer=sanitizer,
            strict=strict, trace=trace, profile=profile,
        )
        if faults is not None:
            check = False
        if check:
            expected = workload.expected(
                scale=scale, threads=threads, seed=seed
            )
            got = result.outputs()
            if got != expected:
                raise AssertionError(
                    f"{workload.name}: simulator output {got!r} != "
                    f"reference {expected!r}"
                )
        return result

    def run_compiled(
        self,
        compiled,
        check: bool = True,
        faults=None,
        sanitizer=None,
        strict: bool = True,
        trace=None,
        profile=None,
    ) -> SimulationResult:
        """Execute a pre-built :class:`~repro.sim.compile
        .CompiledWorkload` (typically served by
        :func:`~repro.sim.compile.get_compiled`).

        The graph and its flat decode come straight from ``compiled``,
        so repeat runs of the same cell -- budget-escalation retries,
        sweep repetitions, forked attempt subprocesses -- skip the
        instantiate/decode work entirely.  The thread count and k
        bound are part of the compile key, already baked into the
        graph.  Output checking compares against the workload's
        memoised reference outputs, exactly as :meth:`run_workload`
        does (and is likewise skipped under an active fault plan).
        """
        result = self.run(
            compiled.graph, threads=compiled.threads, faults=faults,
            sanitizer=sanitizer, strict=strict, trace=trace,
            profile=profile, compiled=compiled.decoded,
        )
        if faults is not None:
            check = False
        if check:
            expected = compiled.expected_outputs()
            got = result.outputs()
            if got != expected:
                raise AssertionError(
                    f"{compiled.name}: simulator output {got!r} != "
                    f"reference {expected!r}"
                )
        return result
