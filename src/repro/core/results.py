"""Simulation results as returned by the public API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..area.model import AreaBreakdown
from ..area.timing import TimingReport
from ..sim.stats import SimStats
from .config import WaveScalarConfig


@dataclass(frozen=True)
class SimulationResult:
    """One program executed on one configuration.

    Bundles the raw microarchitectural statistics with the area and
    timing models so a caller has everything the paper's evaluation
    plots in one object.
    """

    program: str
    config: WaveScalarConfig
    stats: SimStats
    area: AreaBreakdown
    timing: TimingReport
    threads: Optional[int] = None

    # -- headline metrics ----------------------------------------------
    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def aipc(self) -> float:
        """Alpha-equivalent instructions per cycle (paper's metric)."""
        return self.stats.aipc

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def area_mm2(self) -> float:
        return self.area.total

    @property
    def aipc_per_mm2(self) -> float:
        return self.aipc / self.area_mm2 if self.area_mm2 else 0.0

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock time at the configuration's 20 FO4 clock."""
        return self.cycles * self.timing.cycle_ps * 1e-12

    def outputs(self) -> list:
        return self.stats.output_values()

    def summary(self) -> str:
        return (
            f"{self.program} on {self.config.describe()}"
            f"{f' x{self.threads}thr' if self.threads else ''}: "
            f"{self.stats.summary()} area={self.area_mm2:.0f}mm2"
        )


@dataclass
class SweepResult:
    """A (workload x configuration) result matrix from a sweep."""

    results: list[SimulationResult] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        self.results.append(result)

    def for_program(self, program: str) -> list[SimulationResult]:
        return [r for r in self.results if r.program == program]

    def for_config(self, config: WaveScalarConfig) -> list[SimulationResult]:
        return [r for r in self.results if r.config == config]

    def mean_aipc_by_config(self) -> dict[WaveScalarConfig, float]:
        """Average AIPC per configuration over all programs (the
        paper's per-suite 'Avg. AIPC')."""
        groups: dict[WaveScalarConfig, list[float]] = {}
        for r in self.results:
            groups.setdefault(r.config, []).append(r.aipc)
        return {c: sum(v) / len(v) for c, v in groups.items()}

    def __len__(self) -> int:
        return len(self.results)
