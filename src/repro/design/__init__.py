"""Design-space exploration: enumeration, pruning, Pareto analysis,
matching-table tuning, and the tile-scaling study (Section 4.2)."""

from .export import diff_points, dump_points, load_points
from .pareto import (
    FrontierRow,
    ParetoPoint,
    best_performance_per_area,
    evaluate_points,
    frontier_rows,
    is_dominated,
    pareto_front,
)
from .scaling import ScaledDesign, ScalingStudy, replicate, run_scaling_study
from .sensitivity import (
    DEFAULT_AXES,
    SensitivityAxis,
    SensitivityPoint,
    render as render_sensitivity,
    sweep as sensitivity_sweep,
)
from .space import (
    DesignPoint,
    MIN_CAPACITY,
    balanced_designs,
    enumerate_raw,
    is_balanced,
    matches_ratio,
    prune,
    raw_design_count,
    viable_designs,
)
from .virtualization import (
    INFINITE_MATCHING,
    TuningResult,
    find_k_opt,
    find_u_opt,
    matching_entries_for,
    processor_ratio,
    tune_application,
)

__all__ = [
    "FrontierRow",
    "diff_points",
    "dump_points",
    "load_points",
    "ParetoPoint",
    "best_performance_per_area",
    "evaluate_points",
    "frontier_rows",
    "is_dominated",
    "pareto_front",
    "ScaledDesign",
    "DEFAULT_AXES",
    "SensitivityAxis",
    "SensitivityPoint",
    "render_sensitivity",
    "sensitivity_sweep",
    "ScalingStudy",
    "replicate",
    "run_scaling_study",
    "DesignPoint",
    "MIN_CAPACITY",
    "balanced_designs",
    "enumerate_raw",
    "is_balanced",
    "matches_ratio",
    "prune",
    "raw_design_count",
    "viable_designs",
    "INFINITE_MATCHING",
    "TuningResult",
    "find_k_opt",
    "find_u_opt",
    "matching_entries_for",
    "processor_ratio",
    "tune_application",
]
