"""Saving and loading design-space evaluations.

Pareto sweeps are the expensive part of the study; this module
serialises evaluated points to JSON so a sweep can be archived,
diffed against a later run, or re-plotted without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Sequence

from ..core.config import WaveScalarConfig
from .pareto import ParetoPoint

#: Format version; bump on breaking layout changes.
FORMAT = 1


def _config_to_dict(config: WaveScalarConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_dict(data: dict) -> WaveScalarConfig:
    return WaveScalarConfig(**data)


def dump_points(
    points: Sequence[ParetoPoint],
    path: str | Path,
    metadata: dict | None = None,
) -> None:
    """Write evaluated points (with their configurations) to JSON."""
    payload = {
        "format": FORMAT,
        "metadata": metadata or {},
        "points": [
            {
                "label": p.label,
                "area_mm2": p.area,
                "performance": p.performance,
                "config": _config_to_dict(p.payload)
                if isinstance(p.payload, WaveScalarConfig)
                else None,
            }
            for p in points
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_points(path: str | Path) -> tuple[list[ParetoPoint], dict]:
    """Read points back; returns (points, metadata)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unsupported sweep format {payload.get('format')!r} "
            f"(expected {FORMAT})"
        )
    points = []
    for entry in payload["points"]:
        config = (
            _config_from_dict(entry["config"])
            if entry.get("config") is not None
            else None
        )
        points.append(
            ParetoPoint(
                label=entry["label"],
                area=entry["area_mm2"],
                performance=entry["performance"],
                payload=config,
            )
        )
    return points, payload.get("metadata", {})


def diff_points(
    old: Sequence[ParetoPoint], new: Sequence[ParetoPoint],
    tolerance: float = 0.02,
) -> list[str]:
    """Human-readable performance differences between two sweeps of the
    same design set (matched by label)."""
    old_by_label = {p.label: p for p in old}
    lines = []
    for point in new:
        prev = old_by_label.get(point.label)
        if prev is None:
            lines.append(f"new point: {point.label}")
            continue
        if prev.performance == 0:
            continue
        change = point.performance / prev.performance - 1.0
        if abs(change) > tolerance:
            lines.append(
                f"{point.label}: {prev.performance:.3f} -> "
                f"{point.performance:.3f} ({change:+.1%})"
            )
    for label in old_by_label:
        if label not in {p.label for p in new}:
            lines.append(f"removed point: {label}")
    return lines
