"""Pareto-frontier extraction over (area, performance) points.

Used for Figures 6 and 7 and Table 5: a configuration is Pareto
optimal when no other configuration is both smaller *and* at least as
fast (the paper circles these points; "there are no configurations
that are smaller and achieve better performance").

Tie and degeneracy semantics (load-bearing for the surrogate-guided
sweep, which compares frontiers bit-for-bit across search strategies):

* **Equal area, different performance** -- only the fastest point at
  that area can be on the frontier.
* **Equal area *and* equal performance** -- exactly one point
  survives: the *earliest in input order* (Python's stable sort makes
  this deterministic).  Duplicate designs therefore never produce
  duplicate frontier rows, and which duplicate represents the pair is
  a pure function of the input sequence.
* **Non-finite coordinates** -- a NaN or infinite ``area`` /
  ``performance`` is rejected with :class:`ValueError` naming the
  offending point.  NaN comparisons are silently false, so admitting
  one would make "dominated" quietly non-transitive and the frontier
  order-dependent; failing loudly is the only sound behavior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design."""

    label: str
    area: float
    performance: float
    payload: object = None


def _require_finite(point: ParetoPoint) -> ParetoPoint:
    """Reject NaN/infinite coordinates with a clear error (see module
    docstring); returns the point so scans can validate inline."""
    if not (math.isfinite(point.area)
            and math.isfinite(point.performance)):
        raise ValueError(
            f"non-finite ParetoPoint {point.label!r}: "
            f"area={point.area!r}, performance={point.performance!r}"
        )
    return point


def is_dominated(point: ParetoPoint, others: Iterable[ParetoPoint]) -> bool:
    """True if some other point is no larger and no slower, and
    strictly better in at least one dimension.  An exact
    (area, performance) duplicate does NOT dominate -- neither point
    is strictly better; :func:`pareto_front` breaks that tie by input
    order instead."""
    _require_finite(point)
    for other in others:
        if other is point:
            continue
        _require_finite(other)
        if (
            other.area <= point.area
            and other.performance >= point.performance
            and (
                other.area < point.area
                or other.performance > point.performance
            )
        ):
            return True
    return False


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by ascending area (and
    strictly ascending performance).

    O(n log n): sweep by increasing area, keep points that improve the
    best performance seen so far.  Ties in area keep only the fastest;
    exact (area, performance) duplicates keep only the earliest in
    input order; non-finite coordinates raise :class:`ValueError`
    (module docstring has the full semantics).
    """
    ordered = sorted(
        (_require_finite(p) for p in points),
        key=lambda p: (p.area, -p.performance),
    )
    front: list[ParetoPoint] = []
    best = float("-inf")
    for point in ordered:
        if point.performance > best:
            front.append(point)
            best = point.performance
    return front


@dataclass(frozen=True)
class FrontierRow:
    """One row of a Table 5-style frontier report."""

    point: ParetoPoint
    area_increase: float | None  # vs previous frontier row
    perf_increase: float | None


def frontier_rows(points: Sequence[ParetoPoint]) -> list[FrontierRow]:
    """Table 5's incremental columns: area and AIPC increase over the
    previous Pareto-optimal configuration."""
    front = pareto_front(points)
    rows: list[FrontierRow] = []
    prev: ParetoPoint | None = None
    for point in front:
        if prev is None:
            rows.append(FrontierRow(point, None, None))
        else:
            rows.append(
                FrontierRow(
                    point,
                    point.area / prev.area - 1.0,
                    point.performance / prev.performance - 1.0
                    if prev.performance
                    else None,
                )
            )
        prev = point
    return rows


def best_performance_per_area(
    points: Sequence[ParetoPoint],
) -> ParetoPoint:
    """The design with the highest performance/area ratio (the paper's
    configuration 'c' criterion)."""
    if not points:
        raise ValueError("no points")
    return max(points, key=lambda p: (p.performance / p.area, -p.area))


def evaluate_points(
    items: Sequence[T],
    area_of: Callable[[T], float],
    perf_of: Callable[[T], float],
    label_of: Callable[[T], str],
) -> list[ParetoPoint]:
    """Adapter: evaluate arbitrary design objects into ParetoPoints."""
    return [
        ParetoPoint(
            label=label_of(item),
            area=area_of(item),
            performance=perf_of(item),
            payload=item,
        )
        for item in items
    ]
