"""Naive tile-replication analysis (Section 4.2, Figure 7).

The paper's "scalable design points" experiment: take a one-cluster
tile and replicate it 4x or 16x, then compare the result against the
true Pareto frontier.  The headline findings this module reproduces:

* replicating the best-*performing* one-cluster tile ('a') gives a
  four-cluster design ('b') far off the frontier,
* replicating the best *performance-per-area* tile ('c') lands nearly
  on the frontier ('d') at almost identical performance to 'b',
* but scaling 'c' to 16 clusters is again inefficient; a leaner tile
  ('e') wins -- the optimal tile varies with processor size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..area.model import chip_area
from ..core.config import WaveScalarConfig
from .pareto import ParetoPoint, best_performance_per_area, pareto_front


@dataclass(frozen=True)
class ScaledDesign:
    """A tile replicated to a larger cluster count."""

    base: WaveScalarConfig
    factor: int
    config: WaveScalarConfig
    area_mm2: float


def replicate(config: WaveScalarConfig, factor: int) -> ScaledDesign:
    """Replicate ``config``'s cluster tile ``factor`` times.

    The L2 is per-chip in the model, so naive replication scales it
    with the tile count as the paper does when scaling design 'a'
    (4 MB L2 x 4 clusters -> 16 MB).
    """
    scaled = replace(
        config,
        clusters=config.clusters * factor,
        l2_mb=config.l2_mb * factor,
    )
    return ScaledDesign(
        base=config,
        factor=factor,
        config=scaled,
        area_mm2=chip_area(scaled),
    )


@dataclass(frozen=True)
class ScalingStudy:
    """The five named configurations of Figure 7."""

    a: ParetoPoint  # best one-cluster performance (the "knee")
    b: ScaledDesign  # a x4: naive scaling, off-frontier
    c: ParetoPoint  # best one-cluster performance/area
    d: ScaledDesign  # c x4: near-frontier
    e: ParetoPoint  # smallest Pareto-optimal 4-cluster design
    e16: ScaledDesign  # e's tile x4 (16 clusters total)

    def efficiency(self, design: ScaledDesign, perf: float) -> float:
        return perf / design.area_mm2


def run_scaling_study(
    evaluated: Sequence[ParetoPoint],
    perf_of: Callable[[WaveScalarConfig], float],
) -> ScalingStudy:
    """Identify a/c/e among ``evaluated`` one- and four-cluster points
    and construct the replicated designs b/d/e16.

    ``evaluated`` must be ParetoPoints whose payloads are
    :class:`WaveScalarConfig`; ``perf_of`` evaluates a (possibly new)
    configuration, used for the replicated designs.
    """
    singles = [
        p for p in evaluated
        if isinstance(p.payload, WaveScalarConfig) and p.payload.clusters == 1
    ]
    quads = [
        p for p in evaluated
        if isinstance(p.payload, WaveScalarConfig) and p.payload.clusters == 4
    ]
    if not singles or not quads:
        raise ValueError("need evaluated 1- and 4-cluster configurations")

    # 'a' is the knee-top: the best-performing one-cluster design.
    # Performance plateaus across the knee (the paper's points between
    # 'c' and 'a' buy "minimal performance gains"), so ties within 2%
    # resolve toward the *largest* design -- the paper's 'a' is both
    # the fastest and the biggest single-cluster point.
    best_perf = max(p.performance for p in singles)
    knee = [p for p in singles if p.performance >= 0.98 * best_perf]
    a = max(knee, key=lambda p: (p.area, p.performance))
    c = best_performance_per_area(singles)
    quad_front = pareto_front(quads)
    e = quad_front[0]  # smallest Pareto-optimal 4-cluster design

    b = replicate(a.payload, 4)
    d = replicate(c.payload, 4)
    e16 = replicate(e.payload, 4)
    return ScalingStudy(a=a, b=b, c=c, d=d, e=e, e16=e16)
