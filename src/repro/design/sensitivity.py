"""One-at-a-time parameter sensitivity analysis.

Section 4.2's conclusion -- "many features of the microarchitecture,
including the data-cache, matching-table, and instruction store, must
be tuned carefully" -- made quantitative: starting from a base
configuration, vary one parameter at a time and record how performance
and area respond.  The result ranks parameters by their performance
leverage per unit of area, which is exactly the information an
architect tuning a tile needs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..area.model import chip_area
from ..core.config import WaveScalarConfig

#: Parameter -> the alternative values a sensitivity sweep tries.
DEFAULT_AXES: Mapping[str, Sequence] = {
    "matching_entries": (16, 32, 64, 128),
    "virtualization": (16, 32, 64, 128),
    "l1_kb": (8, 16, 32),
    "l2_mb": (0, 1, 2, 4),
    "pes_per_domain": (2, 4, 8),
    "domains_per_cluster": (1, 2, 4),
    "partial_store_queues": (0, 1, 2, 4),
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One (parameter, value) variation of the base configuration."""

    parameter: str
    value: object
    config: WaveScalarConfig
    area_mm2: float
    performance: float


@dataclass(frozen=True)
class SensitivityAxis:
    """All variations of one parameter, plus leverage summary."""

    parameter: str
    points: tuple[SensitivityPoint, ...]

    @property
    def performance_swing(self) -> float:
        """max/min performance over the axis (1.0 = insensitive)."""
        perfs = [p.performance for p in self.points if p.performance > 0]
        if not perfs:
            return 1.0
        return max(perfs) / min(perfs)

    @property
    def area_swing(self) -> float:
        areas = [p.area_mm2 for p in self.points]
        return max(areas) / min(areas)

    @property
    def leverage(self) -> float:
        """Performance swing per area swing: >1 means the parameter
        buys more performance than it costs silicon."""
        return self.performance_swing / self.area_swing


def _vary(base: WaveScalarConfig, parameter: str,
          value) -> WaveScalarConfig | None:
    try:
        config = dataclasses.replace(base, **{parameter: value})
    except ValueError:
        return None
    # Keep the matching table legal relative to pods etc.
    if config.pes_per_domain % 2 and config.pods_enabled \
            and config.pes_per_domain > 1:
        return None
    return config


def sweep(
    base: WaveScalarConfig,
    evaluate: Callable[[WaveScalarConfig], float],
    axes: Mapping[str, Sequence] = DEFAULT_AXES,
) -> list[SensitivityAxis]:
    """Evaluate every one-parameter variation of ``base``.

    ``evaluate`` maps a configuration to a performance figure (AIPC in
    the benchmark harness; tests use analytic stand-ins).  Axes whose
    every variation is illegal are dropped.
    """
    results = []
    for parameter, values in axes.items():
        points = []
        for value in values:
            config = _vary(base, parameter, value)
            if config is None:
                continue
            points.append(
                SensitivityPoint(
                    parameter=parameter,
                    value=value,
                    config=config,
                    area_mm2=chip_area(config),
                    performance=evaluate(config),
                )
            )
        if points:
            results.append(
                SensitivityAxis(parameter=parameter, points=tuple(points))
            )
    results.sort(key=lambda axis: -axis.performance_swing)
    return results


def render(axes: Sequence[SensitivityAxis]) -> str:
    """Text table: one row per (parameter, value)."""
    lines = [
        f"{'parameter':<22}{'value':>7}{'area':>8}{'perf':>8}"
        f"{'swing':>8}{'leverage':>10}"
    ]
    for axis in axes:
        for index, point in enumerate(axis.points):
            swing = f"{axis.performance_swing:.2f}x" if index == 0 else ""
            lever = f"{axis.leverage:.2f}" if index == 0 else ""
            lines.append(
                f"{point.parameter:<22}{point.value!s:>7}"
                f"{point.area_mm2:>8.0f}{point.performance:>8.3f}"
                f"{swing:>8}{lever:>10}"
            )
    return "\n".join(lines)
