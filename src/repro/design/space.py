"""Design-space enumeration and pruning (Section 4.2).

The paper sweeps seven parameters (Table 3 ranges), yielding "over
twenty-one thousand" raw configurations, then prunes:

1. die area bounded at 400 mm^2,
2. balance rules -- "it makes no sense to have more than one domain if
   the design contains fewer than eight PEs per domain" and "if there
   are fewer than four domains in the design, there should be only one
   cluster" (plus "a few more like them"),
3. a single processor-wide virtualization ratio M/V (chosen as 1 after
   the Table 4 analysis),
4. at least 4K total instruction capacity.

This module reproduces that funnel.  Discrete parameter grids are
power-of-two steps over the published ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..area.model import MAX_DIE_MM2, chip_area
from ..area.timing import meets_clock_target
from ..core.config import WaveScalarConfig

#: Discrete grids over the Table 3 ranges (power-of-two steps).
CLUSTER_CHOICES = (1, 2, 4, 8, 16, 32, 64)
DOMAIN_CHOICES = (1, 2, 4)
PE_CHOICES = (2, 4, 8)
VIRT_CHOICES = (8, 16, 32, 64, 128, 256)
MATCHING_CHOICES = (16, 32, 64, 128)
L1_CHOICES = (8, 16, 32)
L2_CHOICES = (0, 1, 2, 4, 8, 16, 32)

#: Minimum whole-processor instruction capacity (Section 4.2).
MIN_CAPACITY = 4096


@dataclass(frozen=True)
class DesignPoint:
    """One candidate processor with its modelled area."""

    config: WaveScalarConfig
    area_mm2: float

    @property
    def capacity(self) -> int:
        return self.config.total_instruction_capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.config.describe()} = {self.area_mm2:.0f}mm2>"


def enumerate_raw() -> Iterator[WaveScalarConfig]:
    """The full cross product: "over twenty-one thousand" points."""
    for c in CLUSTER_CHOICES:
        for d in DOMAIN_CHOICES:
            for p in PE_CHOICES:
                for v in VIRT_CHOICES:
                    for m in MATCHING_CHOICES:
                        for l1 in L1_CHOICES:
                            for l2 in L2_CHOICES:
                                yield WaveScalarConfig(
                                    clusters=c,
                                    domains_per_cluster=d,
                                    pes_per_domain=p,
                                    virtualization=v,
                                    matching_entries=m,
                                    l1_kb=l1,
                                    l2_mb=l2,
                                )


def raw_design_count() -> int:
    return (
        len(CLUSTER_CHOICES)
        * len(DOMAIN_CHOICES)
        * len(PE_CHOICES)
        * len(VIRT_CHOICES)
        * len(MATCHING_CHOICES)
        * len(L1_CHOICES)
        * len(L2_CHOICES)
    )


def is_balanced(config: WaveScalarConfig) -> bool:
    """The paper's structural sanity rules.

    The paper names the first two and applies "a few more like them"
    without listing them; the remaining two below are our documented
    stand-ins (DESIGN.md), chosen to shrink the set the same way.

    * Fewer than 8 PEs per domain -> merge into a single domain.
    * Fewer than 4 domains -> single cluster.
    * Multi-cluster processors use perfect-square grids (1, 4, 16, 64)
      so the mesh is balanced in both dimensions.
    * The L2 may not exceed 4 MB per cluster (a larger cache would
      dwarf the compute it serves).
    """
    if config.pes_per_domain < 8 and config.domains_per_cluster > 1:
        return False
    if config.domains_per_cluster < 4 and config.clusters > 1:
        return False
    if config.clusters > 1:
        root = int(round(config.clusters ** 0.5))
        if root * root != config.clusters:
            return False
    if config.l2_mb > 4:
        return False
    return True


def matches_ratio(config: WaveScalarConfig, ratio: float) -> bool:
    """Whether M/V equals the chosen virtualization ratio."""
    return config.matching_entries == int(config.virtualization * ratio)


def prune(
    configs: Iterable[WaveScalarConfig],
    max_area: float = MAX_DIE_MM2,
    ratio: float | None = 1.0,
    min_capacity: int = MIN_CAPACITY,
    require_clock: bool = True,
) -> list[DesignPoint]:
    """Apply the Section 4.2 funnel; returns surviving design points."""
    result = []
    for config in configs:
        if require_clock and not meets_clock_target(config):
            continue
        if not is_balanced(config):
            continue
        if ratio is not None and not matches_ratio(config, ratio):
            continue
        if config.total_instruction_capacity < min_capacity:
            continue
        area = chip_area(config)
        if area > max_area:
            continue
        result.append(DesignPoint(config=config, area_mm2=area))
    result.sort(key=lambda d: (d.area_mm2, d.config.describe()))
    return result


def viable_designs(ratio: float = 1.0) -> list[DesignPoint]:
    """The paper's final design list (41 points for ratio 1 in the
    paper; the exact count depends on the unpublished balance rules --
    see DESIGN.md)."""
    return prune(enumerate_raw(), ratio=ratio)


def balanced_designs() -> list[DesignPoint]:
    """The intermediate set after area + balance rules only
    (the paper's 344)."""
    return prune(enumerate_raw(), ratio=None, min_capacity=0)
