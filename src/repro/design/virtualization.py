"""Matching-table tuning: the Table 4 machinery (Section 4.2).

The paper balances matching-table capacity against instruction-store
capacity through the *matching table equation* ``M = V*k/u``:

* ``k`` -- the k-loop bound: at most ``k`` input instances may
  accumulate per static instruction.  ``k_opt`` is found per
  application by raising ``k`` on a processor with an infinite
  matching table until performance stops improving.
* ``u`` -- the over-subscription factor.  ``u_opt`` is the largest
  ``u`` (with ``V = 256``, ``M = 256*k_opt/u``) before performance
  drops significantly.
* ``k_opt / u_opt`` is the application's *virtualization ratio*; the
  processor-wide ratio is chosen as the (power-of-two) maximum over
  the workload suite -- 1 in the paper.

The sweep drivers here are pure algorithms over a caller-supplied
``evaluate(k, matching_entries) -> performance`` function, so unit
tests can exercise them with analytic stand-ins and the benchmark
harness plugs in the real simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

#: "Infinite" matching table stand-in for the k sweep.
INFINITE_MATCHING = 1 << 20

#: Improvement below this fraction counts as "no longer improves".
K_IMPROVEMENT_THRESHOLD = 0.02

#: Performance drop beyond this fraction counts as "decreases
#: significantly" for the u sweep.
U_DROP_THRESHOLD = 0.05


@dataclass(frozen=True)
class TuningResult:
    """Per-application Table 4 row."""

    application: str
    k_opt: int
    u_opt: int
    virtualization_ratio: float

    def ratio_str(self) -> str:
        return f"{self.virtualization_ratio:.2f}"


def find_k_opt(
    evaluate: Callable[[int, int], float],
    k_candidates: Sequence[int] = (1, 2, 3, 4, 6, 8),
    threshold: float = K_IMPROVEMENT_THRESHOLD,
) -> int:
    """Smallest k whose successor yields < ``threshold`` improvement.

    ``evaluate(k, matching_entries)`` returns performance (higher is
    better); the sweep runs with an effectively infinite matching
    table.
    """
    best_k = k_candidates[0]
    best_perf = evaluate(k_candidates[0], INFINITE_MATCHING)
    for k in k_candidates[1:]:
        perf = evaluate(k, INFINITE_MATCHING)
        if best_perf > 0 and (perf - best_perf) / best_perf < threshold:
            return best_k
        best_k, best_perf = k, perf
    return best_k


def find_u_opt(
    evaluate: Callable[[int, int], float],
    k_opt: int,
    v: int = 256,
    u_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    threshold: float = U_DROP_THRESHOLD,
) -> int:
    """Largest u before performance drops by > ``threshold`` relative
    to the unsubscribed (u=1) baseline."""
    baseline = evaluate(k_opt, max(1, v * k_opt))
    if baseline <= 0:
        return u_candidates[0]
    best_u = u_candidates[0]
    for u in u_candidates:
        entries = max(1, (v * k_opt) // u)
        perf = evaluate(k_opt, entries)
        if (baseline - perf) / baseline > threshold:
            break
        best_u = u
    return best_u


def tune_application(
    name: str,
    evaluate: Callable[[int, int], float],
    v: int = 256,
    k_candidates: Sequence[int] = (1, 2, 3, 4, 6, 8),
    u_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
) -> TuningResult:
    """Full Table 4 row for one application."""
    k_opt = find_k_opt(evaluate, k_candidates)
    u_opt = find_u_opt(evaluate, k_opt, v=v, u_candidates=u_candidates)
    return TuningResult(
        application=name,
        k_opt=k_opt,
        u_opt=u_opt,
        virtualization_ratio=k_opt / u_opt,
    )


def processor_ratio(results: Sequence[TuningResult]) -> float:
    """The processor-wide virtualization ratio: the maximum
    per-application ratio, rounded up to a power of two (the paper's
    conservative choice -- instruction misses cost ~3x matching
    misses, so err toward instruction capacity)."""
    if not results:
        raise ValueError("no tuning results")
    worst = max(r.virtualization_ratio for r in results)
    ratio = 1.0 / 8.0
    while ratio < worst:
        ratio *= 2.0
    return ratio


def matching_entries_for(
    v: int, ratio: float, minimum: int = 16, maximum: int = 128
) -> int:
    """M implied by the matching-table equation, clamped to the RTL
    structure-size limits."""
    return max(minimum, min(maximum, int(v * ratio)))
