"""Fuzzer-driven differential testing.

Five independent oracles ship with this repo -- the reference
interpreter, the plain and batched engines, the static A-rule bound,
and the graph linter.  This package generates seeded, reproducible
programs and holds every oracle to agreement on each one; any
disagreement is shrunk to a minimal repro and recorded.  See
DESIGN.md §5j and ``repro fuzz --help``.
"""

from .corpus import CorpusCase, load_corpus, save_case
from .defects import DEFECTS, get_defect
from .differential import (
    PROBE_CONFIGS,
    DiffReport,
    Divergence,
    diff_graph,
    values_equal,
)
from .generator import random_graph, random_recipe
from .harness import (
    CampaignResult,
    diff_recipe,
    divergence_persists,
    run_campaign,
)
from .minimize import ddmin, graph_size, minimize_recipe
from .recipe import BranchSpec, LoopSpec, Recipe, build_graph

__all__ = [
    "BranchSpec",
    "CampaignResult",
    "CorpusCase",
    "DEFECTS",
    "DiffReport",
    "Divergence",
    "LoopSpec",
    "PROBE_CONFIGS",
    "Recipe",
    "build_graph",
    "ddmin",
    "diff_graph",
    "diff_recipe",
    "divergence_persists",
    "get_defect",
    "graph_size",
    "load_corpus",
    "minimize_recipe",
    "random_graph",
    "random_recipe",
    "run_campaign",
    "save_case",
    "values_equal",
]
