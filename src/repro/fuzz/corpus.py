"""The divergence corpus: minimal repro cases on disk.

Every divergence the campaign finds is written as one JSON document
-- seed, divergence kind and detail, the original recipe, and the
minimized recipe -- so it can be replayed byte-for-byte later:
checked into ``tests/fuzz/corpus/`` as a permanent regression, or
uploaded from CI as an artifact for triage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .recipe import Recipe, build_graph

FORMAT_VERSION = 1


@dataclass
class CorpusCase:
    """One reproducible divergence."""

    seed: int
    kind: str
    detail: str
    config: str = ""
    defect: Optional[str] = None
    recipe: dict = field(default_factory=dict)
    minimized: Optional[dict] = None
    graph_len: int = 0
    minimized_len: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "seed": self.seed,
            "kind": self.kind,
            "detail": self.detail,
            "config": self.config,
            "defect": self.defect,
            "recipe": self.recipe,
            "minimized": self.minimized,
            "graph_len": self.graph_len,
            "minimized_len": self.minimized_len,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CorpusCase":
        return cls(
            seed=doc["seed"], kind=doc["kind"],
            detail=doc.get("detail", ""), config=doc.get("config", ""),
            defect=doc.get("defect"), recipe=doc.get("recipe", {}),
            minimized=doc.get("minimized"),
            graph_len=doc.get("graph_len", 0),
            minimized_len=doc.get("minimized_len"),
        )

    def best_recipe(self) -> Recipe:
        """The smallest recorded repro (minimized when present)."""
        return Recipe.from_dict(self.minimized or self.recipe)

    def replay(self, with_defect: bool = True):
        """Re-run the differential harness on the stored repro."""
        from .defects import get_defect
        from .differential import diff_graph

        defect = get_defect(self.defect) if with_defect else None
        return diff_graph(build_graph(self.best_recipe()), defect=defect)


def case_filename(case: CorpusCase) -> str:
    return f"fuzz_seed{case.seed}_{case.kind}.json"


def save_case(directory, case: CorpusCase) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case)
    path.write_text(
        json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_corpus(directory) -> list:
    """Every case under ``directory``, sorted by filename (missing
    directory is an empty corpus, not an error)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        cases.append(CorpusCase.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        ))
    return cases
