"""Seeded defects: deliberate corruptions that prove the harness works.

A defect is a harness-boundary corruption of the plain engine's
output list -- the differential loop applies it after the engine runs
and before comparison, simulating a broken engine without actually
breaking the engine the rest of the test suite depends on.  The
campaign must (a) flag every program whose outputs the defect
touches and (b) shrink one to a minimal repro, which locks the
detect-and-minimize pipeline end to end.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["DEFECTS", "get_defect"]


def _off_by_one(outputs: list) -> list:
    """The classic: the first integer output is one too large."""
    corrupted = list(outputs)
    for i, value in enumerate(corrupted):
        if isinstance(value, int) and not isinstance(value, bool):
            corrupted[i] = value + 1
            break
    return corrupted


def _dropped_output(outputs: list) -> list:
    """A lost token: the last output never arrives."""
    return list(outputs[:-1])


def _sign_flip(outputs: list) -> list:
    """A wrong-way STEER: the first nonzero output changes sign."""
    corrupted = list(outputs)
    for i, value in enumerate(corrupted):
        if isinstance(value, (int, float)) and value:
            corrupted[i] = -value
            break
    return corrupted


DEFECTS: dict[str, Callable[[list], list]] = {
    "off-by-one": _off_by_one,
    "dropped-output": _dropped_output,
    "sign-flip": _sign_flip,
}


def get_defect(name: Optional[str]) -> Optional[Callable[[list], list]]:
    if name is None:
        return None
    try:
        return DEFECTS[name]
    except KeyError:
        raise ValueError(
            f"unknown defect {name!r}; valid defects: "
            + ", ".join(sorted(DEFECTS))
        ) from None
