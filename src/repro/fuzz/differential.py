"""Differential execution: one program, five oracles, zero tolerance.

For each fuzz program the harness runs

* the reference interpreter (:mod:`repro.lang.interp`) -- golden
  outputs;
* the plain engine on each probe config -- outputs and SimStats;
* the batched backend on each probe config -- SimStats must equal the
  plain engine's field for field;
* the A-rule static bound (:func:`repro.analysis.dataflow
  .graph_statics` + ``compute_bound``) -- measured AIPC must never
  exceed it;
* the graph linter -- generated programs must be error-free.

Any disagreement becomes a :class:`Divergence`.  Floating-point
comparisons are exact (bit-identity is the contract between backends)
except that NaN is treated as equal to NaN: the generator can
legitimately manufacture NaNs (inf - inf), and every backend must
produce the *same* NaN-shaped result, which ``==`` alone cannot
express.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from ..analysis.dataflow import compute_bound, graph_statics
from ..analysis.lint import lint_graph
from ..core.config import WaveScalarConfig
from ..isa.graph import DataflowGraph
from ..lang.interp import DeadlockError, interpret
from ..sim.backends import batched_available
from ..sim.engine import Engine, simulate
from ..sim.failures import (
    CycleBudgetExhausted,
    EventBudgetExhausted,
    SimulationDeadlock,
)

#: Probe configs: the roomy default plus a starved design (1 cluster,
#: tiny matching table, no L2) that forces eviction/retry paths.
PROBE_CONFIGS = (
    WaveScalarConfig(),
    WaveScalarConfig(clusters=1, virtualization=16, matching_entries=16,
                     matching_banks=2, matching_associativity=2, l2_mb=0),
)

#: Budgets far above anything a recipe-sized program can need, so a
#: budget trip is itself a reportable anomaly, not noise.
MAX_FIRINGS = 2_000_000
MAX_CYCLES = 2_000_000
MAX_EVENTS = 5_000_000

#: A tiny slack on the bound comparison would hide real soundness
#: bugs; the bound is computed in exact arithmetic, so none is given.
BOUND_EPS = 0.0


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between oracles."""

    kind: str  # output | stats | bound | deadlock | lint | error
    detail: str
    config: str = ""


@dataclass
class DiffReport:
    """Everything the harness learned about one program."""

    name: str
    divergences: list = field(default_factory=list)
    graph_len: int = 0
    dynamic_instructions: int = 0

    @property
    def clean(self) -> bool:
        return not self.divergences


def values_equal(a: list, b: list) -> bool:
    """Exact elementwise equality, with NaN == NaN."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x != y and not (x != x and y != y):
            return False
    return True


def _stats_diff(plain: dict, batched: dict) -> Optional[str]:
    """First field where two SimStats dicts disagree, or None."""
    for key in sorted(set(plain) | set(batched)):
        x, y = plain.get(key), batched.get(key)
        if x != y and not _nan_equal(x, y):
            return f"{key}: plain={x!r} batched={y!r}"
    return None


def _nan_equal(x, y) -> bool:
    if isinstance(x, dict) and isinstance(y, dict):
        return set(x) == set(y) and all(
            _nan_equal(x[k], y[k]) for k in x
        )
    if isinstance(x, (list, tuple)) and isinstance(y, (list, tuple)):
        return len(x) == len(y) and all(
            _nan_equal(a, b) for a, b in zip(x, y)
        )
    return x == y or (x != x and y != y)


def _batched_stats(graph: DataflowGraph, config: WaveScalarConfig):
    """Run one cell under the lockstep backend; returns (stats, error)."""
    from ..place.snake import place
    from ..sim.batched.core import BatchedEngine

    placement = place(graph, config)
    engine = Engine(graph, config, placement, max_cycles=MAX_CYCLES,
                    max_events=MAX_EVENTS)
    outcome = BatchedEngine([engine]).run(strict=True)[0]
    return outcome.stats, outcome.error


def diff_graph(
    graph: DataflowGraph,
    configs=PROBE_CONFIGS,
    defect: Optional[Callable[[list], list]] = None,
    check_batched: bool = True,
    check_bound: bool = True,
) -> DiffReport:
    """Cross-check one graph against every oracle.

    ``defect`` is a harness-boundary corruption applied to the plain
    engine's outputs (see :mod:`repro.fuzz.defects`) -- the seeded-bug
    mechanism that proves the harness and minimizer actually detect a
    broken engine.
    """
    report = DiffReport(name=graph.name, graph_len=len(graph))

    lint = lint_graph(graph)
    if not lint.clean:
        errors = [d for d in lint.report.diagnostics
                  if d.severity.name == "ERROR"]
        report.divergences.append(Divergence(
            "lint", f"{len(errors)} lint error(s): "
            + "; ".join(str(d) for d in errors[:3])
        ))

    try:
        ref = interpret(graph, max_firings=MAX_FIRINGS)
    except DeadlockError as exc:
        ref = None
        ref_error = str(exc)
    if ref is not None:
        report.dynamic_instructions = ref.dynamic_instructions
        ref_outputs = ref.output_values()

    statics = None
    if check_bound and ref is not None:
        statics = graph_statics(graph, name=graph.name)

    for i, config in enumerate(configs):
        label = config.describe()
        try:
            stats = simulate(graph, config, max_cycles=MAX_CYCLES,
                             max_events=MAX_EVENTS)
        except (CycleBudgetExhausted, EventBudgetExhausted) as exc:
            # Starved probe configs (index > 0) can genuinely livelock
            # in matching-table thrash -- the paper's non-viable
            # designs.  That is an explained outcome, but the batched
            # backend must reproduce the identical failure.  The roomy
            # primary config must always complete a recipe program.
            if i == 0:
                report.divergences.append(Divergence(
                    "budget",
                    f"primary config exhausted its budget: {exc}",
                    config=label,
                ))
            elif check_batched and batched_available():
                bstats, berror = _batched_stats(graph, config)
                if berror is None or type(berror) is not type(exc) or \
                        str(berror) != str(exc):
                    report.divergences.append(Divergence(
                        "stats",
                        f"plain thrashed ({type(exc).__name__}: {exc}) "
                        f"but batched gave "
                        f"{type(berror).__name__ if berror else 'stats'}"
                        f": {berror}", config=label,
                    ))
            continue
        except SimulationDeadlock as exc:
            if ref is not None:
                report.divergences.append(Divergence(
                    "deadlock",
                    f"interpreter completed but engine stuck: {exc}",
                    config=label,
                ))
            continue
        except Exception as exc:  # engine crash is always reportable
            report.divergences.append(Divergence(
                "error", f"plain engine raised {type(exc).__name__}: "
                         f"{exc}", config=label,
            ))
            continue
        if ref is None:
            report.divergences.append(Divergence(
                "deadlock",
                f"engine completed but interpreter deadlocked: "
                f"{ref_error}", config=label,
            ))
            continue

        outputs = stats.output_values()
        if defect is not None:
            outputs = defect(list(outputs))
        if not values_equal(outputs, ref_outputs):
            report.divergences.append(Divergence(
                "output",
                f"engine {outputs!r} != reference {ref_outputs!r}",
                config=label,
            ))

        if statics is not None:
            bound = compute_bound(statics, config)
            if stats.aipc > bound.aipc_bound + BOUND_EPS:
                report.divergences.append(Divergence(
                    "bound",
                    f"measured AIPC {stats.aipc:.6f} exceeds static "
                    f"bound {bound.aipc_bound:.6f} "
                    f"(roof {bound.binding_roof})",
                    config=label,
                ))

        if check_batched and batched_available():
            bstats, berror = _batched_stats(graph, config)
            if berror is not None:
                report.divergences.append(Divergence(
                    "stats",
                    f"batched errored where plain completed: "
                    f"{type(berror).__name__}: {berror}", config=label,
                ))
            else:
                delta = _stats_diff(asdict(stats), asdict(bstats))
                if delta is not None:
                    report.divergences.append(Divergence(
                        "stats", f"plain/batched SimStats differ -- "
                                 f"{delta}", config=label,
                    ))
    return report
