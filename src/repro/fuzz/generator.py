"""Seeded program generators.

Two levels of generation, both deterministic functions of the seed:

* :func:`random_recipe` -- the structured generator: builds a
  :class:`~repro.fuzz.recipe.Recipe` through :mod:`repro.lang.builder`,
  so every program is wave-disciplined and runs to completion on every
  backend.  This is what the differential campaign executes.
* :func:`random_graph` -- the raw instruction-level generator
  (promoted from the PR 7 analyzer fuzz): forward-edge token graphs
  with unguarded STEERs, some of which genuinely starve.  Too wild for
  output differencing, exactly right for exercising the token-flow
  fixed point's deadlock reasoning.
"""

from __future__ import annotations

import random

from ..isa import DataflowGraph, Dest, Instruction, Opcode, make_token
from .recipe import FLOAT_OPS, INT_OPS, BranchSpec, LoopSpec, Recipe

#: Generation weights: compute dominates, memory ops are common,
#: pool-crossing conversions are occasional.
_KIND_WEIGHTS = (
    [(k, 4) for k in INT_OPS]
    + [(k, 3) for k in FLOAT_OPS]
    + [("load", 3), ("fload", 2), ("store", 3), ("sload", 2), ("i2f", 2)]
)
_KINDS = [k for k, w in _KIND_WEIGHTS for _ in range(w)]


def _ops(rng: random.Random, n: int, kinds=None) -> list:
    pool = kinds if kinds is not None else _KINDS
    return [
        [rng.choice(pool), rng.randrange(16), rng.randrange(16)]
        for _ in range(n)
    ]


def random_recipe(seed: int) -> Recipe:
    """The structured fuzz program for ``seed`` (pure function)."""
    rng = random.Random(seed)
    loop = None
    if rng.random() < 0.75:
        loop = LoopSpec(
            trip=rng.randint(1, 6),
            k=rng.choice([None, 1, 2, 3]),
            carried_int=rng.randint(1, 2),
            carried_float=rng.randint(0, 2),
            body=_ops(rng, rng.randint(1, 10)),
        )
    branch = None
    if rng.random() < 0.45:
        compute = list(INT_OPS)
        branch = BranchSpec(
            pred=rng.randrange(16),
            width=rng.randint(1, 3),
            then_ops=_ops(rng, rng.randint(0, 4), kinds=compute),
            else_ops=_ops(rng, rng.randint(0, 4), kinds=compute),
        )
    return Recipe(
        seed=seed,
        entry=rng.randint(-9, 9),
        idata=[rng.randint(-9, 9) for _ in range(rng.randint(1, 8))],
        fdata=[round(rng.uniform(-2.0, 2.0), 3)
               for _ in range(rng.randint(1, 6))],
        scratch=rng.randint(1, 6),
        pre=_ops(rng, rng.randint(0, 8)),
        loop=loop,
        branch=branch,
        post=_ops(rng, rng.randint(0, 6)),
        outputs=[rng.randrange(32) for _ in range(rng.randint(1, 3))],
    )


# ----------------------------------------------------------------------
# Raw instruction-level generator (PR 7's analyzer fuzz)
# ----------------------------------------------------------------------
UNARY = (Opcode.NEG, Opcode.NOT, Opcode.ABS)
BINARY = (Opcode.ADD, Opcode.SUB, Opcode.MIN, Opcode.MAX, Opcode.XOR)


def random_graph(seed: int) -> DataflowGraph:
    """Forward-edge token graph: every input port has exactly one
    source (entry token or producer), optionally routed through STEER
    -- so most instances complete while STEER starvation still
    produces genuinely stuck programs."""
    rng = random.Random(seed)
    n = rng.randint(3, 12)
    opcodes = []
    for i in range(n):
        if i == 0:
            opcodes.append(rng.choice(UNARY))
        elif rng.random() < 0.15:
            opcodes.append(Opcode.STEER)
        else:
            opcodes.append(rng.choice(UNARY + BINARY))
    dests: list[list[Dest]] = [[] for _ in range(n)]
    false_dests: list[list[Dest]] = [[] for _ in range(n)]
    entry = []
    for i in range(n):
        for port in range(opcodes[i].arity):
            producers = [
                j for j in range(i)
                if len(dests[j]) + len(false_dests[j]) < 4
            ]
            if i == 0 or not producers or rng.random() < 0.35:
                entry.append(
                    make_token(0, 0, i, port, rng.randint(1, 9))
                )
                continue
            j = rng.choice(producers)
            if opcodes[j] is Opcode.STEER and rng.random() < 0.5:
                false_dests[j].append(Dest(i, port))
            else:
                dests[j].append(Dest(i, port))
    instructions = [
        Instruction(i, opcodes[i], dests=tuple(dests[i]),
                    false_dests=tuple(false_dests[i])
                    if opcodes[i] is Opcode.STEER else ())
        for i in range(n)
    ]
    return DataflowGraph(
        instructions=instructions, entry_tokens=entry,
        name=f"fuzz{seed}",
    )
