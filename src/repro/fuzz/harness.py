"""The fuzz campaign driver: seeds in, corpus cases out.

``run_campaign`` walks a seed range; each seed becomes a recipe, a
graph, and a differential report.  Divergent programs are shrunk by
the minimizer (optional) and recorded as :class:`CorpusCase` objects,
written to the corpus directory when one is given.  The whole
pipeline is deterministic: same seed range, same defect, same
results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .corpus import CorpusCase, save_case
from .differential import diff_graph
from .generator import random_recipe
from .minimize import graph_size, minimize_recipe
from .recipe import Recipe, build_graph


@dataclass
class CampaignResult:
    seeds_run: int = 0
    programs_clean: int = 0
    cases: list = field(default_factory=list)
    #: static-instruction and dynamic-instruction totals, for the
    #: coverage line in reports.
    total_static: int = 0
    total_dynamic: int = 0

    @property
    def clean(self) -> bool:
        return not self.cases

    def to_dict(self) -> dict:
        return {
            "seeds_run": self.seeds_run,
            "programs_clean": self.programs_clean,
            "divergences": len(self.cases),
            "total_static_instructions": self.total_static,
            "total_dynamic_instructions": self.total_dynamic,
            "cases": [case.to_dict() for case in self.cases],
        }


def diff_recipe(recipe: Recipe,
                defect: Optional[Callable[[list], list]] = None,
                **kwargs):
    """Build and differentially execute one recipe."""
    return diff_graph(build_graph(recipe), defect=defect, **kwargs)


def divergence_persists(recipe: Recipe, kind: str,
                        defect: Optional[Callable[[list], list]] = None,
                        ) -> bool:
    """The minimizer's interestingness predicate: does shrinking this
    recipe still reproduce a divergence of ``kind``?"""
    report = diff_recipe(recipe, defect=defect)
    return any(d.kind == kind for d in report.divergences)


def run_campaign(
    seeds: int = 100,
    start: int = 0,
    corpus_dir=None,
    minimize: bool = True,
    defect: Optional[Callable[[list], list]] = None,
    defect_name: Optional[str] = None,
    progress: Optional[Callable[[int, "CampaignResult"], None]] = None,
) -> CampaignResult:
    """Fuzz seeds ``start .. start + seeds - 1``."""
    result = CampaignResult()
    for seed in range(start, start + seeds):
        recipe = random_recipe(seed)
        report = diff_recipe(recipe, defect=defect)
        result.seeds_run += 1
        result.total_static += report.graph_len
        result.total_dynamic += report.dynamic_instructions
        if report.clean:
            result.programs_clean += 1
        else:
            first = report.divergences[0]
            case = CorpusCase(
                seed=seed, kind=first.kind, detail=first.detail,
                config=first.config, defect=defect_name,
                recipe=recipe.to_dict(), graph_len=report.graph_len,
            )
            if minimize:
                minimized = minimize_recipe(
                    recipe,
                    lambda r: divergence_persists(r, first.kind,
                                                  defect=defect),
                )
                case.minimized = minimized.to_dict()
                case.minimized_len = graph_size(minimized)
            result.cases.append(case)
            if corpus_dir is not None:
                save_case(corpus_dir, case)
        if progress is not None:
            progress(seed, result)
    return result
