"""Delta-debugging minimizer for divergent recipes.

Classic ddmin over every op list in the recipe, interleaved with
structural simplifications (drop the branch, drop the loop, trip to
1, shrink data segments, one output), iterated to a fixpoint.  The
interestingness predicate re-runs the differential harness and asks
whether a divergence *of the same kind* persists; recipes are
declarative (operand refs resolve modulo the live pool), so every
candidate the minimizer proposes is buildable and the predicate never
has to special-case construction failures -- though it still treats
any crash as "not interesting" for safety.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .recipe import Recipe, build_graph

#: Structural shrink passes, tried cheapest-result-first each round.
_MAX_ROUNDS = 12


def ddmin(items: list, interesting: Callable[[list], bool]) -> list:
    """Zeller's ddmin: the returned subsequence is 1-minimal (removing
    any single remaining chunk of granularity 1 loses the property)."""
    if not items or not interesting(items):
        return items
    n = 2
    current = list(items)
    while len(current) >= 2:
        chunk = max(1, len(current) // n)
        subsets = [
            current[i:i + chunk] for i in range(0, len(current), chunk)
        ]
        reduced = False
        for i, subset in enumerate(subsets):
            complement = [
                x for j, s in enumerate(subsets) if j != i for x in s
            ]
            if complement and interesting(complement):
                current = complement
                n = max(2, n - 1)
                reduced = True
                break
            if not complement and interesting(complement):
                return []
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    # Final sweep: try dropping each remaining item singly (covers the
    # empty-list case ddmin's complement loop skips).
    i = 0
    while i < len(current):
        candidate = current[:i] + current[i + 1:]
        if interesting(candidate):
            current = candidate
        else:
            i += 1
    return current


def graph_size(recipe: Recipe) -> int:
    """The minimization metric: static instructions in the built
    graph."""
    return len(build_graph(recipe))


def _structural_candidates(recipe: Recipe) -> list:
    """One-step structural simplifications, most aggressive first."""
    candidates = []
    if recipe.branch is not None:
        candidates.append(replace(recipe, branch=None))
    if recipe.loop is not None:
        candidates.append(replace(recipe, loop=None))
        if recipe.loop.trip > 1:
            candidates.append(replace(
                recipe, loop=replace(recipe.loop, trip=1)
            ))
        if recipe.loop.carried_float > 0:
            candidates.append(replace(
                recipe, loop=replace(recipe.loop, carried_float=0)
            ))
        if recipe.loop.carried_int > 1:
            candidates.append(replace(
                recipe, loop=replace(recipe.loop, carried_int=1)
            ))
    if len(recipe.idata) > 1:
        candidates.append(replace(recipe, idata=recipe.idata[:1]))
    if len(recipe.fdata) > 1:
        candidates.append(replace(recipe, fdata=recipe.fdata[:1]))
    if recipe.scratch > 1:
        candidates.append(replace(recipe, scratch=1))
    if len(recipe.outputs) > 1:
        candidates.append(replace(recipe, outputs=recipe.outputs[:1]))
    if recipe.pre:
        candidates.append(replace(recipe, pre=[]))
    if recipe.post:
        candidates.append(replace(recipe, post=[]))
    return candidates


def _minimize_op_lists(recipe: Recipe,
                       interesting: Callable[[Recipe], bool]) -> Recipe:
    current = recipe

    def shrink(get_ops, set_ops):
        nonlocal current
        ops = get_ops(current)
        if not ops:
            return
        reduced = ddmin(
            list(ops), lambda sub: interesting(set_ops(current, sub))
        )
        if len(reduced) < len(ops):
            current = set_ops(current, reduced)

    shrink(lambda r: r.pre, lambda r, ops: replace(r, pre=ops))
    shrink(lambda r: r.post, lambda r, ops: replace(r, post=ops))
    if current.loop is not None:
        shrink(
            lambda r: r.loop.body,
            lambda r, ops: replace(r, loop=replace(r.loop, body=ops)),
        )
    if current.branch is not None:
        shrink(
            lambda r: r.branch.then_ops,
            lambda r, ops: replace(
                r, branch=replace(r.branch, then_ops=ops)
            ),
        )
        shrink(
            lambda r: r.branch.else_ops,
            lambda r, ops: replace(
                r, branch=replace(r.branch, else_ops=ops)
            ),
        )
    return current


def minimize_recipe(
    recipe: Recipe,
    interesting: Callable[[Recipe], bool],
) -> Recipe:
    """Shrink ``recipe`` while ``interesting`` (the
    divergence-persists predicate) holds.  Returns the smallest
    still-interesting recipe found."""

    def safe(candidate: Recipe) -> bool:
        try:
            return interesting(candidate)
        except Exception:
            return False

    if not safe(recipe):
        return recipe
    current = recipe
    for _ in range(_MAX_ROUNDS):
        before = graph_size(current)
        for candidate in _structural_candidates(current):
            if graph_size(candidate) < graph_size(current) and \
                    safe(candidate):
                current = candidate
        current = _minimize_op_lists(current, safe)
        if graph_size(current) >= before:
            break
    return current
