"""Recipes: declarative, JSON-serializable fuzz programs.

A :class:`Recipe` is the unit the fuzzer generates, the differential
harness executes, and the minimizer shrinks.  It is *declarative* on
purpose: operand references are indices resolved modulo the live
value pool at build time, so **any** subsequence of any op list still
builds a structurally valid graph -- exactly the property delta
debugging needs (dropping ops can change what a program computes but
never makes it unbuildable).

The vocabulary is the deterministic subset of the ISA: integer ops
(with multiply/shift results wrapped so values stay bounded), float
add/sub/mul (no float-to-int, which could overflow on runaway
products), wave-ordered loads/stores against fixed segments with
addresses wrapped into range, one counted loop with carried
int/float state, and one if/else with compute-only arms.  Every
recipe therefore runs to completion on every backend; any observable
disagreement is a bug in an engine, the analyzer, or the harness --
never an artifact of the program itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.graph import DataflowGraph
from ..lang.builder import GraphBuilder, Node

#: Multiply/shift results wrap to this modulus so integer magnitudes
#: stay bounded across loop iterations.
WRAP = 2**31

#: Two-operand integer ops (result stays in the int pool).
INT_OPS = (
    "add", "sub", "mul", "and", "or", "xor", "min", "max",
    "shl", "shr", "eq", "lt", "mod",
)
#: Two-operand float ops (result stays in the float pool).
FLOAT_OPS = ("fadd", "fsub", "fmul")
#: Everything :func:`apply_ops` understands.
OP_KINDS = INT_OPS + FLOAT_OPS + ("i2f", "load", "fload", "store", "sload")

_INT_METHODS = {
    "add": "add", "sub": "sub", "mul": "mul", "and": "and_",
    "or": "or_", "xor": "xor", "min": "min_", "max": "max_",
    "shl": "shl", "shr": "shr", "eq": "eq", "lt": "lt", "mod": "mod",
}
_FLOAT_METHODS = {"fadd": "fadd", "fsub": "fsub", "fmul": "fmul"}


@dataclass
class LoopSpec:
    """One counted loop: ``trip`` iterations, ``body`` ops, and
    ``carried_int``/``carried_float`` values threaded between
    iterations (picked from the pool ends)."""

    trip: int = 2
    k: Optional[int] = 2
    carried_int: int = 1
    carried_float: int = 0
    body: list = field(default_factory=list)


@dataclass
class BranchSpec:
    """One if/else on value parity with compute-only arms; both arms
    return ``width`` values that merge back into the int pool."""

    pred: int = 0
    width: int = 1
    then_ops: list = field(default_factory=list)
    else_ops: list = field(default_factory=list)


@dataclass
class Recipe:
    seed: int = 0
    entry: int = 1
    idata: list = field(default_factory=lambda: [3])
    fdata: list = field(default_factory=lambda: [1.5])
    scratch: int = 4
    pre: list = field(default_factory=list)
    loop: Optional[LoopSpec] = None
    branch: Optional[BranchSpec] = None
    post: list = field(default_factory=list)
    outputs: list = field(default_factory=list)

    def to_dict(self) -> dict:
        doc = {
            "seed": self.seed, "entry": self.entry,
            "idata": list(self.idata), "fdata": list(self.fdata),
            "scratch": self.scratch, "pre": list(self.pre),
            "post": list(self.post), "outputs": list(self.outputs),
        }
        if self.loop is not None:
            doc["loop"] = {
                "trip": self.loop.trip, "k": self.loop.k,
                "carried_int": self.loop.carried_int,
                "carried_float": self.loop.carried_float,
                "body": list(self.loop.body),
            }
        if self.branch is not None:
            doc["branch"] = {
                "pred": self.branch.pred, "width": self.branch.width,
                "then_ops": list(self.branch.then_ops),
                "else_ops": list(self.branch.else_ops),
            }
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Recipe":
        loop = None
        if doc.get("loop") is not None:
            ld = doc["loop"]
            loop = LoopSpec(
                trip=ld.get("trip", 2), k=ld.get("k", 2),
                carried_int=ld.get("carried_int", 1),
                carried_float=ld.get("carried_float", 0),
                body=[list(op) for op in ld.get("body", [])],
            )
        branch = None
        if doc.get("branch") is not None:
            bd = doc["branch"]
            branch = BranchSpec(
                pred=bd.get("pred", 0), width=bd.get("width", 1),
                then_ops=[list(op) for op in bd.get("then_ops", [])],
                else_ops=[list(op) for op in bd.get("else_ops", [])],
            )
        return cls(
            seed=doc.get("seed", 0), entry=doc.get("entry", 1),
            idata=list(doc.get("idata", [3])),
            fdata=list(doc.get("fdata", [1.5])),
            scratch=doc.get("scratch", 4),
            pre=[list(op) for op in doc.get("pre", [])],
            loop=loop, branch=branch,
            post=[list(op) for op in doc.get("post", [])],
            outputs=list(doc.get("outputs", [])),
        )


class _Ctx:
    """Per-region build state: the live value pools plus segment-base
    nodes usable from the current region."""

    def __init__(self, b: GraphBuilder, ints: list, floats: list,
                 bases: dict) -> None:
        self.b = b
        self.ints = ints
        self.floats = floats
        self.bases = bases  # name -> (base Node, length int)


def _pick(pool: list, ref: int) -> Node:
    return pool[ref % len(pool)]


def apply_ops(ctx: _Ctx, ops: list, memory: bool = True) -> None:
    """Apply one op list against the context pools.

    Unknown kinds and ops whose required pool is empty are skipped
    (never an error): the minimizer relies on every subsequence being
    applicable.  ``memory=False`` restricts to pure compute (branch
    arms, where stores would need steered wave-ordering chains).
    """
    b = ctx.b
    for op in ops:
        kind, a_ref, b_ref = op[0], int(op[1]), int(op[2])
        if kind in _INT_METHODS:
            if not ctx.ints:
                continue
            x = _pick(ctx.ints, a_ref)
            y = _pick(ctx.ints, b_ref)
            node = getattr(b, _INT_METHODS[kind])(x, y)
            if kind in ("mul", "shl"):
                node = b.mod(node, b.const(WRAP, node))
            ctx.ints.append(node)
        elif kind in _FLOAT_METHODS:
            if not ctx.floats:
                continue
            x = _pick(ctx.floats, a_ref)
            y = _pick(ctx.floats, b_ref)
            ctx.floats.append(getattr(b, _FLOAT_METHODS[kind])(x, y))
        elif kind == "i2f":
            if not ctx.ints:
                continue
            ctx.floats.append(b.i2f(_pick(ctx.ints, a_ref)))
        elif kind == "load" and memory:
            base, length = ctx.bases["idata"]
            idx = b.mod(_pick(ctx.ints, a_ref), b.const(length, base))
            ctx.ints.append(b.load(b.add(base, idx)))
        elif kind == "fload" and memory:
            base, length = ctx.bases["fdata"]
            idx = b.mod(_pick(ctx.ints, a_ref), b.const(length, base))
            ctx.floats.append(b.load(b.add(base, idx)))
        elif kind == "store" and memory:
            base, length = ctx.bases["scratch"]
            idx = b.mod(_pick(ctx.ints, b_ref), b.const(length, base))
            b.store(b.add(base, idx), _pick(ctx.ints, a_ref))
        elif kind == "sload" and memory:
            base, length = ctx.bases["scratch"]
            idx = b.mod(_pick(ctx.ints, a_ref), b.const(length, base))
            ctx.ints.append(b.load(b.add(base, idx)))


def _region_bases(b: GraphBuilder, trigger: Node, segments: dict) -> dict:
    """Fresh base-address const nodes for the current region."""
    return {
        name: (b.const(base, trigger), length)
        for name, (base, length) in segments.items()
    }


def build_graph(recipe: Recipe) -> DataflowGraph:
    """Materialize a recipe into a verified :class:`DataflowGraph`."""
    b = GraphBuilder(f"fuzz_s{recipe.seed}")
    idata = [int(v) for v in recipe.idata] or [3]
    fdata = [float(v) for v in recipe.fdata] or [1.5]
    scratch_len = max(1, int(recipe.scratch))
    segments = {
        "idata": (b.data("idata", idata), len(idata)),
        "fdata": (b.data("fdata", fdata), len(fdata)),
        "scratch": (b.alloc("scratch", scratch_len), scratch_len),
    }

    t = b.entry(int(recipe.entry))
    ctx = _Ctx(b, [t, b.const(5, t)], [b.const(0.25, t)],
               _region_bases(b, t, segments))
    apply_ops(ctx, recipe.pre)

    if recipe.loop is not None:
        lp_spec = recipe.loop
        trip = max(1, min(int(lp_spec.trip), 8))
        ci = max(1, min(int(lp_spec.carried_int), 4))
        cf = max(0, min(int(lp_spec.carried_float), 4))
        init_ints = [ctx.ints[-(i % len(ctx.ints)) - 1] for i in range(ci)]
        init_floats = [
            ctx.floats[-(i % len(ctx.floats)) - 1] for i in range(cf)
        ]
        anchor = ctx.ints[0]
        lp = b.loop(
            [b.const(0, anchor)] + init_ints + init_floats,
            invariants=[b.const(trip, anchor)] + [
                node for node, _ in ctx.bases.values()
            ],
            k=lp_spec.k,
            label="fuzzloop",
        )
        idx = lp.state[0]
        body_ints = list(lp.state[1:1 + ci])
        body_floats = list(lp.state[1 + ci:])
        limit = lp.invariants[0]
        body_bases = {
            name: (lp.invariants[1 + i], segments[name][1])
            for i, name in enumerate(ctx.bases)
        }
        bctx = _Ctx(b, [idx] + body_ints, body_floats, body_bases)
        apply_ops(bctx, lp_spec.body)
        next_ints = [bctx.ints[-(i % len(bctx.ints)) - 1]
                     for i in range(ci)]
        next_floats = [bctx.floats[-(i % len(bctx.floats)) - 1]
                       for i in range(cf)]
        idx2 = b.add(idx, b.const(1, idx))
        lp.next_iteration(b.lt(idx2, limit),
                          [idx2] + next_ints + next_floats)
        exits = lp.end()
        post_trigger = exits[0]
        ctx = _Ctx(b, list(exits[:1 + ci]), list(exits[1 + ci:]),
                   _region_bases(b, post_trigger, segments))

    if recipe.branch is not None:
        br_spec = recipe.branch
        width = max(1, min(int(br_spec.width), len(ctx.ints)))
        pred_src = _pick(ctx.ints, br_spec.pred)
        pred = b.eq(b.mod(pred_src, b.const(2, pred_src)),
                    b.const(0, pred_src))
        br = b.if_else(pred, ctx.ints[-width:])
        then_ctx = _Ctx(b, list(br.then_values()), [], {})
        apply_ops(then_ctx, br_spec.then_ops, memory=False)
        br.then_result(then_ctx.ints[-width:])
        else_ctx = _Ctx(b, list(br.else_values()), [], {})
        apply_ops(else_ctx, br_spec.else_ops, memory=False)
        br.else_result(else_ctx.ints[-width:])
        ctx.ints.extend(br.end())

    apply_ops(ctx, recipe.post)

    pool = ctx.ints + ctx.floats
    refs = list(recipe.outputs) or [len(ctx.ints) - 1]
    for ref in refs[:4]:
        b.output(pool[int(ref) % len(pool)])
    return b.finalize()
