"""Fault-tolerant sweep harness.

Long design-space campaigns (Figures 6-7, Table 5) must tolerate and
account for individual cell failures instead of restarting from zero.
This package provides the pieces:

* :mod:`repro.sim.failures` (re-exported here) -- the failure
  taxonomy: true deadlock vs cycle/event budget exhaustion vs
  watchdog timeout vs worker crash vs poisoned cell, each carrying
  diagnostics;
* :class:`~repro.harness.spec.CellSpec` -- a content-hashed
  ``(config, workload, threads, budgets, ...)`` unit of work;
* :class:`~repro.harness.supervisor.RunSupervisor` -- subprocess
  isolation, a wall-clock watchdog, and bounded retry with escalated
  budgets for transient failures;
* :class:`~repro.harness.ledger.Ledger` -- crash-safe JSONL
  checkpointing keyed by cell hash, with per-record checksums and
  ``verify``/``repair``/``compact`` self-healing, enabling ``resume``;
* :mod:`repro.harness.scheduler` -- lane-based parallel execution:
  independent ``(design, workload)`` lanes fan out across worker
  processes (``jobs=N``) while the driver stays the single ledger
  writer, with a per-cell circuit breaker, jittered worker-respawn
  backoff, and a campaign failure-rate budget;
* :func:`~repro.harness.sweep.design_space_sweep` -- the resumable
  Pareto-evaluation loop used by ``python -m repro sweep``;
* :class:`~repro.harness.faults.FaultPlan` -- deterministic fault
  injection proving each failure class is caught and classified;
* :mod:`repro.harness.chaos` -- seeded whole-runtime fault injection
  (worker kills, driver crashes, torn/corrupt ledger lines, fsync
  failures) plus :class:`~repro.harness.chaos.ChaosInvariants`, the
  oracle proving recovery is bit-identical to an undisturbed run.
"""

from ..sim.failures import (
    FAILURE_CLASSES,
    CycleBudgetExhausted,
    EventBudgetExhausted,
    FailureDiagnostics,
    PoisonedCell,
    SimulationDeadlock,
    SimulationFailure,
    TrueDeadlock,
    WatchdogTimeout,
    WorkerCrash,
    classify,
    is_transient,
)
from .chaos import (
    POINTS,
    ChaosCampaignReport,
    ChaosController,
    ChaosDriverCrash,
    ChaosInvariants,
    ChaosPlan,
    run_chaos_campaign,
)
from .faults import FaultPlan
from .ledger import (
    Ledger,
    LedgerAudit,
    MaintenanceReport,
    open_ledger,
    summarize,
)
from .scheduler import (
    BREAKER_THRESHOLD,
    CircuitBreaker,
    Lane,
    RespawnBackoff,
    execute_lanes,
    static_rejection,
)
from .spec import SWEEP_MAX_CYCLES, SWEEP_MAX_EVENTS, CellSpec
from .supervisor import (
    DEFAULT_TIMEOUT_S,
    CellResult,
    RunSupervisor,
    execute_cell,
)
from .sweep import CellFailure, SweepReport, design_space_sweep, sweep_cells

__all__ = [
    "BREAKER_THRESHOLD",
    "CellFailure",
    "CellResult",
    "CellSpec",
    "ChaosCampaignReport",
    "ChaosController",
    "ChaosDriverCrash",
    "ChaosInvariants",
    "ChaosPlan",
    "CircuitBreaker",
    "Lane",
    "CycleBudgetExhausted",
    "DEFAULT_TIMEOUT_S",
    "EventBudgetExhausted",
    "FAILURE_CLASSES",
    "FailureDiagnostics",
    "FaultPlan",
    "Ledger",
    "LedgerAudit",
    "MaintenanceReport",
    "POINTS",
    "PoisonedCell",
    "RespawnBackoff",
    "RunSupervisor",
    "SimulationDeadlock",
    "SimulationFailure",
    "SWEEP_MAX_CYCLES",
    "SWEEP_MAX_EVENTS",
    "SweepReport",
    "TrueDeadlock",
    "WatchdogTimeout",
    "WorkerCrash",
    "classify",
    "design_space_sweep",
    "execute_cell",
    "execute_lanes",
    "is_transient",
    "open_ledger",
    "run_chaos_campaign",
    "static_rejection",
    "summarize",
    "sweep_cells",
]
