"""Deterministic, seeded fault injection for the campaign runtime.

The distributed-sweep north star turns worker crashes, torn writes,
and stuck processes from rare accidents into steady state.  This
module makes the campaign runtime *provably* crash-consistent under
those faults: a seeded :class:`ChaosPlan` decides -- purely from
``sha256(seed, point, cell identity)`` -- which of the named
injection :data:`POINTS` fire where, the runtime recovers using only
its production machinery (resume, repair, circuit breaker, backoff),
and :class:`ChaosInvariants` proves the result is bit-identical to an
undisturbed serial run.

Injection points::

    worker_kill     SIGKILL the supervisor's child mid-cell
    worker_stall    child sleeps past the watchdog allowance
    poison          child dies on *every* attempt (breaker must trip)
    scheduler_kill  SIGKILL a scheduler worker right after dispatch
    driver_crash    driver dies between two ledger batches
    torn_line       a ledger line is truncated mid-write (driver dies)
    corrupt_line    a ledger line's bytes rot after landing
    dup_line        a ledger line is written twice
    fsync_error     fsync raises ENOSPC once (disk full)
    result_delay    a worker's verdict is delivered late

Determinism is the point: the same seed fires the same faults at the
same cells in every run, so a chaos failure reproduces exactly.
Selection needs no RNG state in workers -- the plan is a frozen
dataclass that pickles into them.  Driver-side one-shot state lives in
the :class:`ChaosController`, which persists across campaign passes,
so every fault fires at most once and the resume loop provably
converges.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from ..obs.metrics import (
    MetricsRegistry,
    aggregate_records,
    deterministic_counters,
)
from .ledger import Ledger, LedgerAudit
from .spec import CellSpec
from .supervisor import RunSupervisor
from .sweep import SweepReport, design_space_sweep

#: The injection-point catalogue.  Every point has a matching
#: ``chaos_<point>`` counter in :data:`repro.obs.metrics.CHAOS_COUNTERS`
#: (asserted by the registry-sync test) and a recovery test in
#: ``tests/harness/test_chaos.py``.
POINTS = (
    "worker_kill",
    "worker_stall",
    "poison",
    "scheduler_kill",
    "driver_crash",
    "torn_line",
    "corrupt_line",
    "dup_line",
    "fsync_error",
    "result_delay",
)


class ChaosDriverCrash(RuntimeError):
    """The emulated driver death.  Deliberately *not* an ``OSError``:
    the ledger's append-retry path must never swallow it -- a dead
    driver does not retry anything."""


def _chance(seed: int, point: str, key: str) -> float:
    """Deterministic uniform [0, 1) draw for (seed, point, key)."""
    digest = hashlib.sha256(
        f"{seed}:{point}:{key}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class Sabotage:
    """One injected misbehavior for a supervised attempt, decided
    driver-side and shipped to the child, which applies it blindly
    (no chaos logic runs in children).  ``retryable`` tells the
    supervisor the failure was injected: retry the same spec without
    burning the real retry budget."""

    point: str
    stall_s: float = 0.0
    kill: bool = False
    retryable: bool = True

    def apply(self) -> None:  # pragma: no cover - dies by design
        if self.stall_s > 0:
            time.sleep(self.stall_s)
        if self.kill:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class ChaosPlan:
    """The seeded, picklable fault schedule.

    ``selected(point, key)`` is a pure function, so the driver, the
    workers, and the invariant checker all agree on which faults
    belong to which cells without sharing any state.  ``rate`` is the
    per-(point, cell) firing probability; ``poison_rate`` is separate
    because poisoning is the most invasive injection (three forced
    dispatches per poisoned cell).
    """

    seed: int = 0
    points: tuple[str, ...] = POINTS
    rate: float = 0.25
    poison_rate: float = 0.0
    stall_s: float = 2.0  # must exceed the supervisor watchdog
    delay_s: float = 0.05
    crash_batch: int = 0  # 0 = derive from the seed

    def __post_init__(self) -> None:
        unknown = set(self.points) - set(POINTS)
        if unknown:
            raise ValueError(f"unknown chaos points: {sorted(unknown)}")

    def selected(self, point: str, key: str) -> bool:
        if point not in self.points:
            return False
        rate = self.poison_rate if point == "poison" else self.rate
        return _chance(self.seed, point, key) < rate

    def resolved_crash_batch(self) -> int:
        return self.crash_batch or 1 + self.seed % 3

    def sabotage_for(self, spec: CellSpec,
                     attempt: int) -> Optional[Sabotage]:
        """The sabotage (if any) for one supervised attempt of one
        cell.  ``poison`` fires on *every* attempt -- that is what
        forces the circuit breaker to trip -- while ``worker_kill``
        and ``worker_stall`` fire only on the first, so the
        supervisor's injected-failure retry succeeds."""
        identity = spec.identity_hash()
        if self.selected("poison", identity):
            return Sabotage("poison", kill=True, retryable=False)
        if attempt == 1:
            if self.selected("worker_kill", identity):
                return Sabotage("worker_kill", kill=True)
            if self.selected("worker_stall", identity):
                return Sabotage("worker_stall", stall_s=self.stall_s)
        return None

    def controller(self) -> "ChaosController":
        return ChaosController(self)


class ChaosController:
    """Driver-side chaos state: one-shot firing memory, the injection
    event log, and the counters.

    One instance spans a whole campaign -- including every resume pass
    -- so each (point, key) fires at most once ever.  That is the
    convergence argument: each pass either finishes cleanly or burns
    at least one injection, and the injection supply is finite.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.events: list[dict] = []
        self.registry = MetricsRegistry()
        self._once: set[tuple[str, str]] = set()
        self._batches = 0
        self._fsyncs = 0
        self._crash_after_write = False
        self._fsync_fired = False
        self._driver_crash_fired = False

    # ------------------------------------------------------------------
    def _record(self, point: str, key: str) -> None:
        self.events.append({"point": point, "key": key})
        self.registry.counter("chaos_injections_total").inc()
        self.registry.counter(f"chaos_{point}").inc()

    def _fire(self, point: str, key: str) -> bool:
        """True exactly once per (point, key) the plan selects."""
        if not self.plan.selected(point, key):
            return False
        if (point, key) in self._once:
            return False
        self._once.add((point, key))
        self._record(point, key)
        return True

    # -- ledger hooks ---------------------------------------------------
    def mangle_lines(self, pairs: Sequence[tuple[dict, str]]) -> list[str]:
        """Corrupt an append batch on its way to disk.  ``pairs`` are
        ``(sealed record, serialized line)``; returns the lines to
        actually write.  A torn line is moved to the end of the batch
        and truncated without its newline -- exactly the byte pattern
        a mid-``write`` driver death leaves -- and the following
        :meth:`fsync_gate` then kills the driver, because a torn line
        followed by further appends would not be torn at all."""
        lines: list[str] = []
        torn: Optional[str] = None
        for record, line in pairs:
            key = record.get("hash", "")
            if self._fire("dup_line", key):
                lines.append(line)
                lines.append(line)
                continue
            if self._fire("corrupt_line", key):
                body = line.rstrip("\n")
                mid = len(body) // 2
                lines.append(
                    body[:mid] + "#chaos#" + body[mid + 7:] + "\n"
                )
                continue
            if torn is None and self._fire("torn_line", key):
                torn = line
                continue
            lines.append(line)
        if torn is not None:
            body = torn.rstrip("\n")
            lines.append(body[: max(1, len(body) // 2)])
            self._crash_after_write = True
        return lines

    def fsync_gate(self) -> None:
        """Called by the ledger between ``flush`` and ``fsync``.  May
        kill the driver (after a torn write) or fail the fsync once
        with ``ENOSPC`` -- the ledger's append-retry path must absorb
        the latter."""
        if self._crash_after_write:
            self._crash_after_write = False
            raise ChaosDriverCrash(
                "driver died mid-append (torn ledger line written)"
            )
        self._fsyncs += 1
        if ("fsync_error" in self.plan.points
                and not self._fsync_fired
                and self.plan.selected("fsync_error",
                                       f"fsync:{self._fsyncs}")):
            self._fsync_fired = True
            self._record("fsync_error", f"fsync:{self._fsyncs}")
            raise OSError(errno.ENOSPC,
                          "chaos: injected fsync failure (disk full)")

    # -- scheduler hooks ------------------------------------------------
    def driver_batch_gate(self) -> None:
        """Called by the driver after each durable ledger batch; kills
        the driver once at the seeded batch number.  Records already
        written survive; everything in memory is lost -- resume must
        recover the rest."""
        self._batches += 1
        if ("driver_crash" in self.plan.points
                and not self._driver_crash_fired
                and self._batches >= self.plan.resolved_crash_batch()):
            self._driver_crash_fired = True
            self._record("driver_crash", f"batch:{self._batches}")
            raise ChaosDriverCrash(
                f"driver died after ledger batch {self._batches}"
            )

    def kill_worker(self, identity: str) -> bool:
        """Whether to SIGKILL the scheduler worker a cell was just
        dispatched to (once per cell)."""
        return self._fire("scheduler_kill", identity)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self.events:
            return "no injections fired"
        by_point: dict[str, int] = {}
        for event in self.events:
            by_point[event["point"]] = by_point.get(event["point"], 0) + 1
        parts = [f"{point} x{count}"
                 for point, count in sorted(by_point.items())]
        return f"{len(self.events)} injection(s): " + ", ".join(parts)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@dataclass
class InvariantResult:
    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        text = f"[{mark}] {self.name}"
        if self.detail:
            text += f": {self.detail}"
        return text


def _verdict_tuple(record: dict) -> tuple:
    return (
        record.get("status"),
        record.get("aipc"),
        record.get("failure_class"),
        record.get("retries"),
    )


def _clean_counters(records: Sequence[dict]) -> dict[str, int]:
    reg = aggregate_records(records)
    return {
        name: value
        for name, value in deterministic_counters(reg).items()
        if not name.startswith("chaos_")
    }


class ChaosInvariants:
    """The oracle: after chaos + recovery, the healed ledger must be
    indistinguishable -- cell for cell, counter for counter -- from an
    undisturbed serial baseline, except for cells the plan poisoned.
    Reuses the parallel==serial aggregation discipline (PR 3) as the
    definition of "indistinguishable"."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan

    def check(
        self,
        baseline: dict[str, dict],
        healed: dict[str, dict],
        audit: Optional[LedgerAudit] = None,
        aborted: Optional[str] = None,
        expect_poison: bool = True,
    ) -> list[InvariantResult]:
        results: list[InvariantResult] = []
        base_keys = set(baseline)
        healed_keys = set(healed)

        lost = sorted(base_keys - healed_keys)
        if aborted:
            results.append(InvariantResult(
                "no_cell_lost", True,
                f"skipped: campaign aborted ({aborted})",
            ))
        else:
            results.append(InvariantResult(
                "no_cell_lost", not lost,
                f"{len(lost)} baseline cell(s) missing: {lost[:3]}"
                if lost else f"{len(base_keys)} cell(s) all present",
            ))

        extra = sorted(healed_keys - base_keys)
        results.append(InvariantResult(
            "no_extra_cells", not extra,
            f"{len(extra)} unexpected cell(s): {extra[:3]}"
            if extra else "",
        ))

        if audit is not None:
            dup_free = audit.clean and audit.superseded == 0
            results.append(InvariantResult(
                "no_double_count", dup_free,
                audit.summary() if not dup_free
                else f"{audit.records} record(s), one line each",
            ))

        poisoned = {
            cell: record for cell, record in healed.items()
            if record.get("status") == "poisoned"
        }
        shared = base_keys & healed_keys
        mismatched = [
            cell for cell in sorted(shared - set(poisoned))
            if _verdict_tuple(baseline[cell])
            != _verdict_tuple(healed[cell])
        ]
        results.append(InvariantResult(
            "verdicts_match", not mismatched,
            f"{len(mismatched)} divergent verdict(s): {mismatched[:3]}"
            if mismatched
            else f"{len(shared) - len(poisoned)} verdict(s) identical",
        ))

        poison_ok = True
        details = []
        for cell, record in sorted(poisoned.items()):
            if record.get("failure_class") != "PoisonedCell":
                poison_ok = False
                details.append(f"{cell}: wrong class "
                               f"{record.get('failure_class')}")
                continue
            spec_dict = record.get("spec")
            identity = (CellSpec.from_dict(spec_dict).identity_hash()
                        if spec_dict else "")
            if not self.plan.selected("poison", identity):
                poison_ok = False
                details.append(f"{cell}: poisoned but never targeted")
        if expect_poison and not aborted:
            expected = {
                cell for cell, record in baseline.items()
                if record.get("spec") and self.plan.selected(
                    "poison",
                    CellSpec.from_dict(record["spec"]).identity_hash(),
                )
            }
            unpoisoned = sorted(expected - set(poisoned))
            if unpoisoned:
                poison_ok = False
                details.append(
                    f"{len(unpoisoned)} targeted cell(s) not "
                    f"quarantined: {unpoisoned[:3]}"
                )
        results.append(InvariantResult(
            "poisoned_terminal_and_injected", poison_ok,
            "; ".join(details) if details
            else f"{len(poisoned)} poisoned cell(s), all targeted",
        ))

        compare = sorted(shared - set(poisoned))
        base_counters = _clean_counters(
            [baseline[cell] for cell in compare])
        healed_counters = _clean_counters(
            [healed[cell] for cell in compare])
        diff = {
            name
            for name in set(base_counters) | set(healed_counters)
            if base_counters.get(name, 0) != healed_counters.get(name, 0)
        }
        results.append(InvariantResult(
            "aggregation_identical", not diff,
            f"divergent counters: {sorted(diff)}" if diff
            else f"{len(base_counters)} counter(s) bit-identical",
        ))
        return results


# ----------------------------------------------------------------------
# The campaign runner
# ----------------------------------------------------------------------
@dataclass
class ChaosCampaignReport:
    """Everything one chaos campaign produced: which injections fired,
    what recovery did, and whether the invariants held."""

    plan: ChaosPlan
    passes: int = 0
    injections: list[dict] = field(default_factory=list)
    repairs: list[str] = field(default_factory=list)
    invariants: list[InvariantResult] = field(default_factory=list)
    baseline_cells: int = 0
    healed_cells: int = 0
    aborted: Optional[str] = None
    audit_summary: str = ""
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    sweep_report: Optional[SweepReport] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.invariants)

    def to_dict(self) -> dict:
        return {
            "seed": self.plan.seed,
            "points": list(self.plan.points),
            "rate": self.plan.rate,
            "poison_rate": self.plan.poison_rate,
            "passes": self.passes,
            "injections": self.injections,
            "repairs": self.repairs,
            "invariants": [
                {"name": r.name, "ok": r.ok, "detail": r.detail}
                for r in self.invariants
            ],
            "baseline_cells": self.baseline_cells,
            "healed_cells": self.healed_cells,
            "aborted": self.aborted,
            "audit": self.audit_summary,
            "counters": self.registry.counters,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"chaos campaign: seed {self.plan.seed}, "
            f"{len(self.plan.points)} point(s) armed, rate "
            f"{self.plan.rate}",
            f"passes: {self.passes}; injections fired: "
            f"{len(self.injections)}",
        ]
        by_point: dict[str, int] = {}
        for event in self.injections:
            by_point[event["point"]] = by_point.get(event["point"], 0) + 1
        for point in POINTS:
            if point in by_point:
                lines.append(f"  {point:<16}x{by_point[point]}")
        for repair in self.repairs:
            lines.append(f"repair: {repair}")
        if self.aborted:
            lines.append(f"ABORTED: {self.aborted}")
        lines.append(f"ledger: {self.audit_summary}")
        lines.append("invariants:")
        for result in self.invariants:
            lines.append(f"  {result.render()}")
        lines.append("VERDICT: " + ("all invariants held"
                                    if self.ok else "INVARIANT VIOLATED"))
        return "\n".join(lines)


def run_chaos_campaign(
    designs: Sequence,
    names: Sequence[str],
    *,
    plan: ChaosPlan,
    workdir,
    scale=None,
    jobs: int = 2,
    isolation: str = "process",
    timeout_s: float = 30.0,
    max_passes: int = 10,
    failure_budget: Optional[float] = None,
    progress=None,
) -> ChaosCampaignReport:
    """Run one seeded chaos campaign end to end.

    Phase 1 runs the undisturbed serial baseline (same supervisor
    policy, no chaos) -- the oracle.  Phase 2 loops the chaos sweep
    with ``resume=True``: each pass either completes, dies to an
    injected driver crash, or aborts on the failure budget; between
    passes the ledger is verified and repaired.  Because the
    controller's one-shot state spans passes, the loop converges
    within the injection supply.  Phase 3 compacts the ledger and runs
    :class:`ChaosInvariants` against the baseline.

    ``threaded`` sweeps are deliberately not supported here: a
    poisoned cell retires its lane, which would orphan the lane's
    later thread counts and (correctly) trip ``no_cell_lost``.  The
    campaign therefore runs every ``(design, workload)`` as a
    single-cell lane.
    """
    from ..workloads.base import Scale

    if scale is None:
        scale = Scale.TINY
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    baseline_path = workdir / "baseline.jsonl"
    chaos_path = workdir / "chaos.jsonl"
    policy = dict(timeout_s=timeout_s, isolation=isolation)

    _, baseline_report = design_space_sweep(
        designs, names, scale, threaded=False,
        ledger_path=baseline_path,
        supervisor=RunSupervisor(**policy),
        jobs=1, progress=progress,
    )
    baseline = Ledger(baseline_path).load()
    expected = set(baseline)

    controller = plan.controller()
    report = ChaosCampaignReport(plan=plan)
    report.baseline_cells = len(baseline)
    last_sweep: Optional[SweepReport] = None
    while report.passes < max_passes:
        report.passes += 1
        try:
            _, sweep_report = design_space_sweep(
                designs, names, scale, threaded=False,
                ledger_path=chaos_path, resume=True,
                supervisor=RunSupervisor(chaos=plan, **policy),
                jobs=jobs, chaos=controller,
                failure_budget=failure_budget, progress=progress,
            )
            last_sweep = sweep_report
        except ChaosDriverCrash:
            sweep_report = None  # driver "died"; resume next pass
        if sweep_report is not None and sweep_report.aborted:
            report.aborted = sweep_report.aborted
            break
        ledger = Ledger(chaos_path)
        audit = ledger.verify()
        if not audit.clean:
            maintenance = ledger.repair()
            report.repairs.append(maintenance.summary())
            controller.registry.counter("ledger_repairs").inc()
            controller.registry.counter("ledger_lines_quarantined").inc(
                maintenance.quarantined
            )
            continue  # resume refills the quarantined cells
        if sweep_report is not None and \
                expected <= set(ledger.load()):
            break

    final = Ledger(chaos_path)
    compaction = final.compact()
    if compaction.rewritten:
        controller.registry.counter("ledger_compactions").inc()
        controller.registry.counter("ledger_lines_quarantined").inc(
            compaction.quarantined
        )
        report.repairs.append(compaction.summary())
    audit = final.verify()
    healed = final.load()
    report.healed_cells = len(healed)
    report.audit_summary = audit.summary()
    # Worker-side injections (sabotage, result delays) fire inside
    # worker processes, out of the controller's sight -- but selection
    # is deterministic, so reconstruct them from the plan.  Sabotage
    # needs process isolation; result delays need scheduler workers.
    for record in baseline.values():
        spec_dict = record.get("spec")
        if not spec_dict or record.get("attempts", 1) == 0:
            continue
        identity = CellSpec.from_dict(spec_dict).identity_hash()
        if isolation == "process":
            sabotage = plan.sabotage_for(
                CellSpec.from_dict(spec_dict), attempt=1)
            if sabotage is not None:
                controller._record(sabotage.point, identity)
        if jobs > 1 and plan.selected("result_delay", identity):
            controller._record("result_delay", identity)
    report.injections = list(controller.events)
    report.registry = controller.registry
    report.sweep_report = last_sweep
    report.invariants = ChaosInvariants(plan).check(
        baseline, healed, audit=audit, aborted=report.aborted,
        expect_poison=(isolation == "process"),
    )
    return report


def plan_for_seed(seed: int, **overrides) -> ChaosPlan:
    """Convenience constructor used by the CLI and CI: a full-catalogue
    plan for one seed, with field overrides."""
    return replace(ChaosPlan(seed=seed), **overrides) \
        if overrides else ChaosPlan(seed=seed)


def dump_report(report: ChaosCampaignReport, path) -> None:
    """Write the campaign report as JSON (the CI artifact)."""
    Path(path).write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    )
