"""Deterministic fault injection for the simulation engine.

A :class:`FaultPlan` attached to an :class:`~repro.sim.engine.Engine`
(``engine.faults = plan``, or threaded through
``WaveScalarProcessor.run_workload(..., faults=plan)``) perturbs a run
in a reproducible way.  Each knob exists to force exactly one class of
the failure taxonomy, so the supervisor's catch/classify/retry logic
can be proven against real failures instead of mocks:

===========================  =======================================
knob                         failure class it provokes
===========================  =======================================
``drop_every_n``             :class:`~repro.sim.failures.TrueDeadlock`
                             (a partner token never arrives)
``stall_pe``                 :class:`~repro.sim.failures.TrueDeadlock`
                             (one tile goes dark)
``max_cycles``               :class:`~repro.sim.failures
                             .CycleBudgetExhausted`
``max_events``               :class:`~repro.sim.failures
                             .EventBudgetExhausted`
``wall_sleep_per_event_s``   :class:`~repro.sim.failures
                             .WatchdogTimeout` (supervisor kills the
                             hung worker)
===========================  =======================================

Everything is counter-based -- no randomness -- so a plan injects the
same faults at the same points on every run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault-injection configuration."""

    #: Swallow every Nth operand delivery (after ``drop_after``).
    drop_every_n: Optional[int] = None
    #: Deliveries to let through before ``drop_every_n`` engages.
    drop_after: int = 0
    #: Swallow every operand destined for this PE.
    stall_pe: Optional[int] = None
    #: Override the engine's simulated-cycle budget (starvation).
    max_cycles: Optional[int] = None
    #: Override the engine's event budget (starvation).
    max_events: Optional[int] = None
    #: Sleep this long per processed event -- simulates a hung or
    #: pathologically slow worker for watchdog testing.
    wall_sleep_per_event_s: float = 0.0

    def __post_init__(self) -> None:
        if self.drop_every_n is not None and self.drop_every_n < 1:
            raise ValueError("drop_every_n must be >= 1")
        if self.wall_sleep_per_event_s < 0:
            raise ValueError("wall_sleep_per_event_s cannot be negative")

    @property
    def active(self) -> bool:
        return any(
            v is not None and v != 0 and v != 0.0
            for v in asdict(self).values()
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
