"""Append-only JSONL checkpointing for sweeps.

Every completed cell -- success or classified failure -- becomes one
JSON line keyed by the cell's content hash.  Appends are flushed and
fsynced, so a SIGKILL of the driver loses at most the line being
written; :meth:`Ledger.load` tolerates a truncated final line for
exactly that reason.  Resuming a sweep is then just "skip every cell
whose hash already has a record".
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from .spec import CellSpec

#: Record schema version, bumped on incompatible changes.
LEDGER_VERSION = 1


class Ledger:
    """One results ledger file (created lazily on first append)."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """All records keyed by cell hash; the last record for a hash
        wins, and a torn trailing line (killed mid-write) is skipped."""
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at the kill point
                cell = record.get("hash")
                if cell:
                    records[cell] = record
        return records

    def append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    @staticmethod
    def record_for(spec: CellSpec, result) -> dict:
        """Serialise a supervisor :class:`~repro.harness.supervisor
        .CellResult` into one ledger record."""
        record = {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": result.status,
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": result.attempts,
            "retries": result.retries,
            "wall_s": round(result.wall_s, 3),
            "ts": time.time(),
            "spec": spec.as_dict(),
        }
        if result.status == "ok":
            record.update(result.outcome)
            record["status"] = "ok"  # outcome dict also carries status
        else:
            record["failure_class"] = result.failure_class
            record["failure_detail"] = result.failure_detail
            if result.diagnostics is not None:
                record["diagnostics"] = result.diagnostics
        return record

    @staticmethod
    def record_invalid(spec: CellSpec, diagnostics) -> dict:
        """Serialise a statically rejected cell: the pre-validation
        stage found the configuration unrealizable, so no subprocess
        ever ran (``attempts == 0``).  ``diagnostics`` is a list of
        :class:`~repro.analysis.Diagnostic` objects."""
        first = diagnostics[0] if diagnostics else None
        return {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": "invalid",
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": 0,
            "retries": 0,
            "wall_s": 0.0,
            "ts": time.time(),
            "spec": spec.as_dict(),
            "failure_class": "ConfigRuleViolation",
            "failure_detail": first.message if first else "",
            "diagnostics": [d.to_dict() for d in diagnostics],
        }


def summarize(records: dict[str, dict]) -> dict[str, int]:
    """Status counts over a loaded ledger (for reports and tests)."""
    counts: dict[str, int] = {}
    for record in records.values():
        counts[record.get("status", "?")] = \
            counts.get(record.get("status", "?"), 0) + 1
    return counts


def open_ledger(path) -> Optional[Ledger]:
    """``Ledger(path)`` or ``None`` for a falsy path -- callers can
    thread an optional ledger argument straight through."""
    return Ledger(path) if path else None
