"""Append-only JSONL checkpointing for sweeps.

Every completed cell -- success or classified failure -- becomes one
JSON line keyed by the cell's content hash.  Appends are flushed and
fsynced, so a SIGKILL of the driver loses at most the line being
written; :meth:`Ledger.load` tolerates a truncated final line for
exactly that reason.  Resuming a sweep is then just "skip every cell
whose hash already has a record".

Concurrency contract: the ledger has exactly ONE writer -- the sweep
driver.  Parallel workers (see :mod:`repro.harness.scheduler`) never
touch the file; they ship verdicts back over a queue and the driver
appends them, batched through :meth:`Ledger.append_many` so a drain of
N results costs one write + one fsync instead of N.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, Optional

from .spec import CellSpec

#: Record schema version, bumped on incompatible changes.
LEDGER_VERSION = 1


class Ledger:
    """One results ledger file (created lazily on first append)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        #: Corrupt (torn / non-JSON) lines seen by the last ``load()``
        #: or ``__len__`` scan; a healthy ledger has zero.
        self.torn_lines = 0
        # Incremental length accounting: byte offset of the last
        # complete line scanned, and the distinct hashes seen so far.
        self._scanned_bytes = 0
        self._hashes: set[str] = set()

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """All records keyed by cell hash; the last record for a hash
        wins, and a torn trailing line (killed mid-write) is skipped.
        The number of skipped lines is left on :attr:`torn_lines`."""
        records: dict[str, dict] = {}
        torn = 0
        if not self.path.exists():
            self.torn_lines = 0
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue  # torn write at the kill point
                cell = record.get("hash")
                if cell:
                    records[cell] = record
        self.torn_lines = torn
        return records

    def append(self, record: dict) -> None:
        self.append_many((record,))

    def append_many(self, records: Iterable[dict]) -> None:
        """Append a batch of records with ONE write + flush + fsync.

        The parallel driver's result-drain loop lands several verdicts
        per wakeup; batching them keeps the fsync cost per drained
        batch constant while every line is still durable before the
        call returns.
        """
        lines = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        if not lines:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(lines)
            fh.flush()
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        """Distinct cell hashes on disk.

        Incremental: only bytes appended since the previous call are
        parsed (a progress bar polling ``len(ledger)`` after every cell
        used to re-read the whole campaign file each time, an O(n^2)
        scan overall).  A trailing partial line is not counted until a
        later call sees its terminating newline.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            self._scanned_bytes = 0
            self._hashes.clear()
            return 0
        if size < self._scanned_bytes:  # truncated/replaced: rescan
            self._scanned_bytes = 0
            self._hashes.clear()
        if size == self._scanned_bytes:
            return len(self._hashes)
        with self.path.open("rb") as fh:
            fh.seek(self._scanned_bytes)
            chunk = fh.read()
        complete = chunk.rfind(b"\n") + 1
        for raw in chunk[:complete].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.torn_lines += 1
                continue
            cell = record.get("hash")
            if cell:
                self._hashes.add(cell)
        self._scanned_bytes += complete
        return len(self._hashes)

    # ------------------------------------------------------------------
    @staticmethod
    def record_for(spec: CellSpec, result) -> dict:
        """Serialise a supervisor :class:`~repro.harness.supervisor
        .CellResult` into one ledger record."""
        record = {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": result.status,
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": result.attempts,
            "retries": result.retries,
            "wall_s": round(result.wall_s, 3),
            "ts": time.time(),
            "spec": spec.as_dict(),
        }
        if result.status == "ok":
            record.update(result.outcome)
            record["status"] = "ok"  # outcome dict also carries status
        else:
            record["failure_class"] = result.failure_class
            record["failure_detail"] = result.failure_detail
            if result.diagnostics is not None:
                record["diagnostics"] = result.diagnostics
        # Every record carries a metrics block (see repro.obs.metrics):
        # successful cells get theirs from the outcome payload; failed
        # cells still record the wall time they burned, so campaign
        # aggregation accounts for failures too.
        metrics = dict(record.get("metrics") or {})
        metrics.setdefault("wall_s", round(result.wall_s, 6))
        record["metrics"] = metrics
        return record

    @staticmethod
    def record_invalid(spec: CellSpec, diagnostics) -> dict:
        """Serialise a statically rejected cell: the pre-validation
        stage found the configuration unrealizable, so no subprocess
        ever ran (``attempts == 0``).  ``diagnostics`` is a list of
        :class:`~repro.analysis.Diagnostic` objects."""
        first = diagnostics[0] if diagnostics else None
        return {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": "invalid",
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": 0,
            "retries": 0,
            "wall_s": 0.0,
            "ts": time.time(),
            "spec": spec.as_dict(),
            "failure_class": "ConfigRuleViolation",
            "failure_detail": first.message if first else "",
            "diagnostics": [d.to_dict() for d in diagnostics],
        }


def summarize(records: dict[str, dict], torn_lines: int = 0) -> dict[str, int]:
    """Status counts over a loaded ledger (for reports and tests).

    ``torn_lines`` (as counted by :meth:`Ledger.load`) is surfaced
    under its own key when non-zero, so resume diagnostics can report
    corruption instead of silently dropping it.
    """
    counts: dict[str, int] = {}
    for record in records.values():
        status = record.get("status", "?")
        counts[status] = counts.get(status, 0) + 1
    if torn_lines:
        counts["torn_lines"] = torn_lines
    return counts


def open_ledger(path) -> Optional[Ledger]:
    """``Ledger(path)`` or ``None`` for a falsy path -- callers can
    thread an optional ledger argument straight through."""
    return Ledger(path) if path else None
