"""Append-only JSONL checkpointing for sweeps, with self-healing.

Every completed cell -- success or classified failure -- becomes one
JSON line keyed by the cell's content hash.  Appends are flushed and
fsynced, so a SIGKILL of the driver loses at most the line being
written; :meth:`Ledger.load` tolerates a truncated final line for
exactly that reason.  Resuming a sweep is then just "skip every cell
whose hash already has a record".

Integrity: every appended record is *sealed* -- the single writer
assigns a monotonic ``seq`` number, stamps the schema ``version``,
and attaches a CRC32 ``crc`` over the record's canonical JSON.  A
record whose bytes rot (bad disk, torn write landing mid-file, a
stray editor) fails its checksum and is skipped by :meth:`load` and
quarantined by :meth:`repair` instead of being silently trusted.
``seq`` is what orders records: the wall-clock ``ts`` field is kept
for humans only (see :meth:`record_for`).

Maintenance: :meth:`verify` audits the file line by line,
:meth:`repair` rewrites it with corrupt lines moved to a
``.quarantine`` sidecar (reason attached), and :meth:`compact`
additionally collapses superseded records (same hash, lower ``seq``).
Both rewrites go through an atomic temp-file rename, so a crash
mid-maintenance leaves either the old file or the new one -- never a
half-written ledger.

Concurrency contract: the ledger has exactly ONE writer -- the sweep
driver.  Parallel workers (see :mod:`repro.harness.scheduler`) never
touch the file; they ship verdicts back over a queue and the driver
appends them, batched through :meth:`Ledger.append_many` so a drain of
N results costs one write + one fsync instead of N.  An append whose
``fsync`` fails (disk full, dying device) is retried once by
re-appending the whole batch: that is safe because :meth:`load`
deduplicates by hash and :meth:`compact` collapses the duplicates, so
at-least-once delivery is idempotent.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .spec import CellSpec

#: Record schema version, bumped on incompatible changes.
#: v1: bare records; v2: sealed records (``seq`` + ``crc``).
LEDGER_VERSION = 2


def _canonical(record: dict) -> bytes:
    """The canonical byte serialisation a record's CRC covers: every
    field except ``crc`` itself, sorted keys, tight separators."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _pluck(record: dict, name: str):
    """Resolve a (possibly dotted) field path against one record;
    ``None`` when any step is missing or not a dict."""
    value = record
    for part in name.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def record_checksum(record: dict) -> int:
    """CRC32 over the record's canonical JSON (non-ASCII workload
    names and NaN/Inf values included -- whatever ``json`` emits is
    what the checksum covers)."""
    return zlib.crc32(_canonical(record)) & 0xFFFFFFFF


def checksum_ok(record: dict) -> bool:
    """Whether a parsed record's ``crc`` matches its content.
    Records without a ``crc`` (schema v1) are accepted as unverified
    -- old ledgers stay readable."""
    crc = record.get("crc")
    if crc is None:
        return True
    return crc == record_checksum(record)


@dataclass
class LineIssue:
    """One problematic ledger line found by :meth:`Ledger.verify`."""

    line_no: int  # 1-based
    reason: str  # "torn" | "corrupt_json" | "crc_mismatch" | "no_hash"
    preview: str  # first bytes of the offending line

    def render(self) -> str:
        return f"line {self.line_no}: {self.reason} ({self.preview!r})"


@dataclass
class LedgerAudit:
    """The verdict of :meth:`Ledger.verify` over one ledger file."""

    lines: int = 0  # non-empty lines seen
    ok: int = 0  # sealed records whose checksum verified
    legacy: int = 0  # v1 records without a checksum (accepted)
    torn: int = 0  # truncated final line (killed mid-append)
    corrupt_json: int = 0  # unparseable line with a newline
    crc_mismatch: int = 0  # parseable record failing its checksum
    no_hash: int = 0  # parseable record without a cell hash
    records: int = 0  # distinct cell hashes among good lines
    superseded: int = 0  # good lines shadowed by a later record
    issues: list[LineIssue] = field(default_factory=list)

    @property
    def bad(self) -> int:
        return (self.torn + self.corrupt_json + self.crc_mismatch
                + self.no_hash)

    @property
    def clean(self) -> bool:
        return self.bad == 0

    def summary(self) -> str:
        text = (
            f"{self.lines} line(s): {self.ok} ok, {self.legacy} "
            f"unchecksummed, {self.superseded} superseded, "
            f"{self.records} distinct cell(s)"
        )
        if self.bad:
            text += (
                f"; {self.bad} BAD ({self.torn} torn, "
                f"{self.corrupt_json} corrupt, {self.crc_mismatch} "
                f"checksum mismatch, {self.no_hash} hashless)"
            )
        return text


@dataclass
class MaintenanceReport:
    """What :meth:`Ledger.repair` / :meth:`Ledger.compact` did."""

    action: str  # "repair" | "compact"
    kept: int = 0  # lines surviving the rewrite
    quarantined: int = 0  # bad lines moved to the sidecar
    collapsed: int = 0  # superseded records dropped (compact only)
    rewritten: bool = False  # False when the file was already clean
    sidecar: Optional[str] = None  # quarantine path when lines moved

    def summary(self) -> str:
        text = f"{self.action}: kept {self.kept} line(s)"
        if self.quarantined:
            text += f", quarantined {self.quarantined} -> {self.sidecar}"
        if self.collapsed:
            text += f", collapsed {self.collapsed} superseded"
        if not self.rewritten:
            text += " (ledger already clean; file untouched)"
        return text


class Ledger:
    """One results ledger file (created lazily on first append)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        #: Torn (truncated / non-JSON) lines seen by the last
        #: ``load()`` or ``__len__`` scan; a healthy ledger has zero.
        self.torn_lines = 0
        #: Parseable records that failed their checksum on the last
        #: ``load()`` -- corruption, not a torn write.
        self.corrupt_lines = 0
        #: Append batches re-written after an ``OSError`` (fsync
        #: failure / disk full); the retry is idempotent by hash.
        self.append_retries = 0
        #: Optional chaos controller (``repro.harness.chaos``): when
        #: set, appends pass through its mangle/fsync gates.  ``None``
        #: costs one attribute test per batch.
        self.chaos = None
        # Incremental length accounting: byte offset of the last
        # complete line scanned, the file's identity (inode), and the
        # distinct hashes seen so far.
        self._scanned_bytes = 0
        self._scanned_ino: Optional[int] = None
        self._hashes: set[str] = set()
        # Monotonic sequence assignment (single-writer); initialised
        # from the file's max seq on first append or load.
        self._next_seq: Optional[int] = None

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """All records keyed by cell hash; the record with the highest
        ``seq`` for a hash wins (file order for unsealed v1 records),
        a torn trailing line (killed mid-write) is skipped, and a
        record failing its checksum is skipped as corrupt.  Counts are
        left on :attr:`torn_lines` / :attr:`corrupt_lines`."""
        records: dict[str, dict] = {}
        torn = 0
        corrupt = 0
        max_seq = -1
        if not self.path.exists():
            self.torn_lines = 0
            self.corrupt_lines = 0
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue  # torn write at the kill point
                if not isinstance(record, dict):
                    torn += 1
                    continue
                if not checksum_ok(record):
                    corrupt += 1
                    continue
                cell = record.get("hash")
                if not cell:
                    continue
                seq = record.get("seq")
                if seq is not None and seq > max_seq:
                    max_seq = seq
                previous = records.get(cell)
                if previous is None:
                    records[cell] = record
                    continue
                # Highest seq wins; unsealed records fall back to
                # file order (later line wins), matching v1 behavior.
                prev_seq = previous.get("seq")
                if seq is None or prev_seq is None or seq >= prev_seq:
                    records[cell] = record
        self.torn_lines = torn
        self.corrupt_lines = corrupt
        if self._next_seq is None or max_seq + 1 > self._next_seq:
            self._next_seq = max_seq + 1
        return records

    # ------------------------------------------------------------------
    def _ensure_seq(self) -> None:
        if self._next_seq is not None:
            return
        max_seq = -1
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        seq = record.get("seq")
                        if seq is not None and seq > max_seq:
                            max_seq = seq
        self._next_seq = max_seq + 1

    def _seal(self, record: dict) -> None:
        """Assign the next monotonic ``seq``, stamp the schema
        version, and attach the checksum.  Re-sealing an already
        sealed record (the idempotent fsync-failure retry path) keeps
        its ``seq`` so the duplicate collapses cleanly."""
        if "seq" not in record:
            assert self._next_seq is not None
            record["seq"] = self._next_seq
            self._next_seq += 1
        record["version"] = LEDGER_VERSION
        record["crc"] = record_checksum(record)

    def append(self, record: dict) -> None:
        self.append_many((record,))

    def append_many(self, records: Iterable[dict]) -> None:
        """Append a batch of sealed records with ONE write + flush +
        fsync.

        The parallel driver's result-drain loop lands several verdicts
        per wakeup; batching them keeps the fsync cost per drained
        batch constant while every line is still durable before the
        call returns.  An ``OSError`` anywhere in the write/fsync path
        (disk full, failing device) is retried once by re-appending
        the whole batch -- safe because resume deduplicates by hash
        and ``compact`` collapses the duplicate lines.
        """
        records = list(records)
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._ensure_seq()
        for record in records:
            self._seal(record)
        try:
            self._write_batch(records)
        except OSError:
            self.append_retries += 1
            self._write_batch(records)

    def _write_batch(self, records: list[dict]) -> None:
        pairs = [
            (record, json.dumps(record, sort_keys=True) + "\n")
            for record in records
        ]
        if self.chaos is not None:
            lines = self.chaos.mangle_lines(pairs)
        else:
            lines = [line for _, line in pairs]
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write("".join(lines))
            fh.flush()
            if self.chaos is not None:
                self.chaos.fsync_gate()  # may raise OSError (chaos)
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        """Distinct cell hashes on disk.

        Incremental: only bytes appended since the previous call are
        parsed (a progress bar polling ``len(ledger)`` after every cell
        used to re-read the whole campaign file each time, an O(n^2)
        scan overall).  A trailing partial line is not counted until a
        later call sees its terminating newline.  The scan restarts
        from byte zero when the file shrank *or* its inode changed --
        ``repair()``/``compact()`` replace the file via rename, which
        can leave the size unchanged while the content differs.
        """
        try:
            st = self.path.stat()
        except OSError:
            self._scanned_bytes = 0
            self._scanned_ino = None
            self._hashes.clear()
            return 0
        replaced = (
            self._scanned_ino is not None
            and st.st_ino != self._scanned_ino
        )
        if st.st_size < self._scanned_bytes or replaced:
            self._scanned_bytes = 0
            self._hashes.clear()
        self._scanned_ino = st.st_ino
        if st.st_size == self._scanned_bytes:
            return len(self._hashes)
        with self.path.open("rb") as fh:
            fh.seek(self._scanned_bytes)
            chunk = fh.read()
        complete = chunk.rfind(b"\n") + 1
        for raw in chunk[:complete].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.torn_lines += 1
                continue
            cell = record.get("hash") if isinstance(record, dict) \
                else None
            if cell:
                self._hashes.add(cell)
        self._scanned_bytes += complete
        return len(self._hashes)

    # ------------------------------------------------------------------
    def iter_fields(self, *names: str):
        """Stream selected fields of every winning record as tuples.

        The training-set extractor (:mod:`repro.surrogate`) walks
        campaign ledgers that can hold orders of magnitude more lines
        than :meth:`load` was designed for; materializing every full
        record dict just to read three fields of each is the cost this
        method avoids.  Lines are decoded one at a time and only the
        *requested* fields are retained, so peak memory is
        ``O(records x len(names))`` regardless of record size.

        Field ``names`` may be dotted paths (``"spec.config.clusters"``
        descends into nested dicts); a missing field yields ``None``.
        Supersession and integrity rules match :meth:`load` exactly:
        the highest ``seq`` per cell hash wins (file order for
        unsealed v1 records), torn lines, checksum failures, and
        hashless records are skipped and counted on
        :attr:`torn_lines` / :attr:`corrupt_lines`.  Tuples come out
        in first-seen hash order -- deterministic for a given file.
        """
        torn = 0
        corrupt = 0
        # hash -> [first-seen index, (seq, line_no) key, values tuple]
        winners: dict[str, list] = {}
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                for line_no, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        torn += 1
                        continue
                    if not isinstance(record, dict):
                        torn += 1
                        continue
                    if not checksum_ok(record):
                        corrupt += 1
                        continue
                    cell = record.get("hash")
                    if not cell:
                        continue
                    seq = record.get("seq")
                    key = (seq if seq is not None else -1, line_no)
                    values = tuple(
                        _pluck(record, name) for name in names
                    )
                    entry = winners.get(cell)
                    if entry is None:
                        winners[cell] = [len(winners), key, values]
                    elif key >= entry[1]:
                        entry[1] = key
                        entry[2] = values
        self.torn_lines = torn
        self.corrupt_lines = corrupt
        for entry in sorted(winners.values(), key=lambda e: e[0]):
            yield entry[2]

    # ------------------------------------------------------------------
    # Integrity: verify / repair / compact
    # ------------------------------------------------------------------
    def verify(self) -> LedgerAudit:
        """Audit every line: parseability, checksum, hash presence,
        and supersession.  Pure read -- the file is never modified."""
        audit = LedgerAudit()
        if not self.path.exists():
            return audit
        latest: dict[str, tuple] = {}  # hash -> (seq, line_no)
        data = self.path.read_bytes()
        raw_lines = data.split(b"\n")
        trailing_newline = data.endswith(b"\n")
        last_index = len(raw_lines) - 1
        for index, raw in enumerate(raw_lines):
            if not raw.strip():
                continue
            line_no = index + 1
            audit.lines += 1
            at_eof_unterminated = (
                index == last_index and not trailing_newline
            )
            text = raw.decode("utf-8", errors="replace").strip()
            preview = text[:48]
            try:
                record = json.loads(text)
                if not isinstance(record, dict):
                    raise json.JSONDecodeError("not an object", text, 0)
            except json.JSONDecodeError:
                if at_eof_unterminated:
                    audit.torn += 1
                    audit.issues.append(
                        LineIssue(line_no, "torn", preview))
                else:
                    audit.corrupt_json += 1
                    audit.issues.append(
                        LineIssue(line_no, "corrupt_json", preview))
                continue
            if not checksum_ok(record):
                audit.crc_mismatch += 1
                audit.issues.append(
                    LineIssue(line_no, "crc_mismatch", preview))
                continue
            if "crc" in record:
                audit.ok += 1
            else:
                audit.legacy += 1
            cell = record.get("hash")
            if not cell:
                audit.no_hash += 1
                audit.issues.append(LineIssue(line_no, "no_hash",
                                              preview))
                continue
            seq = record.get("seq")
            key = (seq if seq is not None else -1, line_no)
            previous = latest.get(cell)
            if previous is None or key >= previous:
                latest[cell] = key
        audit.records = len(latest)
        good = audit.ok + audit.legacy - audit.no_hash
        audit.superseded = max(0, good - audit.records)
        return audit

    def repair(self) -> MaintenanceReport:
        """Quarantine every bad line (torn, corrupt, failed checksum)
        into ``<path>.quarantine`` with its reason, and rewrite the
        ledger with only verifiable lines -- atomically, via temp-file
        rename.  A clean ledger is left untouched."""
        return self._rewrite(collapse=False)

    def compact(self) -> MaintenanceReport:
        """Repair plus collapse: superseded records (same cell hash,
        lower ``seq``; file order for unsealed records) are dropped,
        leaving exactly one line per cell.  Crash-consistent: the new
        file is written beside the old one, fsynced, and renamed over
        it in one atomic step."""
        return self._rewrite(collapse=True)

    def _rewrite(self, collapse: bool) -> MaintenanceReport:
        action = "compact" if collapse else "repair"
        report = MaintenanceReport(action=action)
        audit = self.verify()
        if audit.clean and not (collapse and audit.superseded):
            report.kept = audit.lines
            return report
        bad_lines = {issue.line_no for issue in audit.issues}
        reasons = {issue.line_no: issue.reason for issue in audit.issues}
        data = self.path.read_bytes()
        raw_lines = data.split(b"\n")
        # First pass: classify lines, find the winning line per hash.
        good: list[tuple[int, str, Optional[str], tuple]] = []
        winners: dict[str, tuple] = {}
        quarantine: list[tuple[int, str, str]] = []
        for index, raw in enumerate(raw_lines):
            if not raw.strip():
                continue
            line_no = index + 1
            text = raw.decode("utf-8", errors="replace").strip()
            if line_no in bad_lines:
                quarantine.append((line_no, reasons[line_no], text))
                continue
            record = json.loads(text)
            cell = record.get("hash")
            seq = record.get("seq")
            key = (seq if seq is not None else -1, line_no)
            good.append((line_no, text, cell, key))
            if cell:
                previous = winners.get(cell)
                if previous is None or key >= previous:
                    winners[cell] = key
        kept: list[str] = []
        for line_no, text, cell, key in good:
            if collapse and cell and winners[cell] != key:
                report.collapsed += 1
                continue
            kept.append(text)
        # Quarantine sidecar first (so a crash between the two writes
        # can only duplicate evidence, never lose it), then the
        # atomic ledger rewrite.
        if quarantine:
            sidecar = self.path.with_suffix(
                self.path.suffix + ".quarantine"
            )
            with sidecar.open("a", encoding="utf-8") as fh:
                for line_no, reason, text in quarantine:
                    fh.write(json.dumps({
                        "reason": reason,
                        "line_no": line_no,
                        # selflint: allow(D001) forensic stamp only
                        "quarantined_ts": time.time(),
                        "line": text,
                    }, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            report.sidecar = str(sidecar)
            report.quarantined = len(quarantine)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for text in kept:
                    fh.write(text + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        report.kept = len(kept)
        report.rewritten = True
        # The file was replaced: restart incremental accounting.
        self._scanned_bytes = 0
        self._scanned_ino = None
        self._hashes.clear()
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def record_for(spec: CellSpec, result) -> dict:
        """Serialise a supervisor :class:`~repro.harness.supervisor
        .CellResult` into one ledger record.

        Clock discipline: ``ts`` is wall-clock epoch seconds
        (``time.time()``) recorded for humans reading the file -- it
        can jump under NTP steps and must never order records (that is
        what the append-assigned ``seq`` is for).  ``wall_s`` is the
        cell's duration measured by the supervisor on the *monotonic*
        clock, immune to wall-clock adjustments; the two deliberately
        come from different clocks and cannot be compared.
        """
        record = {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": result.status,
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": result.attempts,
            "retries": result.retries,
            "wall_s": round(result.wall_s, 3),
            # selflint: allow(D001) human-facing only, never compared
            "ts": time.time(),
            "spec": spec.as_dict(),
        }
        if result.status == "ok":
            record.update(result.outcome)
            record["status"] = "ok"  # outcome dict also carries status
        else:
            record["failure_class"] = result.failure_class
            record["failure_detail"] = result.failure_detail
            if result.diagnostics is not None:
                record["diagnostics"] = result.diagnostics
        if getattr(result, "injected", 0):
            # Chaos-injected attempts, excluded from ``retries`` so a
            # chaos campaign aggregates bit-identically to a clean one.
            record["chaos_injected"] = result.injected
        backend = getattr(result, "backend", None)
        if backend is not None:
            # The backend *requested* for the campaign, plus the
            # deterministic per-cell fallback reason when a batched
            # request ran this cell on the plain engine.  Both are pure
            # functions of the campaign arguments -- never a scheduling
            # dynamic -- so records stay identical across jobs values
            # and batch interleavings.
            record["backend"] = backend
            fallback = getattr(result, "backend_fallback", None)
            if fallback is not None:
                record["backend_fallback"] = fallback
        # Every record carries a metrics block (see repro.obs.metrics):
        # successful cells get theirs from the outcome payload; failed
        # cells still record the wall time they burned, so campaign
        # aggregation accounts for failures too.
        metrics = dict(record.get("metrics") or {})
        metrics.setdefault("wall_s", round(result.wall_s, 6))
        record["metrics"] = metrics
        return record

    @staticmethod
    def record_invalid(spec: CellSpec, diagnostics) -> dict:
        """Serialise a statically rejected cell: the pre-validation
        stage found the configuration unrealizable, so no subprocess
        ever ran (``attempts == 0``).  ``diagnostics`` is a list of
        :class:`~repro.analysis.Diagnostic` objects."""
        first = diagnostics[0] if diagnostics else None
        return {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": "invalid",
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": 0,
            "retries": 0,
            "wall_s": 0.0,
            # selflint: allow(D001) human-facing only, never compared
            "ts": time.time(),
            "spec": spec.as_dict(),
            "failure_class": "ConfigRuleViolation",
            "failure_detail": first.message if first else "",
            "diagnostics": [d.to_dict() for d in diagnostics],
        }

    @staticmethod
    def record_pruned(spec: CellSpec, bound) -> dict:
        """Serialise a statically pruned cell: the bound-driven sweep
        proved this cell cannot lift its design onto the Pareto
        frontier, so no subprocess ever ran (``attempts == 0``).

        ``bound`` is the cell's
        :class:`~repro.analysis.dataflow.BoundReport`; its AIPC upper
        bound travels with the record so resume and aggregation can
        substitute it for the unmeasured cell (the mixed aggregate
        stays an upper bound on the true one, which is the pruning
        soundness argument -- see DESIGN.md section 5h).
        """
        return {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": "pruned_static",
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": 0,
            "retries": 0,
            "wall_s": 0.0,
            # selflint: allow(D001) human-facing only, never compared
            "ts": time.time(),
            "spec": spec.as_dict(),
            "aipc_bound": round(bound.aipc_bound, 6),
            "cycles_lower_bound": bound.cycles_lower_bound,
            "binding_roof": bound.binding_roof,
            "components": {
                name: round(value, 6)
                for name, value in sorted(bound.components.items())
            },
        }


    @staticmethod
    def record_predicted(spec: CellSpec, bound, prediction) -> dict:
        """Serialise a surrogate-skipped cell: the active-learning
        sweep proved (via the sound static bound) that this cell
        cannot move the Pareto frontier, so no subprocess ever ran
        (``attempts == 0``), and the surrogate model's prediction is
        recorded in place of a measurement.

        ``bound`` is the cell's
        :class:`~repro.analysis.dataflow.BoundReport`; the upper
        interval of ``prediction`` (a
        :class:`~repro.surrogate.CellPrediction`) is already clipped
        to its sound ``aipc_bound``.  Aggregation substitutes that
        *frozen* upper interval -- the exact optimistic value the skip
        decision compared against the measured incumbent -- so the
        skip replays identically on resume and a retrained model can
        never lift a skipped design onto the frontier (DESIGN.md
        section 5k).  The point estimate, interval, and model hash
        travel with the record so reports can separate predicted from
        measured cells and the calibration gate can audit the model
        that made each call.  A resumed campaign *without*
        ``--surrogate`` re-runs these cells (the superseding
        measurement wins by ``seq``).
        """
        return {
            "version": LEDGER_VERSION,
            "hash": spec.cell_hash(),
            "status": "predicted",
            "workload": spec.workload,
            "config": spec.config.describe(),
            "threads": spec.threads,
            "attempts": 0,
            "retries": 0,
            "wall_s": 0.0,
            # selflint: allow(D001) human-facing only, never compared
            "ts": time.time(),
            "spec": spec.as_dict(),
            "aipc_bound": round(bound.aipc_bound, 6),
            "cycles_lower_bound": bound.cycles_lower_bound,
            "binding_roof": bound.binding_roof,
            "aipc_predicted": round(prediction.aipc, 6),
            "aipc_interval": [
                round(prediction.lo, 6), round(prediction.hi, 6)
            ],
            "model_hash": prediction.model_hash,
        }


def summarize(
    records: dict[str, dict],
    torn_lines: int = 0,
    corrupt_lines: int = 0,
) -> dict[str, int]:
    """Status counts over a loaded ledger (for reports and tests).

    ``torn_lines`` / ``corrupt_lines`` (as counted by
    :meth:`Ledger.load`) are surfaced under their own keys when
    non-zero, so resume diagnostics can report corruption instead of
    silently dropping it.
    """
    counts: dict[str, int] = {}
    for record in records.values():
        status = record.get("status", "?")
        counts[status] = counts.get(status, 0) + 1
    if torn_lines:
        counts["torn_lines"] = torn_lines
    if corrupt_lines:
        counts["corrupt_lines"] = corrupt_lines
    return counts


def open_ledger(path) -> Optional[Ledger]:
    """``Ledger(path)`` or ``None`` for a falsy path -- callers can
    thread an optional ledger argument straight through."""
    return Ledger(path) if path else None
