"""Lane-based parallel execution of sweep cells.

The sweep's unit of parallelism is the *lane*: the ordered cells of
one ``(design, workload)`` pair.  Within a lane, execution is strictly
sequential -- thread-count escalation dispatches the next cell only
after the previous verdict, and a failure stops the lane (more
threads only add pressure on a design that already failed).  Lanes
themselves are independent, so the scheduler fans them out across up
to ``jobs`` long-lived worker processes.

Guarantees carried over from the serial path:

* **single-writer ledger** -- workers never open the ledger file.
  Verdicts travel back over a result queue and only the driver
  appends them (batched through :meth:`Ledger.append_many`, still
  flushed + fsynced), so crash-safety and resume semantics are
  unchanged: killing the driver loses at most the in-flight cells.
* **per-lane policy unchanged** -- pre-validation (``invalid``
  verdicts) runs driver-side before a cell is ever dispatched, and
  the supervisor's watchdog / budget-escalating retries run inside
  the worker exactly as they do inline.
* **order-independent aggregation** -- records are keyed by content
  hash; callers aggregate in canonical lane order after the fan-out
  completes, so results are bit-identical to ``jobs=1`` regardless of
  completion order.

A worker that dies without reporting (OOM killer, external SIGKILL)
is detected by the driver: its in-flight cell is recorded as a
``WorkerCrash`` verdict, a replacement worker is spawned, and the
campaign continues.  Orphaned workers (driver SIGKILLed) notice their
parent changed and exit instead of leaking.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..sim.failures import PoisonedCell, WorkerCrash
from .ledger import Ledger
from .spec import CellSpec
from .supervisor import CellResult, RunSupervisor

#: How long the driver blocks on the result queue before checking
#: worker health, and how long a worker blocks on its inbox before
#: checking whether its driver is still alive.
POLL_S = 0.2
_ORPHAN_POLL_S = 2.0

#: Consecutive worker crashes on one cell before the circuit breaker
#: quarantines it as ``poisoned``.
BREAKER_THRESHOLD = 3

#: The campaign failure-rate budget only engages after this many
#: resolved cells -- one early failure out of two cells is not a 50%
#: failure rate worth aborting over.
MIN_BUDGET_CELLS = 5


class CircuitBreaker:
    """Per-cell crash-streak accounting (driver-side).

    A cell whose worker crashes is *retried*, not recorded: crash
    verdicts never reach the ledger, so a resumed campaign re-runs
    them instead of trusting a possibly-environmental failure.  But a
    cell that kills its worker ``threshold`` times in a row is
    deterministic poison -- further retries only burn wall clock -- so
    the breaker trips and the cell is recorded terminally as
    ``poisoned``.  Keys are :meth:`CellSpec.identity_hash`, so a crash
    streak follows the cell across budget escalations.
    """

    def __init__(self, threshold: int = BREAKER_THRESHOLD) -> None:
        self.threshold = threshold
        self.streaks: dict[str, int] = {}
        self.trips = 0
        self.crash_retries = 0

    def record_crash(self, identity: str) -> bool:
        """Count one crash; True when the streak trips the breaker."""
        streak = self.streaks.get(identity, 0) + 1
        if streak >= self.threshold:
            self.streaks.pop(identity, None)
            self.trips += 1
            return True
        self.streaks[identity] = streak
        self.crash_retries += 1
        return False

    def reset(self, identity: str) -> None:
        self.streaks.pop(identity, None)


class RespawnBackoff:
    """Decorrelated-jitter exponential backoff for worker respawn.

    ``sleep()`` waits ``uniform(base, prev * 3)`` capped at ``cap`` --
    the decorrelated-jitter scheme, which avoids both the thundering
    herd of fixed exponential backoff and the lockstep of full jitter.
    Seeded, so chaos runs back off identically run to run.  ``reset()``
    on any successful result drain returns to the base delay.
    """

    def __init__(self, seed: int = 0, base: float = 0.05,
                 cap: float = 1.0) -> None:
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self._prev = base
        self.total_s = 0.0

    def next_delay(self) -> float:
        self._prev = min(self.cap,
                         self._rng.uniform(self.base, self._prev * 3))
        return self._prev

    def sleep(self) -> None:
        delay = self.next_delay()
        self.total_s += delay
        time.sleep(delay)

    def reset(self) -> None:
        self._prev = self.base


def _poisoned_result(spec: CellSpec, threshold: int,
                     detail: str) -> CellResult:
    return CellResult(
        spec=spec, status="poisoned", attempts=threshold, retries=0,
        failure_class=PoisonedCell.__name__,
        failure_detail=(
            f"{spec.describe()}: circuit breaker opened after "
            f"{threshold} consecutive worker crashes"
            + (f" (last: {detail})" if detail else "")
        ),
    )


def _over_budget(report, budget: Optional[float]) -> Optional[str]:
    """The abort message when the campaign failure rate exceeds its
    budget, else ``None``."""
    if budget is None:
        return None
    poisoned = getattr(report, "poisoned", 0)
    resolved = (report.completed + report.failed + report.invalid
                + poisoned)
    bad = report.failed + poisoned
    if resolved >= MIN_BUDGET_CELLS and bad > budget * resolved:
        return (
            f"failure rate {bad}/{resolved} "
            f"({bad / resolved:.0%}) exceeds budget {budget:.0%}; "
            f"aborting with a partial report"
        )
    return None


def static_rejection(spec: CellSpec) -> Optional[list]:
    """Error-level config diagnostics dooming ``spec``, or ``None``.

    The pre-validation stage of every sweep: an unrealizable
    configuration (over the die budget, off the clock target,
    contradictory cache geometry) is caught here, before a subprocess
    is forked for it -- historically such a cell burned a full
    watchdog timeout and polluted retry accounting.
    """
    from ..analysis import analyze_config

    report = analyze_config(spec.config)
    return report.errors if report.has_errors else None


def _batch_group_key(spec: CellSpec) -> tuple:
    """The lockstep grouping key: cells sharing it are built from the
    same compiled workload ``(workload, scale, threads, k, seed)``, so
    one batch group compiles once and lockstep-executes many
    configurations.  Fault-plan cells are segregated by the trailing
    flag (``run_batch`` routes each of them down its serial fallback
    path individually)."""
    return (spec.workload, spec.scale, spec.threads, spec.k, spec.seed,
            spec.faults is None)


def _batching(supervisor) -> bool:
    """Whether this campaign groups cells into lockstep batches."""
    return (getattr(supervisor, "backend", None) == "batched"
            and getattr(supervisor, "batch_width", 1) > 1)


@dataclass
class Lane:
    """One sequential chain of cells (a ``(design, workload)`` pair).

    ``next_spec``/``advance`` form the scheduling protocol: a lane
    yields its next cell only after the previous cell's record has
    been fed back, and -- with ``stop_on_failure`` -- a non-``ok``
    verdict retires the lane early.
    """

    key: tuple
    specs: list[CellSpec]
    stop_on_failure: bool = True
    cursor: int = 0
    stopped: bool = False

    def next_spec(self) -> Optional[CellSpec]:
        if self.stopped or self.cursor >= len(self.specs):
            return None
        return self.specs[self.cursor]

    def advance(self, record: dict) -> None:
        self.cursor += 1
        if self.stop_on_failure and record.get("status") != "ok":
            self.stopped = True

    @property
    def exhausted(self) -> bool:
        return self.stopped or self.cursor >= len(self.specs)


def _merge_scheduler_metrics(report, block: dict) -> None:
    """Fold one execution's scheduler block into ``report.metrics``.

    The pruned and surrogate sweep drivers call :func:`execute_lanes`
    once per lane; naively assigning the block would leave only the
    *last* lane's counters in the report.  Counters accumulate,
    high-water marks take the max, and utilization is recomputed from
    the merged busy/wall totals.  Wall-clock derived throughout, so
    (like the individual blocks) outside the determinism contract.
    """
    if not hasattr(report, "metrics"):
        return
    previous = report.metrics.get("scheduler")
    if not previous:
        report.metrics["scheduler"] = block
        return
    merged = dict(previous)
    for key in ("workers_spawned", "workers_reaped", "dispatched",
                "worker_respawns", "worker_crash_retries",
                "breaker_trips", "batch_groups", "batched_cells"):
        merged[key] = previous.get(key, 0) + block.get(key, 0)
    for key in ("busy_s", "wall_s", "backoff_s"):
        merged[key] = round(
            previous.get(key, 0.0) + block.get(key, 0.0), 3
        )
    for key in ("workers", "max_ready_lanes", "max_inflight"):
        merged[key] = max(previous.get(key, 0), block.get(key, 0))
    if block.get("mode") != previous.get("mode"):
        merged["mode"] = "mixed"
    capacity = merged["workers"] * merged["wall_s"]
    merged["utilization"] = (
        round(merged["busy_s"] / capacity, 4) if capacity > 0 else 0.0
    )
    report.metrics["scheduler"] = merged


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _failed_result(spec: CellSpec, failure_class: str,
                   detail: str) -> CellResult:
    return CellResult(
        spec=spec, status="failed", attempts=1, retries=0,
        failure_class=failure_class, failure_detail=detail,
    )


def _worker_main(worker_id: int, inbox, results, supervisor) -> None:
    """Long-lived worker loop: pull a list of specs (one cell, or one
    lockstep batch group), run it through the supervisor's full
    policy, ship the ledger records back in one put.

    The inbox protocol is uniformly ``list[CellSpec]``: a single-cell
    list takes the historical :meth:`RunSupervisor.run` path, a longer
    one goes through :meth:`RunSupervisor.run_batch`.  Results travel
    as ``(worker_id, list[record])`` either way, so the driver's drain
    loop never cares which path produced them.
    """
    driver_pid = os.getppid()
    while True:
        try:
            specs = inbox.get(timeout=_ORPHAN_POLL_S)
        except queue.Empty:
            if os.getppid() != driver_pid:
                return  # driver died; don't leak
            continue
        if specs is None:
            return
        try:
            if len(specs) == 1:
                spec = specs[0]
                result = supervisor.run(spec)
                records = [Ledger.record_for(spec, result)]
            else:
                verdicts = supervisor.run_batch(specs)
                records = [
                    Ledger.record_for(spec, result)
                    for spec, result in zip(specs, verdicts)
                ]
        except Exception as exc:  # noqa: BLE001 - classify, keep going
            records = [
                Ledger.record_for(spec, _failed_result(
                    spec, type(exc).__name__,
                    f"{type(exc).__name__}: {exc}",
                ))
                for spec in specs
            ]
        plan = getattr(supervisor, "chaos", None)
        if plan is not None and len(specs) == 1 and plan.selected(
                "result_delay", specs[0].identity_hash()):
            # Late verdict delivery: the driver must tolerate results
            # arriving long after dispatch (and after reap checks).
            time.sleep(plan.delay_s)
        results.put((worker_id, records))


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    process: object
    inbox: object


class _ParallelDriver:
    """Owns the worker pool and all mutable scheduling state."""

    def __init__(self, lanes, jobs, supervisor, ledger, done, report,
                 progress, prevalidate, mp_context, poll_s,
                 chaos=None, failure_budget=None):
        self.jobs = jobs
        self.supervisor = supervisor
        self.ledger = ledger
        self.done = done
        self.report = report
        self.progress = progress
        self.prevalidate = prevalidate
        self.poll_s = poll_s
        self.chaos = chaos  # driver-side ChaosController (or None)
        self.failure_budget = failure_budget
        self.aborted = False
        self.breaker = CircuitBreaker()
        seed = chaos.plan.seed if chaos is not None else 0
        self.backoff = RespawnBackoff(seed)
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.ctx = multiprocessing.get_context(mp_context)
        self.results = self.ctx.Queue()
        self.workers: dict[int, _Worker] = {}
        self.idle: deque[int] = deque()
        # worker id -> cell hashes of its in-flight dispatch (one for
        # a plain cell, several for a lockstep batch group).
        self.assigned: dict[int, list[str]] = {}
        self.inflight: dict[str, tuple[Lane, CellSpec]] = {}
        self.waiting: dict[str, list[Lane]] = {}  # duplicate-cell parks
        self.ready: deque[Lane] = deque(lanes)
        self.batching = _batching(supervisor)
        self._next_wid = 0
        # Scheduler observability (see repro.obs): dispatch counts and
        # busy spans per worker, pool churn, and queue-depth high
        # water marks, folded into report.metrics["scheduler"].
        self._dispatched = 0
        self._batch_groups = 0
        self._batched_cells = 0
        self._busy_s = 0.0
        self._assigned_at: dict[int, float] = {}
        self._spawned = 0
        self._reaped = 0
        self._max_ready = len(self.ready)
        self._max_inflight = 0
        self._started = time.monotonic()

    # -- pool -----------------------------------------------------------
    def _spawn(self) -> None:
        wid = self._next_wid
        self._next_wid += 1
        inbox = self.ctx.Queue()
        process = self.ctx.Process(
            target=_worker_main,
            args=(wid, inbox, self.results, self.supervisor),
            daemon=False,  # supervisors fork grandchildren
            name=f"sweep-worker-{wid}",
        )
        process.start()
        self.workers[wid] = _Worker(process, inbox)
        self.idle.append(wid)
        self._spawned += 1

    def _shutdown(self) -> None:
        for worker in self.workers.values():
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 10.0
        for worker in self.workers.values():
            worker.process.join(max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
            worker.inbox.cancel_join_thread()
            worker.inbox.close()
        self.results.cancel_join_thread()
        self.results.close()
        self.workers.clear()

    # -- scheduling -----------------------------------------------------
    def _next_dispatch(self, lane: Lane) -> Optional[tuple[str, CellSpec]]:
        """Advance ``lane`` through every cell the driver can resolve
        itself (resume hits, duplicates, pre-validation rejects);
        return the first cell needing a worker, or ``None`` when the
        lane is exhausted or parked behind an in-flight duplicate."""
        while True:
            spec = lane.next_spec()
            if spec is None:
                return None
            cell = spec.cell_hash()
            record = self.done.get(cell)
            if record is not None:
                self.report.skipped += 1
                if self.progress is not None:
                    self.progress(spec, record)
                lane.advance(record)
                continue
            if cell in self.inflight:
                self.waiting.setdefault(cell, []).append(lane)
                return None
            if self.prevalidate:
                rejected = static_rejection(spec)
                if rejected is not None:
                    record = Ledger.record_invalid(spec, rejected)
                    self.report.invalid += 1
                    if self.ledger is not None:
                        self.ledger.append(record)
                    self.done[cell] = record
                    if self.progress is not None:
                        self.progress(spec, record)
                    lane.advance(record)
                    continue
            return cell, spec

    def _next_group(self) -> list[tuple[str, CellSpec]]:
        """Pop ready lanes into one lockstep batch group: up to
        ``batch_width`` cells sharing the compiled-workload group key.
        A lane whose next cell does not match the group's key is
        deferred back to the ready queue for a later group (appended
        *after* the group is built, so a mixed ready queue can never
        spin the pump).  Cells are staged into ``inflight`` as they
        join, so a duplicate cell later in the same pump parks in
        ``waiting`` exactly as it would serially."""
        group: list[tuple[str, CellSpec]] = []
        deferred: list[Lane] = []
        key = None
        while self.ready and len(group) < self.supervisor.batch_width:
            lane = self.ready.popleft()
            dispatch = self._next_dispatch(lane)
            if dispatch is None:
                continue
            cell, spec = dispatch
            lane_key = _batch_group_key(spec)
            if key is None:
                key = lane_key
            elif lane_key != key:
                deferred.append(lane)
                continue
            self.inflight[cell] = (lane, spec)
            group.append((cell, spec))
        self.ready.extend(deferred)
        return group

    def _pump(self) -> None:
        """Keep every idle worker fed while ready lanes remain."""
        if len(self.ready) > self._max_ready:
            self._max_ready = len(self.ready)
        while self.idle and self.ready and not self.aborted:
            if self.batching:
                group = self._next_group()
                if not group:
                    continue
            else:
                lane = self.ready.popleft()
                dispatch = self._next_dispatch(lane)
                if dispatch is None:
                    continue
                cell, spec = dispatch
                self.inflight[cell] = (lane, spec)
                group = [(cell, spec)]
            wid = self.idle.popleft()
            self.assigned[wid] = [cell for cell, _ in group]
            self.workers[wid].inbox.put([spec for _, spec in group])
            self._dispatched += len(group)
            if len(group) > 1:
                self._batch_groups += 1
                self._batched_cells += len(group)
            self._assigned_at[wid] = time.monotonic()
            if self.chaos is not None and \
                    self.chaos.kill_worker(group[0][1].identity_hash()):
                # Injected scheduler-worker death right after dispatch;
                # _reap must turn this into a crash retry, not a hang.
                self.workers[wid].process.kill()
        if len(self.inflight) > self._max_inflight:
            self._max_inflight = len(self.inflight)

    def _drain(self, block: bool) -> list[tuple[int, list[dict]]]:
        batch: list[tuple[int, list[dict]]] = []
        if block:
            try:
                batch.append(self.results.get(timeout=self.poll_s))
            except queue.Empty:
                return batch
        while True:
            try:
                batch.append(self.results.get_nowait())
            except queue.Empty:
                return batch

    def _resolve(self, cell: str, record: dict) -> None:
        """Feed one verdict into its lane (and any parked duplicates)."""
        lane, spec = self.inflight.pop(cell)
        self.done[cell] = record
        status = record.get("status")
        if status == "ok":
            self.report.completed += 1
        elif status == "poisoned":
            self.report.poisoned += 1
        else:
            self.report.failed += 1
        self.report.retried += record.get("retries", 0)
        if self.progress is not None:
            self.progress(spec, record)
        lane.advance(record)
        if not lane.exhausted:
            self.ready.append(lane)
        for parked in self.waiting.pop(cell, ()):
            self.report.skipped += 1
            if self.progress is not None:
                self.progress(parked.next_spec(), record)
            parked.advance(record)
            if not parked.exhausted:
                self.ready.append(parked)
        abort = _over_budget(self.report, self.failure_budget)
        if abort is not None and not self.aborted:
            self.aborted = True
            self.report.aborted = abort
            self.ready.clear()  # in-flight cells drain, nothing new

    def _breaker_verdict(self, cell: str,
                         record: dict) -> tuple[dict, bool]:
        """Route one worker verdict through the circuit breaker.

        Returns ``(record, retry)``.  A ``WorkerCrash`` below the
        breaker threshold is *intercepted*: the caller must requeue
        the cell instead of recording it -- crash verdicts never reach
        the ledger, so a resumed campaign re-runs them (the crash may
        have been environmental).  At the threshold the verdict is
        rewritten to a terminal ``poisoned`` record.
        """
        lane, spec = self.inflight[cell]
        if (record.get("status") == "ok"
                or record.get("failure_class") != WorkerCrash.__name__):
            self.breaker.reset(spec.identity_hash())
            return record, False
        if self.breaker.record_crash(spec.identity_hash()):
            poisoned = Ledger.record_for(spec, _poisoned_result(
                spec, self.breaker.threshold,
                record.get("failure_detail") or "",
            ))
            return poisoned, False
        return record, True

    def _commit(self, batch: list[tuple[int, list[dict]]]) -> None:
        staged: list[tuple[str, dict, bool]] = []
        for wid, records in batch:
            cells = self.assigned.pop(wid, None)
            assigned_at = self._assigned_at.pop(wid, None)
            if assigned_at is not None:
                self._busy_s += time.monotonic() - assigned_at
            if wid in self.workers:
                self.idle.append(wid)
            if cells is None:
                continue  # late result from an already-reaped worker
            expected = set(cells)
            for record in records:
                cell = record.get("hash")
                if cell not in expected or cell not in self.inflight:
                    continue  # late record from a reaped dispatch
                record, retry = self._breaker_verdict(cell, record)
                staged.append((cell, record, retry))
        durable = [record for _, record, retry in staged if not retry]
        if durable and self.ledger is not None:
            self.ledger.append_many(durable)
        self.backoff.reset()
        for cell, record, retry in staged:
            if retry:
                lane, _ = self.inflight.pop(cell)
                self.ready.append(lane)  # same cell, fresh dispatch
            else:
                self._resolve(cell, record)
        if durable and self.chaos is not None:
            # Records above are durable; everything in driver memory
            # is what an injected crash here loses -- resume recovers.
            self.chaos.driver_batch_gate()

    def _reap(self) -> None:
        """Detect dead workers; their in-flight cell goes through the
        circuit breaker (crash retry, or ``poisoned`` at the
        threshold) and the pool is refilled after a jittered
        backoff."""
        dead = [wid for wid, worker in self.workers.items()
                if not worker.process.is_alive()]
        if not dead:
            return
        # A worker may have shipped its result just before dying:
        # process anything already queued before declaring crashes.
        batch = self._drain(block=False)
        if batch:
            self._commit(batch)
        for wid in dead:
            worker = self.workers.pop(wid, None)
            if worker is None:
                continue
            self._reaped += 1
            try:
                self.idle.remove(wid)
            except ValueError:
                pass
            cells = self.assigned.pop(wid, None) or []
            assigned_at = self._assigned_at.pop(wid, None)
            if assigned_at is not None:
                self._busy_s += time.monotonic() - assigned_at
            for cell in cells:
                if cell not in self.inflight:
                    continue
                lane, spec = self.inflight[cell]
                record = Ledger.record_for(spec, _failed_result(
                    spec, WorkerCrash.__name__,
                    f"{spec.describe()}: scheduler worker {wid} (pid "
                    f"{worker.process.pid}) died with exit code "
                    f"{worker.process.exitcode}",
                ))
                record, retry = self._breaker_verdict(cell, record)
                if retry:
                    self.inflight.pop(cell)
                    self.ready.append(lane)
                else:
                    if self.ledger is not None:
                        self.ledger.append(record)
                    self._resolve(cell, record)
            # Decorrelated-jitter pause before respawning: a crash
            # loop (bad node, OOM storm) must not spin the driver.
            self.backoff.sleep()
            self._spawn()
        self._pump()

    def _metrics(self) -> dict:
        """The scheduler's observability block: worker utilization,
        queue depths, pool churn.  Wall-clock derived, so explicitly
        outside the bit-identical-for-any-jobs contract (which covers
        the per-cell ``metrics`` blocks on ledger records)."""
        elapsed = time.monotonic() - self._started
        capacity = self.jobs * elapsed
        return {
            "mode": "parallel",
            "workers": self.jobs,
            "workers_spawned": self._spawned,
            "workers_reaped": self._reaped,
            "dispatched": self._dispatched,
            "busy_s": round(self._busy_s, 3),
            "wall_s": round(elapsed, 3),
            "utilization": round(self._busy_s / capacity, 4)
            if capacity > 0 else 0.0,
            "max_ready_lanes": self._max_ready,
            "max_inflight": self._max_inflight,
            "worker_respawns": max(0, self._spawned - self.jobs),
            "worker_crash_retries": self.breaker.crash_retries,
            "breaker_trips": self.breaker.trips,
            "backoff_s": round(self.backoff.total_s, 3),
            "batch_groups": self._batch_groups,
            "batched_cells": self._batched_cells,
        }

    # -- main loop ------------------------------------------------------
    def run(self) -> None:
        try:
            for _ in range(self.jobs):
                self._spawn()
            self._pump()
            while self.inflight:
                batch = self._drain(block=True)
                if batch:
                    self._commit(batch)
                    self._pump()
                else:
                    self._reap()
        finally:
            self._shutdown()
            _merge_scheduler_metrics(self.report, self._metrics())


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _execute_serial(lanes, supervisor, ledger, done, report, progress,
                    prevalidate, chaos=None,
                    failure_budget=None) -> None:
    """The historical one-cell-at-a-time loop (``jobs=1``), with the
    same driver-side hardening as the parallel path: crash verdicts go
    through the circuit breaker (retry with backoff, ``poisoned`` at
    the threshold) and the failure-rate budget can abort early."""
    started = time.monotonic()
    busy_s = 0.0
    dispatched = 0
    breaker = CircuitBreaker()
    backoff = RespawnBackoff(chaos.plan.seed if chaos is not None else 0)
    aborted = False
    for lane in lanes:
        if aborted:
            break
        while not aborted:
            spec = lane.next_spec()
            if spec is None:
                break
            cell = spec.cell_hash()
            record = done.get(cell)
            if record is not None:
                report.skipped += 1
            else:
                rejected = static_rejection(spec) if prevalidate else None
                if rejected is not None:
                    record = Ledger.record_invalid(spec, rejected)
                    report.invalid += 1
                else:
                    dispatched += 1
                    attempt_started = time.monotonic()
                    while True:
                        result = supervisor.run(spec)
                        if (result.status == "failed"
                                and result.failure_class
                                == WorkerCrash.__name__):
                            if breaker.record_crash(
                                    spec.identity_hash()):
                                result = _poisoned_result(
                                    spec, breaker.threshold,
                                    result.failure_detail or "",
                                )
                                break
                            backoff.sleep()
                            continue
                        breaker.reset(spec.identity_hash())
                        backoff.reset()
                        break
                    busy_s += time.monotonic() - attempt_started
                    record = Ledger.record_for(spec, result)
                    report.retried += result.retries
                    if result.status == "ok":
                        report.completed += 1
                    elif result.status == "poisoned":
                        report.poisoned += 1
                    else:
                        report.failed += 1
                if ledger is not None:
                    ledger.append(record)
                    if chaos is not None:
                        chaos.driver_batch_gate()
                done[cell] = record
                abort = _over_budget(report, failure_budget)
                if abort is not None:
                    report.aborted = abort
                    aborted = True
            if progress is not None:
                progress(spec, record)
            lane.advance(record)
    elapsed = time.monotonic() - started
    _merge_scheduler_metrics(report, {
        "mode": "serial",
        "workers": 1,
        "workers_spawned": 0,
        "workers_reaped": 0,
        "dispatched": dispatched,
        "busy_s": round(busy_s, 3),
        "wall_s": round(elapsed, 3),
        "utilization": round(busy_s / elapsed, 4)
        if elapsed > 0 else 0.0,
        "max_ready_lanes": len(lanes),
        "max_inflight": 1 if dispatched else 0,
        "worker_respawns": 0,
        "worker_crash_retries": breaker.crash_retries,
        "breaker_trips": breaker.trips,
        "backoff_s": round(backoff.total_s, 3),
        "batch_groups": 0,
        "batched_cells": 0,
    })


def _crash_retry(supervisor, spec, result, breaker, backoff):
    """The serial path's crash policy, applied to an initial verdict:
    a ``WorkerCrash`` is retried (with jittered backoff) until it
    stops crashing or the circuit breaker trips to ``poisoned`` --
    exactly the loop :func:`_execute_serial` runs inline."""
    while (result.status == "failed"
            and result.failure_class == WorkerCrash.__name__):
        if breaker.record_crash(spec.identity_hash()):
            return _poisoned_result(
                spec, breaker.threshold, result.failure_detail or "",
            )
        backoff.sleep()
        result = supervisor.run(spec)
    breaker.reset(spec.identity_hash())
    backoff.reset()
    return result


def _execute_serial_batched(lanes, supervisor, ledger, done, report,
                            progress, prevalidate,
                            failure_budget=None) -> None:
    """The ``jobs=1`` loop for the batched backend: each round pops
    one dispatchable cell per active lane, groups them by compiled-
    workload signature, chunks each group to ``batch_width``, and runs
    every chunk through :meth:`RunSupervisor.run_batch`.

    Driver-side policy matches :func:`_execute_serial` cell for cell:
    resume hits and pre-validation rejects are resolved before a cell
    joins a group, duplicate cells park behind the first lane claiming
    them, crash verdicts go through the circuit breaker (retry with
    backoff, ``poisoned`` at the threshold), and the failure-rate
    budget can abort mid-campaign.  Chunk records land through
    :meth:`Ledger.append_many`, one fsync per chunk.
    """
    started = time.monotonic()
    busy_s = 0.0
    dispatched = 0
    batch_groups = 0
    batched_cells = 0
    breaker = CircuitBreaker()
    backoff = RespawnBackoff(0)
    aborted = False
    active: deque[Lane] = deque(
        lane for lane in lanes if not lane.exhausted
    )
    while active and not aborted:
        round_lanes = list(active)
        active.clear()
        heads: list[tuple[str, CellSpec, Lane]] = []
        claimed: set[str] = set()
        parked: dict[str, list[Lane]] = {}
        for lane in round_lanes:
            # Resolve everything the driver can decide itself.
            while True:
                spec = lane.next_spec()
                if spec is None:
                    break
                cell = spec.cell_hash()
                record = done.get(cell)
                if record is not None:
                    report.skipped += 1
                    if progress is not None:
                        progress(spec, record)
                    lane.advance(record)
                    continue
                rejected = (static_rejection(spec) if prevalidate
                            else None)
                if rejected is not None:
                    record = Ledger.record_invalid(spec, rejected)
                    report.invalid += 1
                    if ledger is not None:
                        ledger.append(record)
                    done[cell] = record
                    if progress is not None:
                        progress(spec, record)
                    lane.advance(record)
                    continue
                break
            if spec is None:
                continue  # lane exhausted driver-side
            if cell in claimed:
                parked.setdefault(cell, []).append(lane)
                continue
            claimed.add(cell)
            heads.append((cell, spec, lane))
        groups: dict[tuple, list[tuple[str, CellSpec, Lane]]] = {}
        for head in heads:
            groups.setdefault(_batch_group_key(head[1]), []).append(head)
        for members in groups.values():
            if aborted:
                break
            width = supervisor.batch_width
            for start in range(0, len(members), width):
                if aborted:
                    break
                chunk = members[start:start + width]
                dispatched += len(chunk)
                if len(chunk) > 1:
                    batch_groups += 1
                    batched_cells += len(chunk)
                attempt_started = time.monotonic()
                verdicts = supervisor.run_batch(
                    [spec for _, spec, _ in chunk]
                )
                verdicts = [
                    _crash_retry(supervisor, spec, verdict, breaker,
                                 backoff)
                    for (_, spec, _), verdict in zip(chunk, verdicts)
                ]
                busy_s += time.monotonic() - attempt_started
                landed = []
                for (cell, spec, lane), result in zip(chunk, verdicts):
                    record = Ledger.record_for(spec, result)
                    report.retried += result.retries
                    if result.status == "ok":
                        report.completed += 1
                    elif result.status == "poisoned":
                        report.poisoned += 1
                    else:
                        report.failed += 1
                    landed.append((cell, spec, lane, record))
                if ledger is not None:
                    ledger.append_many(
                        [record for _, _, _, record in landed]
                    )
                for cell, spec, lane, record in landed:
                    done[cell] = record
                    if progress is not None:
                        progress(spec, record)
                    lane.advance(record)
                    for waiter in parked.pop(cell, ()):
                        report.skipped += 1
                        if progress is not None:
                            progress(waiter.next_spec(), record)
                        waiter.advance(record)
                abort = _over_budget(report, failure_budget)
                if abort is not None:
                    report.aborted = abort
                    aborted = True
        active.extend(
            lane for lane in round_lanes if not lane.exhausted
        )
        if aborted:
            break
    elapsed = time.monotonic() - started
    _merge_scheduler_metrics(report, {
        "mode": "serial",
        "workers": 1,
        "workers_spawned": 0,
        "workers_reaped": 0,
        "dispatched": dispatched,
        "busy_s": round(busy_s, 3),
        "wall_s": round(elapsed, 3),
        "utilization": round(busy_s / elapsed, 4)
        if elapsed > 0 else 0.0,
        "max_ready_lanes": len(lanes),
        "max_inflight": 1 if dispatched else 0,
        "worker_respawns": 0,
        "worker_crash_retries": breaker.crash_retries,
        "breaker_trips": breaker.trips,
        "backoff_s": round(backoff.total_s, 3),
        "batch_groups": batch_groups,
        "batched_cells": batched_cells,
    })


def execute_lanes(
    lanes: Iterable[Lane],
    *,
    jobs: Optional[int] = 1,
    supervisor=None,
    ledger: Optional[Ledger] = None,
    done: Optional[dict[str, dict]] = None,
    report=None,
    progress: Optional[Callable[[CellSpec, dict], None]] = None,
    prevalidate: bool = True,
    mp_context: Optional[str] = None,
    poll_s: float = POLL_S,
    chaos=None,
    failure_budget: Optional[float] = None,
) -> dict[str, dict]:
    """Run every lane to exhaustion; returns the records-by-hash map.

    ``jobs=1`` executes lanes in order on the calling process --
    byte-for-byte the behavior of the historical serial sweep.
    ``jobs>1`` (or ``jobs=None``/``0`` for ``os.cpu_count()``) fans
    lanes out across worker processes; completion order then varies
    but the produced record set does not.  ``done`` (resumed records)
    is updated in place and returned.

    ``chaos`` is a driver-side
    :class:`~repro.harness.chaos.ChaosController` (duck typed --
    this module never imports the chaos layer); ``failure_budget`` is
    the campaign failure-rate ceiling (e.g. ``0.5``) past which the
    run aborts with ``report.aborted`` set instead of grinding
    through a doomed campaign.
    """
    lanes = [lane for lane in lanes if not lane.exhausted]
    supervisor = supervisor if supervisor is not None else RunSupervisor()
    if done is None:
        done = {}
    if report is None:
        from .sweep import SweepReport

        report = SweepReport()
    if not jobs:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(lanes)) if lanes else 0
    if _batching(supervisor) and chaos is not None:
        # Mirrors the supervisor's own chaos x batched rejection: a
        # driver-side controller implies a chaos campaign, which must
        # run on the plain backend.
        raise ValueError(
            "chaos injection does not compose with the batched backend"
        )
    if jobs <= 1:
        if _batching(supervisor):
            _execute_serial_batched(lanes, supervisor, ledger, done,
                                    report, progress, prevalidate,
                                    failure_budget)
        else:
            _execute_serial(lanes, supervisor, ledger, done, report,
                            progress, prevalidate, chaos,
                            failure_budget)
    else:
        _ParallelDriver(
            lanes, jobs, supervisor, ledger, done, report, progress,
            prevalidate, mp_context, poll_s, chaos, failure_budget,
        ).run()
    return done
