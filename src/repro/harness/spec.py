"""Cell specifications: the unit of work a sweep schedules.

One *cell* is one ``(config, workload, threads)`` simulation with all
parameters pinned -- scale, k-bound, seed, cycle/event budgets, and
any fault plan.  Its :meth:`~CellSpec.cell_hash` is a content hash of
the *complete* spec, so a results ledger keyed by it can never confuse
a low-budget verdict with a high-budget request (the bug the old
memoisation key had), and any change to the cell re-runs it on resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Optional

from ..core.config import WaveScalarConfig
from .faults import FaultPlan

#: Default sweep budgets, matching the historical
#: ``suite_mean_aipc`` arguments (a starved configuration crawling
#: through matching-table thrash scores zero rather than stalling the
#: campaign).
SWEEP_MAX_CYCLES = 5_000_000
SWEEP_MAX_EVENTS = 1_000_000


@dataclass(frozen=True)
class CellSpec:
    """One fully pinned simulation cell."""

    config: WaveScalarConfig
    workload: str
    scale: str = "small"  # Scale.value, kept a str for JSON round-trips
    threads: Optional[int] = None
    k: Optional[int] = None
    seed: int = 0
    max_cycles: int = SWEEP_MAX_CYCLES
    max_events: int = SWEEP_MAX_EVENTS
    faults: Optional[FaultPlan] = None

    def as_dict(self) -> dict:
        return {
            "config": asdict(self.config),
            "workload": self.workload,
            "scale": self.scale,
            "threads": self.threads,
            "k": self.k,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "max_events": self.max_events,
            "faults": self.faults.to_dict() if self.faults else None,
        }

    def cell_hash(self) -> str:
        """Stable content hash over every field, budgets included."""
        canonical = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def identity_hash(self) -> str:
        """Content hash of the cell's *identity* -- every field except
        the cycle/event budgets.  Budget escalation produces a new
        :meth:`cell_hash` (a bigger budget is a different request) but
        the same identity, which is what the chaos layer and the
        per-cell circuit breaker key on: an injected fault or a crash
        streak follows the cell across escalated retries.
        """
        fields = self.as_dict()
        del fields["max_cycles"]
        del fields["max_events"]
        canonical = json.dumps(fields, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def escalated(self, factor: float) -> "CellSpec":
        """The same cell with both budgets scaled up (retry policy)."""
        return replace(
            self,
            max_cycles=int(self.max_cycles * factor),
            max_events=int(self.max_events * factor),
        )

    def describe(self) -> str:
        threads = f" x{self.threads}thr" if self.threads else ""
        return f"{self.workload}@{self.scale}{threads} on " \
               f"{self.config.describe()}"

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        faults = data.get("faults")
        return cls(
            config=WaveScalarConfig(**data["config"]),
            workload=data["workload"],
            scale=data.get("scale", "small"),
            threads=data.get("threads"),
            k=data.get("k"),
            seed=data.get("seed", 0),
            max_cycles=data.get("max_cycles", SWEEP_MAX_CYCLES),
            max_events=data.get("max_events", SWEEP_MAX_EVENTS),
            faults=FaultPlan.from_dict(faults) if faults else None,
        )
