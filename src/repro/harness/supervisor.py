"""Process-isolated, watchdogged execution of one sweep cell.

The supervisor is what lets a 41-configuration Pareto campaign survive
one pathological cell: each ``(config, workload, threads)`` runs in a
subprocess with a wall-clock watchdog, failures come back classified
(the :mod:`repro.sim.failures` taxonomy), and budget-exhaustion
failures are retried a bounded number of times with escalated budgets
before being recorded as failed.  A hung or crashed worker can never
stall the driver: the watchdog kills it and the cell is recorded as
:class:`~repro.sim.failures.WatchdogTimeout` /
:class:`~repro.sim.failures.WorkerCrash`.

``isolation="inline"`` runs cells in-process (no watchdog, no kill
protection) for fast tests and interactive use.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from ..sim.backends import (
    DEFAULT_BACKEND,
    batch_unsupported_reason,
    validate_backend,
)
from ..sim.failures import (
    SimulationDeadlock,
    WatchdogTimeout,
    WorkerCrash,
    is_transient,
)
from .spec import CellSpec

#: Default wall-clock allowance per attempt, chosen far above any
#: budgeted tiny/small-scale cell (seconds).
DEFAULT_TIMEOUT_S = 300.0

#: Default cells per lockstep batch group.  Past ~16 the amortized
#: per-cell overhead flattens while a single slow cell holds ever
#: more siblings at the lockstep ceiling; the acceptance benchmark
#: (``benchmarks/test_batched_backend.py``) gates at width >= 8.
DEFAULT_BATCH_WIDTH = 16


def _cache_delta(before: dict, after: dict) -> dict:
    """Compile-cache activity attributable to one cell attempt."""
    return {
        "compile_cache_hits": after["hits"] - before["hits"],
        "compile_cache_misses": after["misses"] - before["misses"],
        "compile_cache_evictions":
            after["evictions"] - before["evictions"],
    }


def execute_cell(spec: CellSpec, backend: str = DEFAULT_BACKEND) -> dict:
    """Run one cell to completion in the current process.

    Returns the flat, JSON-serialisable success payload; failures
    propagate as taxonomy exceptions for the caller to classify.  The
    payload's ``metrics`` block carries the cell's observability
    series: wall time and event throughput (wall-clock, excluded from
    determinism guarantees) plus the deterministic simulation counters
    (events, cycles, dispatches, messages) that ``repro stats`` and
    :class:`~repro.harness.sweep.SweepReport` aggregate.

    ``backend`` selects the engine (see :mod:`repro.sim.backends`);
    every backend produces bit-identical simulated results, so the
    payload differs only in its wall-clock fields.
    """
    from ..core.processor import WaveScalarProcessor
    from ..obs.metrics import cell_metrics
    from ..sim.compile import cache_info, get_compiled
    from ..workloads.registry import get

    workload = get(spec.workload)
    threads = spec.threads if workload.multithreaded else None
    proc = WaveScalarProcessor(
        spec.config, max_cycles=spec.max_cycles,
        max_events=spec.max_events, backend=backend,
    )
    started = time.perf_counter()
    cache_before = cache_info()
    compiled = get_compiled(
        spec.workload, scale=spec.scale, threads=threads, k=spec.k,
        seed=spec.seed,
    )
    result = proc.run_compiled(compiled, faults=spec.faults)
    wall_s = time.perf_counter() - started
    metrics = cell_metrics(result.stats, wall_s)
    metrics.update(_cache_delta(cache_before, cache_info()))
    return {
        "status": "ok",
        "aipc": result.aipc,
        "ipc": result.ipc,
        "cycles": result.cycles,
        "area_mm2": result.area_mm2,
        "dynamic_instructions": result.stats.dynamic_instructions,
        "alpha_instructions": result.stats.alpha_instructions,
        "metrics": metrics,
    }


def execute_batch(specs: list[CellSpec]) -> list[dict]:
    """Run one batch group of cells through the lockstep engine in the
    current process, returning one payload per cell in order.

    Every spec must share the batched backend's *group key* -- the
    compiled-workload signature ``(workload, scale, threads, k,
    seed)`` -- and carry no fault plan; the scheduler's grouping and
    :meth:`RunSupervisor.run_batch` guarantee both.  Per-cell payloads
    are shaped exactly like :func:`execute_cell`'s (success) and
    :func:`_child_main`'s (failure), so the demultiplexed records are
    indistinguishable from serial ones apart from wall-clock fields.
    """
    from ..core.processor import WaveScalarProcessor
    from ..core.results import SimulationResult
    from ..obs.metrics import cell_metrics
    from ..sim.batched import BatchedEngine
    from ..sim.compile import cache_info, get_compiled
    from ..sim.engine import Engine
    from ..workloads.registry import get

    if not specs:
        return []
    first = specs[0]
    for spec in specs:
        if (spec.workload, spec.scale, spec.threads, spec.k, spec.seed) \
                != (first.workload, first.scale, first.threads, first.k,
                    first.seed):
            raise ValueError(
                f"batch group mixes workload signatures: "
                f"{spec.describe()} vs {first.describe()}"
            )
        if spec.faults is not None:
            raise ValueError(
                f"{spec.describe()}: fault-plan cells cannot join a "
                f"batch group (run them on the plain backend)"
            )
    workload = get(first.workload)
    threads = first.threads if workload.multithreaded else None
    started = time.perf_counter()
    cache_before = cache_info()
    compiled = get_compiled(
        first.workload, scale=first.scale, threads=threads, k=first.k,
        seed=first.seed,
    )
    procs = []
    engines = []
    for spec in specs:
        proc = WaveScalarProcessor(
            spec.config, max_cycles=spec.max_cycles,
            max_events=spec.max_events,
        )
        placement = proc.place(compiled.graph)
        engines.append(Engine(
            compiled.graph, spec.config, placement,
            max_cycles=spec.max_cycles, max_events=spec.max_events,
            compiled=compiled.decoded,
        ))
        procs.append(proc)
    outcomes = BatchedEngine(engines).run(strict=True)
    wall_s = (time.perf_counter() - started) / len(specs)
    cache_delta = _cache_delta(cache_before, cache_info())
    expected = compiled.expected_outputs()
    payloads: list[dict] = []
    for spec, proc, outcome in zip(specs, procs, outcomes):
        if not outcome.ok:
            payloads.append(_failure_payload(outcome.error))
            continue
        result = SimulationResult(
            program=compiled.graph.name, config=spec.config,
            stats=outcome.stats, area=proc._area, timing=proc._timing,
            threads=threads,
        )
        got = result.outputs()
        if got != expected:
            # The exact AssertionError run_compiled would have raised.
            error = AssertionError(
                f"{compiled.name}: simulator output {got!r} != "
                f"reference {expected!r}"
            )
            payloads.append(_failure_payload(error))
            continue
        metrics = cell_metrics(result.stats, wall_s)
        metrics.update(cache_delta)
        payloads.append({
            "status": "ok",
            "aipc": result.aipc,
            "ipc": result.ipc,
            "cycles": result.cycles,
            "area_mm2": result.area_mm2,
            "dynamic_instructions": result.stats.dynamic_instructions,
            "alpha_instructions": result.stats.alpha_instructions,
            "metrics": metrics,
        })
    return payloads


def _failure_payload(exc: BaseException) -> dict:
    """The failure dict :func:`_child_main` would ship for ``exc``."""
    if isinstance(exc, SimulationDeadlock):
        diagnostics = getattr(exc, "diagnostics", None)
        return {
            "status": "failed",
            "failure_class": type(exc).__name__,
            "failure_detail": str(exc).splitlines()[0] if str(exc) else "",
            "diagnostics": diagnostics.to_dict() if diagnostics else None,
        }
    return {
        "status": "failed",
        "failure_class": type(exc).__name__,
        "failure_detail": f"{type(exc).__name__}: {exc}",
        "diagnostics": None,
    }


def _child_main(spec: CellSpec, channel, sabotage=None,
                backend: str = DEFAULT_BACKEND) -> None:
    """Subprocess entry point: run the cell, ship back one dict.

    ``sabotage`` is an optional chaos-layer
    :class:`~repro.harness.chaos.Sabotage` decided by the *parent*;
    the child applies it blindly (sleep, die) so no chaos logic or
    RNG state ever runs worker-side.
    """
    if sabotage is not None:
        sabotage.apply()
    try:
        payload = execute_cell(spec, backend=backend)
    except Exception as exc:  # noqa: BLE001 - classified either way
        payload = _failure_payload(exc)
    channel.put(payload)


def _batch_child_main(specs: list[CellSpec], channel) -> None:
    """Subprocess entry point for one batch group: run the lockstep
    engine over every cell, ship back one payload list in one put.

    The child disables the cyclic GC: batch state is dropped wholesale
    at process exit, and collection pauses in the middle of the
    lockstep drain would only add jitter to every cell in the group.
    A group-level failure (a broken placement, a refused engine)
    produces the same failure payload for every cell; the parent's
    per-cell fallback then re-runs each one under the full serial
    policy, so a batch can degrade but never wedge.
    """
    import gc

    gc.disable()
    try:
        payloads = execute_batch(specs)
    except Exception as exc:  # noqa: BLE001 - group-level failure
        payloads = [dict(_failure_payload(exc)) for _ in specs]
    channel.put(payloads)


@dataclass
class CellResult:
    """The supervisor's verdict on one cell (after retries)."""

    spec: CellSpec  # the final spec attempted (post-escalation)
    status: str  # "ok" | "failed" | "poisoned"
    attempts: int = 1
    retries: int = 0
    wall_s: float = 0.0
    outcome: dict = field(default_factory=dict)  # success payload
    failure_class: Optional[str] = None
    failure_detail: Optional[str] = None
    diagnostics: Optional[dict] = None
    #: Attempts lost to chaos-injected faults.  Excluded from
    #: ``retries`` so a chaos campaign's retry accounting aggregates
    #: bit-identically to an undisturbed run.
    injected: int = 0
    #: The engine backend *requested* for this cell (``None`` on
    #: results built before the registry existed).  Deliberately the
    #: requested backend, not the one that happened to execute: the
    #: recorded value is then a pure function of the campaign
    #: arguments, identical for any jobs value or batch interleaving.
    backend: Optional[str] = None
    #: Why a ``batched`` request ran this cell on the plain engine --
    #: one of the deterministic per-cell reasons from
    #: :func:`repro.sim.backends.batch_unsupported_reason` (never a
    #: scheduling dynamic such as a batch crash or the achieved
    #: width; those stay in wall-clock-exempt report metrics).
    backend_fallback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def aipc(self) -> float:
        return self.outcome.get("aipc", 0.0)

    @property
    def metrics(self) -> dict:
        """The cell's observability block (wall time, event
        throughput, deterministic simulation counters); empty for
        failed cells."""
        return self.outcome.get("metrics", {})

    @property
    def events_per_s(self) -> float:
        """Simulation event throughput of the successful attempt."""
        return self.metrics.get("events_per_s", 0.0)


class RunSupervisor:
    """Executes cells with isolation, a watchdog, and retry policy.

    Concurrency contract: a supervisor holds *no* per-run mutable
    state -- :meth:`run` builds everything it needs per attempt -- so
    one instance may execute cells concurrently from several threads,
    or be shipped to the scheduler's worker processes and run one lane
    each.  Instances pickle cleanly (the multiprocessing context is
    rebuilt by name on unpickle), which is what lets the parallel
    scheduler hand the *same* policy object to every worker.
    """

    def __init__(
        self,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        max_retries: int = 2,
        escalation: float = 4.0,
        isolation: str = "process",
        mp_context: Optional[str] = None,
        chaos=None,
        backend: str = DEFAULT_BACKEND,
        batch_width: int = DEFAULT_BATCH_WIDTH,
    ) -> None:
        if isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if escalation <= 1.0:
            raise ValueError("escalation factor must exceed 1")
        if batch_width < 1:
            raise ValueError("batch width must be at least 1")
        self.backend = validate_backend(backend)
        if chaos is not None and self.backend == "batched":
            # A sabotage decided for one cell would disturb its whole
            # batch group -- the chaos invariants are per-cell, so the
            # two layers do not compose.
            raise ValueError(
                "chaos injection does not compose with the batched "
                "backend; run chaos campaigns on the plain backend"
            )
        self.batch_width = batch_width
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.escalation = escalation
        self.isolation = isolation
        if mp_context is None:
            # fork is near-free on Linux; fall back where unavailable.
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.mp_context = mp_context
        self._ctx = multiprocessing.get_context(mp_context)
        #: Optional :class:`~repro.harness.chaos.ChaosPlan` (duck
        #: typed: anything with ``sabotage_for``/``selected``).  A
        #: frozen dataclass, so it pickles into scheduler workers with
        #: the supervisor.  Sabotage only engages under process
        #: isolation -- an inline SIGKILL would kill the driver.
        self.chaos = chaos

    # ------------------------------------------------------------------
    def clone_kwargs(self) -> dict:
        """Constructor kwargs reproducing this supervisor's policy
        (for building an equivalent instance in a worker process)."""
        return {
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "escalation": self.escalation,
            "isolation": self.isolation,
            "mp_context": self.mp_context,
            "chaos": self.chaos,
            "backend": self.backend,
            "batch_width": self.batch_width,
        }

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_ctx"]  # contexts don't pickle; rebuilt by name
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ctx = multiprocessing.get_context(self.mp_context)

    # ------------------------------------------------------------------
    def run(self, spec: CellSpec) -> CellResult:
        """One cell through the full policy: attempt, classify, and
        retry transient budget failures with escalated budgets.

        With a chaos plan attached, each attempt may carry an injected
        sabotage.  A *retryable* injected failure (one-shot kill or
        stall) is retried immediately on the same spec and counted in
        ``injected`` rather than ``retries`` -- the injection must
        never consume the real retry budget or escalate budgets, or a
        chaos run's verdicts would diverge from a clean run's.
        """
        started = time.monotonic()
        if self.isolation == "process" and self.mp_context == "fork":
            self._warm_compile(spec)
        backend_fallback = None
        if self.backend == "batched":
            backend_fallback = batch_unsupported_reason(faults=spec.faults)
        attempts = 0
        injected = 0
        while True:
            attempts += 1
            sabotage = None
            if self.chaos is not None and self.isolation == "process":
                sabotage = self.chaos.sabotage_for(spec, attempts)
            payload = self._attempt(spec, sabotage)
            if payload["status"] == "ok":
                return CellResult(
                    spec=spec, status="ok", attempts=attempts,
                    retries=attempts - 1 - injected,
                    wall_s=time.monotonic() - started, outcome=payload,
                    injected=injected, backend=self.backend,
                    backend_fallback=backend_fallback,
                )
            if sabotage is not None and sabotage.retryable:
                injected += 1
                continue
            failure_class = payload.get("failure_class", "WorkerCrash")
            if is_transient(failure_class) and \
                    attempts - injected <= self.max_retries:
                # A bigger budget may complete; true deadlocks and
                # watchdog kills are not retried (deterministic or
                # already at the wall-clock limit).
                spec = spec.escalated(self.escalation)
                continue
            return CellResult(
                spec=spec, status="failed", attempts=attempts,
                retries=attempts - 1 - injected,
                wall_s=time.monotonic() - started,
                failure_class=failure_class,
                failure_detail=payload.get("failure_detail"),
                diagnostics=payload.get("diagnostics"),
                injected=injected, backend=self.backend,
                backend_fallback=backend_fallback,
            )

    def run_batch(self, specs: list[CellSpec]) -> list[CellResult]:
        """One batch group of cells through the lockstep backend,
        returning per-cell verdicts in order.

        The contract mirrors :meth:`run` cell for cell:

        * a cell the batched engine cannot take (fault plan attached,
          numpy missing) runs the full serial policy instead, with the
          deterministic reason on ``backend_fallback``;
        * a cell whose *batch* attempt fails -- its own simulation
          failure, a group-level crash, or the group watchdog -- has
          that verdict discarded and re-runs under the full serial
          policy (watchdog, budget escalation, retry accounting), so
          its final record is bit-identical to the plain backend's.
          The discarded batch attempt is a scheduling dynamic: it is
          never counted in ``attempts``/``retries`` and never recorded
          in the ledger.

        The batch group's wall-clock allowance is ``timeout_s`` x
        the group width (a batch is one process doing the work of
        width serial attempts); a hung group is killed and every cell
        degrades to the per-cell path.
        """
        if self.chaos is not None:
            raise ValueError(
                "chaos injection does not compose with run_batch"
            )
        specs = list(specs)
        if not specs:
            return []
        results: dict[int, CellResult] = {}
        batchable: list[tuple[int, CellSpec]] = []
        for index, spec in enumerate(specs):
            reason = batch_unsupported_reason(faults=spec.faults)
            if reason is not None:
                result = self.run(spec)
                result.backend = "batched"
                result.backend_fallback = reason
                results[index] = result
            else:
                batchable.append((index, spec))
        if batchable:
            if self.isolation == "process" and self.mp_context == "fork":
                self._warm_compile(batchable[0][1])
            started = time.monotonic()
            payloads = self._attempt_batch(
                [spec for _, spec in batchable]
            )
            wall_s = (time.monotonic() - started) / len(batchable)
            for (index, spec), payload in zip(batchable, payloads):
                if payload.get("status") == "ok":
                    results[index] = CellResult(
                        spec=spec, status="ok", attempts=1, retries=0,
                        wall_s=wall_s, outcome=payload,
                        backend="batched", backend_fallback=None,
                    )
                else:
                    # Per-cell degradation: the serial policy decides,
                    # so the verdict matches a plain-backend run.
                    result = self.run(spec)
                    result.backend = "batched"
                    results[index] = result
        return [results[index] for index in range(len(specs))]

    # ------------------------------------------------------------------
    @staticmethod
    def _warm_compile(spec: CellSpec) -> None:
        """Pre-build the cell's compiled workload in *this* process so
        that forked attempt subprocesses inherit the warm cache through
        copy-on-write memory -- budget-escalation retries of the same
        cell then never rebuild the program.  Escalation only changes
        budgets, never the compile key, so one warm covers every
        attempt.  Build failures are swallowed here: the attempt itself
        will hit the same error and classify it properly.
        """
        try:
            from ..sim.compile import get_compiled
            from ..workloads.registry import get

            workload = get(spec.workload)
            threads = spec.threads if workload.multithreaded else None
            get_compiled(
                spec.workload, scale=spec.scale, threads=threads,
                k=spec.k, seed=spec.seed,
            )
        except Exception:  # noqa: BLE001 - deferred to the attempt
            pass

    def _attempt(self, spec: CellSpec, sabotage=None) -> dict:
        if self.isolation == "inline":
            return self._attempt_inline(spec)
        return self._attempt_process(spec, sabotage)

    def _attempt_inline(self, spec: CellSpec) -> dict:
        try:
            return execute_cell(spec, backend=self.backend)
        except SimulationDeadlock as exc:
            diagnostics = getattr(exc, "diagnostics", None)
            return {
                "status": "failed",
                "failure_class": type(exc).__name__,
                "failure_detail":
                    str(exc).splitlines()[0] if str(exc) else "",
                "diagnostics":
                    diagnostics.to_dict() if diagnostics else None,
            }

    def _attempt_process(self, spec: CellSpec, sabotage=None) -> dict:
        channel = self._ctx.SimpleQueue()
        worker = self._ctx.Process(
            target=_child_main,
            args=(spec, channel, sabotage, self.backend),
            daemon=True,
        )
        worker.start()
        worker.join(self.timeout_s)
        try:
            if worker.is_alive():
                worker.kill()
                worker.join()
                return {
                    "status": "failed",
                    "failure_class": WatchdogTimeout.__name__,
                    "failure_detail":
                        f"{spec.describe()}: no result within "
                        f"{self.timeout_s}s; worker killed",
                    "diagnostics": None,
                }
            if channel.empty():
                return {
                    "status": "failed",
                    "failure_class": WorkerCrash.__name__,
                    "failure_detail":
                        f"{spec.describe()}: worker exited "
                        f"{worker.exitcode} without a result",
                    "diagnostics": None,
                }
            return channel.get()
        finally:
            channel.close()

    def _attempt_batch(self, specs: list[CellSpec]) -> list[dict]:
        """One lockstep attempt over a batch group; per-cell payloads.

        Group-level problems (a crash taking the whole child, the group
        watchdog firing) come back as identical failure payloads for
        every cell -- :meth:`run_batch` then re-runs each one serially,
        so a batch attempt can only ever cost time, never correctness.
        """
        if self.isolation == "inline":
            try:
                return execute_batch(specs)
            except Exception as exc:  # noqa: BLE001 - group failure
                return [dict(_failure_payload(exc)) for _ in specs]
        return self._attempt_batch_process(specs)

    def _attempt_batch_process(self, specs: list[CellSpec]) -> list[dict]:
        channel = self._ctx.SimpleQueue()
        worker = self._ctx.Process(
            target=_batch_child_main, args=(specs, channel), daemon=True,
        )
        worker.start()
        # One process doing the work of len(specs) serial attempts gets
        # the corresponding wall-clock allowance.
        deadline = (
            None if self.timeout_s is None
            else self.timeout_s * len(specs)
        )
        worker.join(deadline)
        try:
            if worker.is_alive():
                worker.kill()
                worker.join()
                return [
                    {
                        "status": "failed",
                        "failure_class": WatchdogTimeout.__name__,
                        "failure_detail":
                            f"{spec.describe()}: batch group of "
                            f"{len(specs)} produced no result within "
                            f"{deadline}s; worker killed",
                        "diagnostics": None,
                    }
                    for spec in specs
                ]
            if channel.empty():
                return [
                    {
                        "status": "failed",
                        "failure_class": WorkerCrash.__name__,
                        "failure_detail":
                            f"{spec.describe()}: batch worker exited "
                            f"{worker.exitcode} without a result",
                        "diagnostics": None,
                    }
                    for spec in specs
                ]
            return channel.get()
        finally:
            channel.close()
