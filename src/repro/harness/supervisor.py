"""Process-isolated, watchdogged execution of one sweep cell.

The supervisor is what lets a 41-configuration Pareto campaign survive
one pathological cell: each ``(config, workload, threads)`` runs in a
subprocess with a wall-clock watchdog, failures come back classified
(the :mod:`repro.sim.failures` taxonomy), and budget-exhaustion
failures are retried a bounded number of times with escalated budgets
before being recorded as failed.  A hung or crashed worker can never
stall the driver: the watchdog kills it and the cell is recorded as
:class:`~repro.sim.failures.WatchdogTimeout` /
:class:`~repro.sim.failures.WorkerCrash`.

``isolation="inline"`` runs cells in-process (no watchdog, no kill
protection) for fast tests and interactive use.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from ..sim.failures import (
    SimulationDeadlock,
    WatchdogTimeout,
    WorkerCrash,
    is_transient,
)
from .spec import CellSpec

#: Default wall-clock allowance per attempt, chosen far above any
#: budgeted tiny/small-scale cell (seconds).
DEFAULT_TIMEOUT_S = 300.0


def execute_cell(spec: CellSpec) -> dict:
    """Run one cell to completion in the current process.

    Returns the flat, JSON-serialisable success payload; failures
    propagate as taxonomy exceptions for the caller to classify.  The
    payload's ``metrics`` block carries the cell's observability
    series: wall time and event throughput (wall-clock, excluded from
    determinism guarantees) plus the deterministic simulation counters
    (events, cycles, dispatches, messages) that ``repro stats`` and
    :class:`~repro.harness.sweep.SweepReport` aggregate.
    """
    from ..core.processor import WaveScalarProcessor
    from ..obs.metrics import cell_metrics
    from ..sim.compile import get_compiled
    from ..workloads.registry import get

    workload = get(spec.workload)
    threads = spec.threads if workload.multithreaded else None
    proc = WaveScalarProcessor(
        spec.config, max_cycles=spec.max_cycles,
        max_events=spec.max_events,
    )
    started = time.perf_counter()
    compiled = get_compiled(
        spec.workload, scale=spec.scale, threads=threads, k=spec.k,
        seed=spec.seed,
    )
    result = proc.run_compiled(compiled, faults=spec.faults)
    wall_s = time.perf_counter() - started
    return {
        "status": "ok",
        "aipc": result.aipc,
        "ipc": result.ipc,
        "cycles": result.cycles,
        "area_mm2": result.area_mm2,
        "dynamic_instructions": result.stats.dynamic_instructions,
        "alpha_instructions": result.stats.alpha_instructions,
        "metrics": cell_metrics(result.stats, wall_s),
    }


def _child_main(spec: CellSpec, channel, sabotage=None) -> None:
    """Subprocess entry point: run the cell, ship back one dict.

    ``sabotage`` is an optional chaos-layer
    :class:`~repro.harness.chaos.Sabotage` decided by the *parent*;
    the child applies it blindly (sleep, die) so no chaos logic or
    RNG state ever runs worker-side.
    """
    if sabotage is not None:
        sabotage.apply()
    try:
        payload = execute_cell(spec)
    except SimulationDeadlock as exc:
        diagnostics = getattr(exc, "diagnostics", None)
        payload = {
            "status": "failed",
            "failure_class": type(exc).__name__,
            "failure_detail": str(exc).splitlines()[0] if str(exc) else "",
            "diagnostics": diagnostics.to_dict() if diagnostics else None,
        }
    except Exception as exc:  # noqa: BLE001 - anything else is a crash
        payload = {
            "status": "failed",
            "failure_class": type(exc).__name__,
            "failure_detail": f"{type(exc).__name__}: {exc}",
            "diagnostics": None,
        }
    channel.put(payload)


@dataclass
class CellResult:
    """The supervisor's verdict on one cell (after retries)."""

    spec: CellSpec  # the final spec attempted (post-escalation)
    status: str  # "ok" | "failed" | "poisoned"
    attempts: int = 1
    retries: int = 0
    wall_s: float = 0.0
    outcome: dict = field(default_factory=dict)  # success payload
    failure_class: Optional[str] = None
    failure_detail: Optional[str] = None
    diagnostics: Optional[dict] = None
    #: Attempts lost to chaos-injected faults.  Excluded from
    #: ``retries`` so a chaos campaign's retry accounting aggregates
    #: bit-identically to an undisturbed run.
    injected: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def aipc(self) -> float:
        return self.outcome.get("aipc", 0.0)

    @property
    def metrics(self) -> dict:
        """The cell's observability block (wall time, event
        throughput, deterministic simulation counters); empty for
        failed cells."""
        return self.outcome.get("metrics", {})

    @property
    def events_per_s(self) -> float:
        """Simulation event throughput of the successful attempt."""
        return self.metrics.get("events_per_s", 0.0)


class RunSupervisor:
    """Executes cells with isolation, a watchdog, and retry policy.

    Concurrency contract: a supervisor holds *no* per-run mutable
    state -- :meth:`run` builds everything it needs per attempt -- so
    one instance may execute cells concurrently from several threads,
    or be shipped to the scheduler's worker processes and run one lane
    each.  Instances pickle cleanly (the multiprocessing context is
    rebuilt by name on unpickle), which is what lets the parallel
    scheduler hand the *same* policy object to every worker.
    """

    def __init__(
        self,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        max_retries: int = 2,
        escalation: float = 4.0,
        isolation: str = "process",
        mp_context: Optional[str] = None,
        chaos=None,
    ) -> None:
        if isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if escalation <= 1.0:
            raise ValueError("escalation factor must exceed 1")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.escalation = escalation
        self.isolation = isolation
        if mp_context is None:
            # fork is near-free on Linux; fall back where unavailable.
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.mp_context = mp_context
        self._ctx = multiprocessing.get_context(mp_context)
        #: Optional :class:`~repro.harness.chaos.ChaosPlan` (duck
        #: typed: anything with ``sabotage_for``/``selected``).  A
        #: frozen dataclass, so it pickles into scheduler workers with
        #: the supervisor.  Sabotage only engages under process
        #: isolation -- an inline SIGKILL would kill the driver.
        self.chaos = chaos

    # ------------------------------------------------------------------
    def clone_kwargs(self) -> dict:
        """Constructor kwargs reproducing this supervisor's policy
        (for building an equivalent instance in a worker process)."""
        return {
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "escalation": self.escalation,
            "isolation": self.isolation,
            "mp_context": self.mp_context,
            "chaos": self.chaos,
        }

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_ctx"]  # contexts don't pickle; rebuilt by name
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ctx = multiprocessing.get_context(self.mp_context)

    # ------------------------------------------------------------------
    def run(self, spec: CellSpec) -> CellResult:
        """One cell through the full policy: attempt, classify, and
        retry transient budget failures with escalated budgets.

        With a chaos plan attached, each attempt may carry an injected
        sabotage.  A *retryable* injected failure (one-shot kill or
        stall) is retried immediately on the same spec and counted in
        ``injected`` rather than ``retries`` -- the injection must
        never consume the real retry budget or escalate budgets, or a
        chaos run's verdicts would diverge from a clean run's.
        """
        started = time.monotonic()
        if self.isolation == "process" and self.mp_context == "fork":
            self._warm_compile(spec)
        attempts = 0
        injected = 0
        while True:
            attempts += 1
            sabotage = None
            if self.chaos is not None and self.isolation == "process":
                sabotage = self.chaos.sabotage_for(spec, attempts)
            payload = self._attempt(spec, sabotage)
            if payload["status"] == "ok":
                return CellResult(
                    spec=spec, status="ok", attempts=attempts,
                    retries=attempts - 1 - injected,
                    wall_s=time.monotonic() - started, outcome=payload,
                    injected=injected,
                )
            if sabotage is not None and sabotage.retryable:
                injected += 1
                continue
            failure_class = payload.get("failure_class", "WorkerCrash")
            if is_transient(failure_class) and \
                    attempts - injected <= self.max_retries:
                # A bigger budget may complete; true deadlocks and
                # watchdog kills are not retried (deterministic or
                # already at the wall-clock limit).
                spec = spec.escalated(self.escalation)
                continue
            return CellResult(
                spec=spec, status="failed", attempts=attempts,
                retries=attempts - 1 - injected,
                wall_s=time.monotonic() - started,
                failure_class=failure_class,
                failure_detail=payload.get("failure_detail"),
                diagnostics=payload.get("diagnostics"),
                injected=injected,
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _warm_compile(spec: CellSpec) -> None:
        """Pre-build the cell's compiled workload in *this* process so
        that forked attempt subprocesses inherit the warm cache through
        copy-on-write memory -- budget-escalation retries of the same
        cell then never rebuild the program.  Escalation only changes
        budgets, never the compile key, so one warm covers every
        attempt.  Build failures are swallowed here: the attempt itself
        will hit the same error and classify it properly.
        """
        try:
            from ..sim.compile import get_compiled
            from ..workloads.registry import get

            workload = get(spec.workload)
            threads = spec.threads if workload.multithreaded else None
            get_compiled(
                spec.workload, scale=spec.scale, threads=threads,
                k=spec.k, seed=spec.seed,
            )
        except Exception:  # noqa: BLE001 - deferred to the attempt
            pass

    def _attempt(self, spec: CellSpec, sabotage=None) -> dict:
        if self.isolation == "inline":
            return self._attempt_inline(spec)
        return self._attempt_process(spec, sabotage)

    @staticmethod
    def _attempt_inline(spec: CellSpec) -> dict:
        try:
            return execute_cell(spec)
        except SimulationDeadlock as exc:
            diagnostics = getattr(exc, "diagnostics", None)
            return {
                "status": "failed",
                "failure_class": type(exc).__name__,
                "failure_detail":
                    str(exc).splitlines()[0] if str(exc) else "",
                "diagnostics":
                    diagnostics.to_dict() if diagnostics else None,
            }

    def _attempt_process(self, spec: CellSpec, sabotage=None) -> dict:
        channel = self._ctx.SimpleQueue()
        worker = self._ctx.Process(
            target=_child_main, args=(spec, channel, sabotage),
            daemon=True,
        )
        worker.start()
        worker.join(self.timeout_s)
        try:
            if worker.is_alive():
                worker.kill()
                worker.join()
                return {
                    "status": "failed",
                    "failure_class": WatchdogTimeout.__name__,
                    "failure_detail":
                        f"{spec.describe()}: no result within "
                        f"{self.timeout_s}s; worker killed",
                    "diagnostics": None,
                }
            if channel.empty():
                return {
                    "status": "failed",
                    "failure_class": WorkerCrash.__name__,
                    "failure_detail":
                        f"{spec.describe()}: worker exited "
                        f"{worker.exitcode} without a result",
                    "diagnostics": None,
                }
            return channel.get()
        finally:
            channel.close()
