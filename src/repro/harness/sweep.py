"""Checkpointed design-space sweeps.

Turns a design list x workload suite into individual
``(config, workload, threads)`` cells, runs each through a
:class:`~repro.harness.supervisor.RunSupervisor`, and appends every
verdict to a JSONL :class:`~repro.harness.ledger.Ledger`.  Because
cells are keyed by content hash, an interrupted campaign -- even one
whose driver was SIGKILLed -- resumes with ``resume=True`` and
re-simulates nothing that already has a record.

Execution is organised into *lanes* (one per ``(design, workload)``
pair, sequential within, independent across) so ``jobs=N`` fans the
campaign out over N worker processes through
:mod:`repro.harness.scheduler` while the driver remains the single
ledger writer.  Aggregation walks the lanes in canonical order over
the content-hash-keyed record map, so the returned
:class:`~repro.design.pareto.ParetoPoint` list is identical for any
``jobs`` value and any completion order.

Aggregation mirrors the paper's method (and the historical in-process
code path): per workload the best-performing thread count wins, a
failed workload scores zero AIPC, and a design's suite score is the
mean over workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..design.pareto import ParetoPoint
from ..design.space import DesignPoint
from ..obs.metrics import ThroughputMeter
from ..workloads.base import Scale
from .ledger import Ledger
from .scheduler import Lane, execute_lanes, static_rejection
from .spec import SWEEP_MAX_CYCLES, SWEEP_MAX_EVENTS, CellSpec
from .supervisor import RunSupervisor

__all__ = [
    "CellFailure",
    "SweepReport",
    "design_space_sweep",
    "static_rejection",
    "sweep_cells",
]


@dataclass
class CellFailure:
    """One workload that scored zero on one design, and why."""

    config: str
    workload: str
    threads: Optional[int]
    failure_class: str
    detail: str = ""

    def render(self) -> str:
        threads = f" x{self.threads}thr" if self.threads else ""
        return (
            f"{self.workload}{threads} on {self.config}: "
            f"{self.failure_class}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class SweepReport:
    """Cell accounting for one sweep invocation."""

    completed: int = 0  # cells simulated to success this run
    failed: int = 0  # cells recorded as failed this run
    invalid: int = 0  # cells statically rejected, never simulated
    poisoned: int = 0  # cells quarantined by the circuit breaker
    pruned_static: int = 0  # cells skipped by the static-bound pruner
    predicted: int = 0  # cells skipped on a surrogate prediction
    retried: int = 0  # total retry attempts across cells
    skipped: int = 0  # cells resumed from the ledger, not re-simulated
    torn_lines: int = 0  # truncated ledger lines seen while resuming
    corrupt_lines: int = 0  # checksum-failed lines seen while resuming
    #: Set when the campaign failure-rate budget aborted the run; the
    #: report is then partial by design.
    aborted: Optional[str] = None
    failures: list[CellFailure] = field(default_factory=list)
    #: Observability blocks keyed by subsystem: ``"scheduler"``
    #: (worker utilization, queue depths, reap counts -- filled by
    #: :mod:`repro.harness.scheduler`) and ``"sweep"`` (wall time,
    #: cells per second -- filled by the sweep driver).  Wall-clock
    #: derived, so excluded from the jobs-independence contract.
    metrics: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return (self.completed + self.failed + self.invalid
                + self.poisoned + self.pruned_static + self.predicted
                + self.skipped)

    def summary(self) -> str:
        poisoned = (
            f" / {self.poisoned} poisoned" if self.poisoned else ""
        )
        if self.pruned_static:
            poisoned += f" / {self.pruned_static} pruned"
        if self.predicted:
            poisoned += f" / {self.predicted} predicted"
        lines = (
            f" [{self.torn_lines} torn ledger line(s) skipped]"
            if self.torn_lines else ""
        )
        if self.corrupt_lines:
            lines += (
                f" [{self.corrupt_lines} checksum-failed ledger "
                f"line(s) skipped]"
            )
        text = (
            f"cells: {self.completed} completed / {self.failed} failed "
            f"/ {self.invalid} invalid{poisoned} / {self.retried} "
            f"retried / {self.skipped} resumed ({self.total} total)"
            f"{lines}"
        )
        if self.aborted:
            text += f"\nABORTED: {self.aborted}"
        return text

    def metrics_summary(self) -> str:
        """One line per observability block, or '' when none were
        collected (e.g. a report built by hand in tests)."""
        lines = []
        sweep = self.metrics.get("sweep")
        if sweep:
            lines.append(
                f"throughput: {sweep['cells_per_s']:.2f} cells/s "
                f"({sweep['cells']} cells in {sweep['wall_s']:.1f}s)"
            )
        sched = self.metrics.get("scheduler")
        if sched:
            lines.append(
                f"scheduler: {sched['workers']} worker(s) "
                f"{sched['utilization']:.0%} busy, "
                f"{sched['dispatched']} dispatched, "
                f"{sched['workers_reaped']} reaped"
            )
        batched = self.metrics.get("batched")
        if batched:
            lines.append(
                f"batched: width {batched['batch_width']}, "
                f"{batched['batch_groups']} group(s) covering "
                f"{batched['batched_cells']} cell(s), "
                f"{batched['fallback_cells']} fallback(s)"
            )
        cache = self.metrics.get("compile_cache")
        if cache:
            lines.append(
                f"compile cache: {cache['hits']} hit(s) / "
                f"{cache['misses']} miss(es) / "
                f"{cache['evictions']} eviction(s)"
            )
        surrogate = self.metrics.get("surrogate")
        if surrogate:
            lines.append(
                f"surrogate: {surrogate['simulated_cells']} simulated "
                f"/ {surrogate['predicted_cells']} predicted, "
                f"{surrogate['refits']} refit(s), "
                f"model {surrogate['model_hash']}"
            )
        return "\n".join(lines)


def _metered(
    lanes: Sequence[Lane],
    progress: Optional[Callable[[CellSpec, dict], None]],
) -> tuple[ThroughputMeter, Callable[[CellSpec, dict], None]]:
    """A throughput meter over every plannable cell, chained in front
    of the caller's progress callback.  The lane protocol can finish
    early (stop-on-failure), so the planned total is an upper bound
    and the ETA is conservative."""
    meter = ThroughputMeter(total=sum(len(lane.specs) for lane in lanes))

    def _note(spec: CellSpec, record: dict) -> None:
        meter.note()
        if progress is not None:
            progress(spec, record)

    return meter, _note


def _finish_sweep_metrics(report: SweepReport,
                          meter: ThroughputMeter) -> None:
    report.metrics["sweep"] = {
        "wall_s": round(meter.elapsed_s, 3),
        "cells": meter.done,
        "planned_cells": meter.total,
        "cells_per_s": round(meter.rate(), 3),
    }


def _finish_backend_metrics(report: SweepReport, supervisor,
                            records: dict[str, dict]) -> None:
    """Driver-side observability for the engine backend: the compile
    cache's cumulative counters, and -- for the batched backend -- the
    achieved grouping and per-cell fallbacks.  All wall-clock-adjacent
    scheduling dynamics, deliberately kept out of the ledger records
    (which must stay identical across jobs values and interleavings).
    """
    from ..sim.compile import cache_info

    report.metrics["compile_cache"] = cache_info()
    if getattr(supervisor, "backend", None) != "batched":
        return
    sched = report.metrics.get("scheduler", {})
    report.metrics["batched"] = {
        "backend": supervisor.backend,
        "batch_width": supervisor.batch_width,
        "batch_groups": sched.get("batch_groups", 0),
        "batched_cells": sched.get("batched_cells", 0),
        "fallback_cells": sum(
            1 for record in records.values()
            if record.get("backend_fallback")
        ),
    }


def sweep_cells(
    specs: Iterable[CellSpec],
    *,
    ledger_path=None,
    resume: bool = False,
    supervisor: Optional[RunSupervisor] = None,
    progress: Optional[Callable[[CellSpec, dict], None]] = None,
    prevalidate: bool = True,
    jobs: Optional[int] = 1,
    chaos=None,
    failure_budget: Optional[float] = None,
    backend: Optional[str] = None,
    batch_width: Optional[int] = None,
) -> tuple[dict[str, dict], SweepReport]:
    """Run an explicit cell list; returns (records by hash, report).

    Cells here are mutually independent, so each becomes its own
    single-cell lane and ``jobs>1`` runs them fully concurrently.
    ``backend``/``batch_width`` configure the default supervisor (see
    :mod:`repro.sim.backends`); pass a prebuilt ``supervisor`` to
    control everything else.
    """
    specs = list(specs)
    if supervisor is None:
        kwargs: dict = {}
        if backend is not None:
            kwargs["backend"] = backend
        if batch_width is not None:
            kwargs["batch_width"] = batch_width
        supervisor = RunSupervisor(**kwargs)
    ledger = Ledger(ledger_path) if ledger_path else None
    done = ledger.load() if (ledger is not None and resume) else {}
    if done:
        # A predicted record is a surrogate annotation, not a
        # measurement; this entry point has no surrogate mode, so
        # resumed predicted cells are re-simulated (the measurement
        # then supersedes the prediction by seq).
        done = {
            cell: record for cell, record in done.items()
            if record.get("status") != "predicted"
        }
    report = SweepReport()
    if ledger is not None:
        report.torn_lines = ledger.torn_lines
        report.corrupt_lines = ledger.corrupt_lines
        ledger.chaos = chaos
    lanes = [
        Lane(key=(index,), specs=[spec])
        for index, spec in enumerate(specs)
    ]
    meter, noted = _metered(lanes, progress)
    execute_lanes(
        lanes, jobs=jobs, supervisor=supervisor, ledger=ledger,
        done=done, report=report, progress=noted,
        prevalidate=prevalidate, chaos=chaos,
        failure_budget=failure_budget,
    )
    _finish_sweep_metrics(report, meter)
    # ``.get``: an aborted (failure-budget) run leaves later cells
    # without records; the partial map is the point.
    records = {
        spec.cell_hash(): done[spec.cell_hash()]
        for spec in specs if spec.cell_hash() in done
    }
    _finish_backend_metrics(report, supervisor, records)
    return records, report


# ----------------------------------------------------------------------
# The Figure 6/7 evaluation loop
# ----------------------------------------------------------------------
def build_lanes(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    scale: Scale,
    threaded: bool,
    candidates: Sequence[int],
    max_cycles: int,
    max_events: int,
) -> list[Lane]:
    """One lane per ``(design, workload)`` pair, in canonical
    design-major order.  A lane's cells are its thread-count
    escalation sequence; the lane protocol stops probing upward after
    the first failure, exactly like the historical serial loop."""
    from ..core.experiments import feasible_thread_counts
    from ..workloads.registry import get

    lanes: list[Lane] = []
    feasible_memo: dict[str, Sequence[Optional[int]]] = {}
    for design_index, design in enumerate(designs):
        for name in names:
            workload = get(name)
            if threaded and workload.multithreaded:
                if name not in feasible_memo:
                    feasible_memo[name] = feasible_thread_counts(
                        workload, scale, candidates
                    )
                thread_counts: Sequence[Optional[int]] = \
                    feasible_memo[name]
            else:
                thread_counts = (None,)
            lanes.append(Lane(
                key=(design_index, name),
                specs=[
                    CellSpec(
                        config=design.config, workload=name,
                        scale=scale.value, threads=threads,
                        max_cycles=max_cycles, max_events=max_events,
                    )
                    for threads in thread_counts
                ],
            ))
    return lanes


def _optimistic_score(record: dict) -> float:
    """The score a skipped cell contributes to its design's mixed
    aggregate: the static AIPC bound for ``pruned_static`` records,
    the *skip-time* conformal upper interval for ``predicted`` ones.

    Predicted cells deliberately replay the interval frozen into the
    record when the skip was decided, never a retrained model's view:
    the skip test proved the design dominated at exactly that value,
    so re-deriving it from a later (possibly wider) model could lift a
    dominated design onto the frontier.
    """
    if record["status"] == "predicted":
        interval = record.get("aipc_interval")
        if interval:
            return float(interval[1])
    return float(record.get("aipc_bound", 0.0))


def _aggregate(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    lanes: Sequence[Lane],
    records: dict[str, dict],
    report: SweepReport,
) -> list[ParetoPoint]:
    """Fold the record map back into per-design Pareto points.

    Pure function of (lanes, records): runs after all execution, so
    the result is independent of cell completion order.  Failures are
    appended to ``report`` in canonical lane order -- the same order
    the serial driver historically emitted them in.
    """
    points: list[ParetoPoint] = []
    for design_index, design in enumerate(designs):
        config = design.config
        per_workload: list[float] = []
        for name_index, name in enumerate(names):
            lane = lanes[design_index * len(names) + name_index]
            best: Optional[float] = None
            for spec in lane.specs:
                record = records.get(spec.cell_hash())
                if record is None:
                    break  # never ran: an earlier cell stopped the lane
                if record["status"] == "ok":
                    aipc = record.get("aipc", 0.0)
                    best = aipc if best is None else max(best, aipc)
                elif record["status"] in ("pruned_static", "predicted"):
                    # A skipped cell contributes its optimistic score
                    # (static bound, or the frozen surrogate upper
                    # interval -- see _optimistic_score): the mixed
                    # aggregate is then an upper bound on the true
                    # one, and both skip tests fire only when the
                    # design is dominated even at that optimistic
                    # score, so the Pareto frontier is unchanged.
                    score = _optimistic_score(record)
                    best = score if best is None else max(best, score)
                else:
                    report.failures.append(CellFailure(
                        config=config.describe(), workload=name,
                        threads=spec.threads,
                        failure_class=record.get("failure_class", "?"),
                        detail=record.get("failure_detail") or "",
                    ))
                    # More threads only add pressure on a design that
                    # already failed; the lane stopped probing here.
                    break
            per_workload.append(best or 0.0)
        aipc = sum(per_workload) / len(per_workload) if per_workload \
            else 0.0
        points.append(ParetoPoint(
            label=config.describe(), area=design.area_mm2,
            performance=aipc, payload=config,
        ))
    return points


def _lane_score(
    lane: Lane, records: dict[str, dict]
) -> tuple[Optional[float], bool, bool]:
    """``(score, complete, pruned)`` for one lane, mirroring the
    :func:`_aggregate` scan exactly.

    ``complete`` means the lane needs no further simulation: every
    cell has a record, or an early cell failed (the lane protocol
    stops probing after a failure, so the score stands).  ``pruned``
    flags lanes carrying a ``pruned_static`` or ``predicted`` record
    -- their score is an upper bound, not a measurement, so the design
    is disqualified as a skip-test comparator.
    """
    best: Optional[float] = None
    pruned = False
    for spec in lane.specs:
        record = records.get(spec.cell_hash())
        if record is None:
            return best, False, pruned
        if record["status"] == "ok":
            aipc = record.get("aipc", 0.0)
            best = aipc if best is None else max(best, aipc)
        elif record["status"] in ("pruned_static", "predicted"):
            pruned = True
            score = _optimistic_score(record)
            best = score if best is None else max(best, score)
        else:
            return (best or 0.0), True, pruned
    return (best or 0.0), True, pruned


def _optimistic_aggregate(
    dlanes: Sequence[Lane],
    records: dict[str, dict],
    lane_bounds: dict[tuple, float],
) -> float:
    """Upper bound on the design's final suite aggregate: measured
    lanes contribute their score, unmeasured lanes their static AIPC
    bound.  Sound because per-cell bounds dominate measurements and a
    failed cell scores zero."""
    total = 0.0
    for lane in dlanes:
        score, complete, _ = _lane_score(lane, records)
        if complete:
            total += score or 0.0
        else:
            total += max(score or 0.0, lane_bounds[lane.key])
    return total / len(dlanes)


def _execute_pruned(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    lanes: Sequence[Lane],
    *,
    supervisor: RunSupervisor,
    ledger: Optional[Ledger],
    done: dict[str, dict],
    report: SweepReport,
    progress: Callable[[CellSpec, dict], None],
    prevalidate: bool,
    chaos,
    failure_budget: Optional[float],
) -> dict[str, dict]:
    """Bound-driven sweep: skip cells that provably cannot move the
    Pareto frontier.

    Designs run serially in area order (the ``designs`` sequence is
    already area-sorted).  Within a design, lanes run in *descending*
    static-bound order, so the most optimistic terms of the design's
    aggregate are replaced by measurements first and the optimistic
    aggregate drops as fast as possible.  Before each lane, the
    remaining cells are pruned when::

        (sum of measured lane scores
         + sum of unmeasured lane bounds) / len(names)
            <= best aggregate of any fully-measured design so far

    Every fully-measured design at this point has area <= the current
    design's (area order), so a design pruned here is dominated on the
    frontier whether its true aggregate is the mixed value or anything
    below it -- the frontier is bit-identical to the unpruned sweep's
    (proof in DESIGN.md section 5h).  Pruned cells get
    ``pruned_static`` ledger records carrying their bound, so resumed
    campaigns (pruned or not) replay the same decisions without
    re-simulating.
    """
    from ..analysis.dataflow import bound_for_cell

    n_names = len(names)
    lane_bounds: dict[tuple, float] = {}
    cell_bounds: dict[str, object] = {}
    for lane in lanes:
        best = 0.0
        for spec in lane.specs:
            bound = bound_for_cell(spec)
            cell_bounds[spec.cell_hash()] = bound
            best = max(best, bound.aipc_bound)
        lane_bounds[lane.key] = best

    frontier = 0.0  # best fully-measured aggregate at <= current area
    for design_index in range(len(designs)):
        if report.aborted:
            break
        dlanes = lanes[design_index * n_names:
                       (design_index + 1) * n_names]
        # Descending bound; lane key breaks float ties
        # deterministically.
        order = sorted(
            dlanes, key=lambda lane: (-lane_bounds[lane.key], lane.key)
        )
        for lane in order:
            _, complete, _ = _lane_score(lane, done)
            if complete:
                # Resumed from the ledger (measured or pruned in a
                # prior run): same accounting as execute_lanes' skip.
                report.skipped += sum(
                    1 for spec in lane.specs
                    if spec.cell_hash() in done
                )
                continue
            if frontier > 0.0 and _optimistic_aggregate(
                dlanes, done, lane_bounds
            ) <= frontier:
                # Dominated even if every unmeasured cell hit its
                # bound: record the remainder of the design as pruned.
                for victim in order:
                    _, victim_done, _ = _lane_score(victim, done)
                    if victim_done:
                        continue
                    for spec in victim.specs:
                        if spec.cell_hash() in done:
                            continue
                        record = Ledger.record_pruned(
                            spec, cell_bounds[spec.cell_hash()]
                        )
                        if ledger is not None:
                            ledger.append(record)
                        done[spec.cell_hash()] = record
                        report.pruned_static += 1
                        progress(spec, record)
                break
            execute_lanes(
                [lane], jobs=1, supervisor=supervisor, ledger=ledger,
                done=done, report=report, progress=progress,
                prevalidate=prevalidate, chaos=chaos,
                failure_budget=failure_budget,
            )
            if report.aborted:
                break
        scores = [_lane_score(lane, done) for lane in dlanes]
        if (all(complete for _, complete, _ in scores)
                and not any(pruned for _, _, pruned in scores)):
            aggregate = sum(score or 0.0 for score, _, _ in scores) \
                / n_names
            frontier = max(frontier, aggregate)
    return done


def _execute_surrogate(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    lanes: Sequence[Lane],
    *,
    supervisor: RunSupervisor,
    ledger: Optional[Ledger],
    done: dict[str, dict],
    report: SweepReport,
    progress: Callable[[CellSpec, dict], None],
    prevalidate: bool,
    chaos,
    failure_budget: Optional[float],
    prior_skips: bool = False,
) -> dict[str, dict]:
    """Active-learning sweep: a conformal surrogate orders the
    measurements and skips designs that cannot reach the frontier.

    Each round runs three steps (DESIGN.md section 5k):

    1. **Skip scan** -- a design is skipped when its *optimistic
       mixed aggregate* (measured lanes at their score, unmeasured
       cells at the surrogate's conformal upper interval, clipped to
       the sound static bound) is dominated by a fully-measured design
       of no larger area.  Skipped cells get ``predicted`` ledger
       records carrying the interval *frozen at skip time*; resume and
       aggregation replay exactly that value.  Designs whose
       unmeasured intervals are wider than
       :data:`~repro.surrogate.UNCERTAINTY_THRESHOLD` are never
       skipped -- a model that cannot commit must measure.
    2. **Acquisition** -- among unresolved designs, pick the one with
       the highest expected frontier improvement (mean-mixed aggregate
       minus the measured incumbent at <= its area; ties to the
       smaller area), then its widest-interval lane; measure that one
       lane.  Before ``min_train`` measured rows exist the model is an
       uninformative prior and designs are simply measured in
       ascending area order to establish the incumbent.
    3. **Retrain** on every measured record (``ok`` at its AIPC,
       ``failed``/``poisoned`` at the zero the aggregation assigns).

    When every design is resolved, an **exact-verify** pass recomputes
    the frontier: any frontier design still carrying ``predicted``
    records has them revoked and is re-measured (the model mis-ranked
    it; soundness requires every frontier point be a measurement).
    In calibrated operation this pass finds nothing -- a skip happens
    only when the frozen upper interval is already dominated -- but it
    is what *guarantees* the returned frontier is bit-identical to the
    exhaustive sweep's, independent of model quality.

    ``prior_skips=True`` (the ``prune`` + ``surrogate`` composition)
    additionally allows skips while the model is still the prior; the
    prior's interval is ``[0, bound]``, so those skips are exactly the
    static-bound prune test.

    Execution is serial (``jobs`` is ignored): every decision depends
    on the measurements before it, and determinism across ``--jobs``
    values is part of the sweep contract.
    """
    from ..analysis.dataflow import bound_for_cell
    from ..design.pareto import pareto_front
    from ..surrogate.features import training_rows
    from ..surrogate.search import UNCERTAINTY_THRESHOLD, SurrogateModel

    n_names = len(names)
    n_designs = len(designs)
    lane_bounds: dict[tuple, float] = {}
    cell_bounds: dict[str, object] = {}
    for lane in lanes:
        best = 0.0
        for spec in lane.specs:
            bound = bound_for_cell(spec)
            cell_bounds[spec.cell_hash()] = bound
            best = max(best, bound.aipc_bound)
        lane_bounds[lane.key] = best

    # Resume accounting: lanes already complete never reach
    # execute_lanes, so count their resumed records here (partially
    # complete lanes are counted by execute_lanes when they run).
    for lane in lanes:
        _, complete, _ = _lane_score(lane, done)
        if complete:
            report.skipped += sum(
                1 for spec in lane.specs if spec.cell_hash() in done
            )

    # Fixed seed: the surrogate's decisions are part of the sweep's
    # determinism contract (identical ledger for any --jobs value),
    # so its randomness cannot depend on the environment.
    model = SurrogateModel(seed=0)
    predictions: dict[str, object] = {}  # cell hash -> CellPrediction

    def _predict(spec: CellSpec):
        cell = spec.cell_hash()
        prediction = predictions.get(cell)
        if prediction is None:
            prediction = model.predict_cell(spec, cell_bounds[cell])
            predictions[cell] = prediction
        return prediction

    def _retrain() -> None:
        pairs = [
            (spec, done[spec.cell_hash()])
            for lane in lanes for spec in lane.specs
            if spec.cell_hash() in done
        ]
        X, y, groups = training_rows(pairs, bounds=cell_bounds)
        if model.fit(X, y, groups=groups):
            predictions.clear()

    def _dlanes(index: int) -> Sequence[Lane]:
        return lanes[index * n_names:(index + 1) * n_names]

    def _resolved(index: int) -> bool:
        return all(
            _lane_score(lane, done)[1] for lane in _dlanes(index)
        )

    def _clean_aggregate(index: int) -> Optional[float]:
        """The design's fully-measured suite aggregate, or ``None``
        when any lane is incomplete or scored by a bound/prediction
        (such a design cannot serve as a skip-test comparator)."""
        total = 0.0
        for lane in _dlanes(index):
            score, complete, pruned = _lane_score(lane, done)
            if not complete or pruned:
                return None
            total += score or 0.0
        return total / n_names

    def _mixed(index: int, optimistic: bool) -> float:
        """Suite aggregate with unmeasured cells filled in by the
        surrogate: the conformal upper interval (``optimistic``, the
        skip test) or the point estimate (the acquisition rank)."""
        total = 0.0
        for lane in _dlanes(index):
            score, complete, _ = _lane_score(lane, done)
            if complete:
                total += score or 0.0
                continue
            fill = 0.0
            for spec in lane.specs:
                if spec.cell_hash() in done:
                    continue
                prediction = _predict(spec)
                fill = max(fill, prediction.hi if optimistic
                           else prediction.aipc)
            total += max(score or 0.0, fill)
        return total / n_names

    def _max_width(index: int) -> float:
        width = 0.0
        for lane in _dlanes(index):
            _, complete, _ = _lane_score(lane, done)
            if complete:
                continue
            for spec in lane.specs:
                if spec.cell_hash() not in done:
                    width = max(width, _predict(spec).width)
        return width

    def _dominated(index: int, aggregate: float) -> bool:
        """Whether a fully-measured design of no larger area already
        beats ``aggregate``.  The equal-aggregate arm mirrors the
        stable sort inside :func:`pareto_front`: at identical area and
        performance the earlier (area-sorted, so cheaper-or-equal)
        design takes the frontier slot, so an exact tie against an
        earlier design still means dominated."""
        area = designs[index].area_mm2
        for other in range(n_designs):
            if other == index:
                continue
            if designs[other].area_mm2 > area + 1e-12:
                continue
            clean = _clean_aggregate(other)
            if clean is None:
                continue
            if clean > aggregate or (clean == aggregate
                                     and other < index):
                return True
        return False

    def _freeze(index: int) -> None:
        for lane in _dlanes(index):
            _, complete, _ = _lane_score(lane, done)
            if complete:
                continue
            for spec in lane.specs:
                cell = spec.cell_hash()
                if cell in done:
                    continue
                record = Ledger.record_predicted(
                    spec, cell_bounds[cell], _predict(spec)
                )
                if ledger is not None:
                    ledger.append(record)
                done[cell] = record
                report.predicted += 1
                progress(spec, record)

    def _incumbent(index: int) -> float:
        area = designs[index].area_mm2
        best = 0.0
        for other in range(n_designs):
            if designs[other].area_mm2 > area + 1e-12:
                continue
            clean = _clean_aggregate(other)
            if clean is not None:
                best = max(best, clean)
        return best

    def _predicted_on_frontier() -> list[int]:
        """Indices of frontier designs still carrying ``predicted``
        records -- the exact-verify offenders."""
        points = []
        carries: dict[str, int] = {}
        for index, design in enumerate(designs):
            scores = [
                _lane_score(lane, done) for lane in _dlanes(index)
            ]
            label = design.config.describe()
            points.append(ParetoPoint(
                label=label, area=design.area_mm2,
                performance=sum(s or 0.0 for s, _, _ in scores)
                / n_names,
            ))
            if any(
                done.get(spec.cell_hash(), {}).get("status")
                == "predicted"
                for lane in _dlanes(index) for spec in lane.specs
            ):
                carries[label] = index
        return sorted(
            carries[point.label]
            for point in pareto_front(points)
            if point.label in carries
        )

    must_measure: set[int] = set()
    simulated_at_start = (report.completed + report.failed
                          + report.poisoned)
    _retrain()  # resumed measurements train the model immediately
    while not report.aborted:
        if model.fitted or prior_skips:
            for index in range(n_designs):
                if index in must_measure or _resolved(index):
                    continue
                # The width gate only applies to the fitted model;
                # the prior's [0, bound] interval is sound by
                # construction, so width cannot disqualify it.
                if model.fitted and \
                        _max_width(index) > UNCERTAINTY_THRESHOLD:
                    continue
                if _dominated(index, _mixed(index, optimistic=True)):
                    _freeze(index)
        remaining = [
            index for index in range(n_designs)
            if not _resolved(index)
        ]
        if not remaining:
            offenders = _predicted_on_frontier()
            if not offenders:
                break
            for index in offenders:
                must_measure.add(index)
                for lane in _dlanes(index):
                    for spec in lane.specs:
                        cell = spec.cell_hash()
                        record = done.get(cell)
                        if (record is not None and record.get("status")
                                == "predicted"):
                            del done[cell]
                            report.predicted -= 1
            continue
        if not model.fitted:
            pick = remaining[0]  # ascending area: build the incumbent
        else:
            pick = max(
                remaining,
                key=lambda index: (
                    _mixed(index, optimistic=False)
                    - _incumbent(index),
                    -index,
                ),
            )
        open_lanes = [
            lane for lane in _dlanes(pick)
            if not _lane_score(lane, done)[1]
        ]

        def _lane_width(lane: Lane) -> float:
            return max(
                (_predict(spec).width for spec in lane.specs
                 if spec.cell_hash() not in done),
                default=0.0,
            )

        # Widest interval first (the measurement the model learns the
        # most from), then highest bound, then lane key -- all
        # deterministic.
        lane = min(
            open_lanes,
            key=lambda ln: (-_lane_width(ln), -lane_bounds[ln.key],
                            ln.key),
        )
        execute_lanes(
            [lane], jobs=1, supervisor=supervisor, ledger=ledger,
            done=done, report=report, progress=progress,
            prevalidate=prevalidate, chaos=chaos,
            failure_budget=failure_budget,
        )
        _retrain()
    report.metrics["surrogate"] = {
        "model_hash": model.model_hash,
        "refits": model.refits,
        "train_rows": model.train_rows,
        "predicted_cells": report.predicted,
        "simulated_cells": (report.completed + report.failed
                            + report.poisoned) - simulated_at_start,
        "verified_designs": sorted(
            designs[index].config.describe()
            for index in must_measure
        ),
        "prior_skips": bool(prior_skips),
    }
    return done


def design_space_sweep(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    scale: Scale = Scale.SMALL,
    threaded: bool = False,
    candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    *,
    ledger_path=None,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    isolation: str = "process",
    max_retries: int = 2,
    escalation: float = 4.0,
    max_cycles: int = SWEEP_MAX_CYCLES,
    max_events: int = SWEEP_MAX_EVENTS,
    supervisor: Optional[RunSupervisor] = None,
    progress: Optional[Callable[[CellSpec, dict], None]] = None,
    prevalidate: bool = True,
    jobs: Optional[int] = 1,
    chaos=None,
    failure_budget: Optional[float] = None,
    prune: bool = False,
    surrogate: bool = False,
    backend: Optional[str] = None,
    batch_width: Optional[int] = None,
) -> tuple[list[ParetoPoint], SweepReport]:
    """The fault-tolerant Figure 6/7 evaluation loop.

    Every ``(design, workload, threads)`` cell runs supervised; the
    returned points are identical in shape to
    ``repro.core.experiments.evaluate_design_space`` -- and identical
    in value for every ``jobs`` setting (``1`` = serial in-process,
    ``N>1`` = N worker processes, ``None``/``0`` = one per core).

    ``prune=True`` turns on static-bound pruning: cells whose AIPC
    upper bound cannot lift their design past an already-measured
    cheaper design are skipped with ``pruned_static`` ledger records
    (attempts=0, bound attached).  The returned Pareto *frontier* is
    bit-identical to the unpruned sweep's; dominated (off-frontier)
    points may report the optimistic mixed aggregate instead of the
    measured one.  Prune mode executes serially (``jobs`` is ignored)
    because each decision depends on the cells measured before it.

    ``surrogate=True`` turns on the active-learning sweep
    (:func:`_execute_surrogate`): a conformal quantile-forest trained
    on the measurements so far orders the remaining cells and skips
    designs whose bound-clipped upper interval cannot reach the
    frontier, recording them as ``predicted`` (point estimate,
    interval, and model hash attached).  An exact-verify pass
    re-measures any frontier design the model skipped, so the
    returned frontier is bit-identical to the exhaustive sweep's.
    Like prune mode it executes serially; combined with
    ``prune=True`` the surrogate additionally skips on the
    uninformative prior, which degenerates to the static-bound prune
    test.  Resuming *without* ``surrogate`` drops predicted records
    and re-simulates those cells.

    ``backend`` selects the engine for every cell (see
    :mod:`repro.sim.backends`); ``backend="batched"`` additionally
    groups same-workload cells into lockstep batch groups of up to
    ``batch_width``, composing with both ``jobs`` (each worker runs
    whole groups) and ``prune`` (pruning dispatches lanes one at a
    time, so batched cells simply run at width 1).  Records are
    bit-identical across backends apart from wall-clock fields and the
    ``backend``/``backend_fallback`` annotations.
    """
    if supervisor is None:
        kwargs = {} if timeout_s is None else {"timeout_s": timeout_s}
        if backend is not None:
            kwargs["backend"] = backend
        if batch_width is not None:
            kwargs["batch_width"] = batch_width
        supervisor = RunSupervisor(
            max_retries=max_retries, escalation=escalation,
            isolation=isolation, **kwargs,
        )
    ledger = Ledger(ledger_path) if ledger_path else None
    done = ledger.load() if (ledger is not None and resume) else {}
    if done and not surrogate:
        # Predicted records are surrogate annotations, not
        # measurements: resuming without --surrogate re-simulates
        # them (the measurement then supersedes by seq).
        done = {
            cell: record for cell, record in done.items()
            if record.get("status") != "predicted"
        }
    report = SweepReport()
    if ledger is not None:
        report.torn_lines = ledger.torn_lines
        report.corrupt_lines = ledger.corrupt_lines
        ledger.chaos = chaos
    lanes = build_lanes(
        designs, names, scale, threaded, candidates, max_cycles,
        max_events,
    )
    meter, noted = _metered(lanes, progress)
    if surrogate:
        records = _execute_surrogate(
            designs, names, lanes, supervisor=supervisor,
            ledger=ledger, done=done, report=report, progress=noted,
            prevalidate=prevalidate, chaos=chaos,
            failure_budget=failure_budget, prior_skips=prune,
        )
    elif prune:
        records = _execute_pruned(
            designs, names, lanes, supervisor=supervisor,
            ledger=ledger, done=done, report=report, progress=noted,
            prevalidate=prevalidate, chaos=chaos,
            failure_budget=failure_budget,
        )
    else:
        records = execute_lanes(
            lanes, jobs=jobs, supervisor=supervisor, ledger=ledger,
            done=done, report=report, progress=noted,
            prevalidate=prevalidate, chaos=chaos,
            failure_budget=failure_budget,
        )
    _finish_sweep_metrics(report, meter)
    _finish_backend_metrics(report, supervisor, records)
    points = _aggregate(designs, names, lanes, records, report)
    return points, report
