"""Checkpointed design-space sweeps.

Turns a design list x workload suite into individual
``(config, workload, threads)`` cells, runs each through a
:class:`~repro.harness.supervisor.RunSupervisor`, and appends every
verdict to a JSONL :class:`~repro.harness.ledger.Ledger`.  Because
cells are keyed by content hash, an interrupted campaign -- even one
whose driver was SIGKILLed -- resumes with ``resume=True`` and
re-simulates nothing that already has a record.

Aggregation mirrors the paper's method (and the historical in-process
code path): per workload the best-performing thread count wins, a
failed workload scores zero AIPC, and a design's suite score is the
mean over workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..design.pareto import ParetoPoint
from ..design.space import DesignPoint
from ..workloads.base import Scale
from .ledger import Ledger
from .spec import SWEEP_MAX_CYCLES, SWEEP_MAX_EVENTS, CellSpec
from .supervisor import CellResult, RunSupervisor


@dataclass
class CellFailure:
    """One workload that scored zero on one design, and why."""

    config: str
    workload: str
    threads: Optional[int]
    failure_class: str
    detail: str = ""

    def render(self) -> str:
        threads = f" x{self.threads}thr" if self.threads else ""
        return (
            f"{self.workload}{threads} on {self.config}: "
            f"{self.failure_class}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class SweepReport:
    """Cell accounting for one sweep invocation."""

    completed: int = 0  # cells simulated to success this run
    failed: int = 0  # cells recorded as failed this run
    invalid: int = 0  # cells statically rejected, never simulated
    retried: int = 0  # total retry attempts across cells
    skipped: int = 0  # cells resumed from the ledger, not re-simulated
    failures: list[CellFailure] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.completed + self.failed + self.invalid + self.skipped

    def summary(self) -> str:
        return (
            f"cells: {self.completed} completed / {self.failed} failed "
            f"/ {self.invalid} invalid / {self.retried} retried "
            f"/ {self.skipped} resumed ({self.total} total)"
        )


def static_rejection(spec: CellSpec) -> Optional[list]:
    """Error-level config diagnostics dooming ``spec``, or ``None``.

    The pre-validation stage of every sweep: an unrealizable
    configuration (over the die budget, off the clock target,
    contradictory cache geometry) is caught here, before a subprocess
    is forked for it -- historically such a cell burned a full
    watchdog timeout and polluted retry accounting.
    """
    from ..analysis import analyze_config

    report = analyze_config(spec.config)
    return report.errors if report.has_errors else None


def _cell_record(
    spec: CellSpec,
    done: dict[str, dict],
    supervisor: RunSupervisor,
    ledger: Optional[Ledger],
    report: SweepReport,
    progress: Optional[Callable[[CellSpec, dict], None]],
    prevalidate: bool = True,
) -> dict:
    """Run (or resume) one cell and account for it."""
    cell = spec.cell_hash()
    record = done.get(cell)
    if record is not None:
        report.skipped += 1
    else:
        rejected = static_rejection(spec) if prevalidate else None
        if rejected is not None:
            record = Ledger.record_invalid(spec, rejected)
            report.invalid += 1
        else:
            result: CellResult = supervisor.run(spec)
            record = Ledger.record_for(spec, result)
            report.retried += result.retries
            if result.ok:
                report.completed += 1
            else:
                report.failed += 1
        if ledger is not None:
            ledger.append(record)
        done[cell] = record
    if progress is not None:
        progress(spec, record)
    return record


def sweep_cells(
    specs: Iterable[CellSpec],
    *,
    ledger_path=None,
    resume: bool = False,
    supervisor: Optional[RunSupervisor] = None,
    progress: Optional[Callable[[CellSpec, dict], None]] = None,
    prevalidate: bool = True,
) -> tuple[dict[str, dict], SweepReport]:
    """Run an explicit cell list; returns (records by hash, report)."""
    supervisor = supervisor or RunSupervisor()
    ledger = Ledger(ledger_path) if ledger_path else None
    done = ledger.load() if (ledger is not None and resume) else {}
    report = SweepReport()
    records: dict[str, dict] = {}
    for spec in specs:
        records[spec.cell_hash()] = _cell_record(
            spec, done, supervisor, ledger, report, progress,
            prevalidate=prevalidate,
        )
    return records, report


def design_space_sweep(
    designs: Sequence[DesignPoint],
    names: Sequence[str],
    scale: Scale = Scale.SMALL,
    threaded: bool = False,
    candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    *,
    ledger_path=None,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    isolation: str = "process",
    max_retries: int = 2,
    escalation: float = 4.0,
    max_cycles: int = SWEEP_MAX_CYCLES,
    max_events: int = SWEEP_MAX_EVENTS,
    supervisor: Optional[RunSupervisor] = None,
    progress: Optional[Callable[[CellSpec, dict], None]] = None,
    prevalidate: bool = True,
) -> tuple[list[ParetoPoint], SweepReport]:
    """The fault-tolerant Figure 6/7 evaluation loop.

    Every ``(design, workload, threads)`` cell runs supervised; the
    returned points are identical in shape to
    ``repro.core.experiments.evaluate_design_space``.
    """
    from ..core.experiments import feasible_thread_counts
    from ..workloads.registry import get

    if supervisor is None:
        kwargs = {} if timeout_s is None else {"timeout_s": timeout_s}
        supervisor = RunSupervisor(
            max_retries=max_retries, escalation=escalation,
            isolation=isolation, **kwargs,
        )
    ledger = Ledger(ledger_path) if ledger_path else None
    done = ledger.load() if (ledger is not None and resume) else {}
    report = SweepReport()
    points: list[ParetoPoint] = []

    for design in designs:
        config = design.config
        per_workload: list[float] = []
        for name in names:
            workload = get(name)
            if threaded and workload.multithreaded:
                thread_counts: Sequence[Optional[int]] = \
                    feasible_thread_counts(workload, scale, candidates)
            else:
                thread_counts = (None,)
            best: Optional[float] = None
            for threads in thread_counts:
                spec = CellSpec(
                    config=config, workload=name, scale=scale.value,
                    threads=threads, max_cycles=max_cycles,
                    max_events=max_events,
                )
                record = _cell_record(
                    spec, done, supervisor, ledger, report, progress,
                    prevalidate=prevalidate,
                )
                if record["status"] == "ok":
                    aipc = record.get("aipc", 0.0)
                    best = aipc if best is None else max(best, aipc)
                else:
                    report.failures.append(CellFailure(
                        config=config.describe(), workload=name,
                        threads=threads,
                        failure_class=record.get("failure_class", "?"),
                        detail=record.get("failure_detail") or "",
                    ))
                    # More threads only add pressure on a design that
                    # already failed; stop probing upward.
                    break
            per_workload.append(best or 0.0)
        aipc = sum(per_workload) / len(per_workload) if per_workload \
            else 0.0
        points.append(ParetoPoint(
            label=config.describe(), area=design.area_mm2,
            performance=aipc, payload=config,
        ))
    return points, report
