"""WaveScalar instruction set architecture.

The :mod:`repro.isa` package defines the program representation shared
by the toolchain (:mod:`repro.lang`), the placement phase
(:mod:`repro.place`) and the cycle-level simulator (:mod:`repro.sim`):
tagged tokens, opcodes, static instructions with wave-ordered memory
annotations, and the dataflow-graph binary format.
"""

from .encoding import EncodingError, decode, encode
from .graph import DataflowGraph, ThreadInfo
from .instruction import Dest, Instruction
from .opcodes import OpClass, Opcode, OpInfo, OPCODES_BY_NAME
from .token import Tag, Token, Value, make_token
from .verify import GraphVerificationError, verify_graph
from .waves import (
    UNKNOWN,
    WAVE_END,
    WAVE_START,
    WaveAnnotation,
    WaveSequencer,
)

__all__ = [
    "DataflowGraph",
    "EncodingError",
    "decode",
    "encode",
    "ThreadInfo",
    "Dest",
    "Instruction",
    "OpClass",
    "Opcode",
    "OpInfo",
    "OPCODES_BY_NAME",
    "Tag",
    "Token",
    "Value",
    "make_token",
    "GraphVerificationError",
    "verify_graph",
    "UNKNOWN",
    "WAVE_END",
    "WAVE_START",
    "WaveAnnotation",
    "WaveSequencer",
]
