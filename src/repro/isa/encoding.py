"""Binary encoding of WaveScalar programs.

The textual assembly (:mod:`repro.lang.assembler`) is the human format;
this module defines the *binary* one -- the byte layout a binary
translator would emit and an instruction store would hold.  It also
grounds the instruction-store area estimate
(:func:`repro.area.estimator.istore_entry_bits`): the packed
instruction word below is 16 bytes + destinations, comparable to the
~110 bits the estimator assumes for the decoded form.

Layout (little-endian):

    header:  magic "WSBL", format version u16, instruction count u32,
             entry-token count u32, memory-cell count u32
    per instruction:
        opcode u8, flags u8 (bit0: has immediate, bit1: has wave
        annotation), n_dests u8, n_false_dests u8,
        [immediate f64 if flagged]
        [wave annotation: prev i32, this i32, next i32, region u32]
        dests: (inst u32, port u8) each
    per entry token: thread u32, wave u32, inst u32, port u8, value f64
    per memory cell: address u64, value f64

Integers and floats share the f64 value slot; integral values
round-trip exactly up to 2^53 (far beyond any workload constant).
"""

from __future__ import annotations

import struct

from .graph import DataflowGraph, ThreadInfo
from .instruction import Dest, Instruction
from .opcodes import Opcode
from .token import make_token
from .waves import WaveAnnotation

MAGIC = b"WSBL"
VERSION = 1

_OPCODE_IDS = {op: i for i, op in enumerate(Opcode)}
_OPCODES_BY_ID = {i: op for op, i in _OPCODE_IDS.items()}

_HEADER = struct.Struct("<4sHIII")
_INST_HEAD = struct.Struct("<BBBB")
_F64 = struct.Struct("<d")
_ANNOTATION = struct.Struct("<iiiI")
_DEST = struct.Struct("<IB")
_ENTRY = struct.Struct("<IIIBd")
_CELL = struct.Struct("<Qd")


class EncodingError(ValueError):
    """Raised on malformed binary input."""


def _pack_value(value: int | float) -> tuple[bytes, bool]:
    """Encode a value in the f64 slot; bool marks 'was an int'."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        value = int(value)
    if isinstance(value, int):
        if abs(value) >= 2**53:
            raise EncodingError(f"integer {value} exceeds exact f64 range")
        return _F64.pack(float(value)), True
    return _F64.pack(value), False


def encode(graph: DataflowGraph) -> bytes:
    """Serialise ``graph`` to its binary form."""
    out = bytearray()
    out += _HEADER.pack(
        MAGIC, VERSION, len(graph.instructions),
        len(graph.entry_tokens), len(graph.initial_memory),
    )
    int_flags: list[int] = []  # per-instruction "immediate was int"
    for inst in graph.instructions:
        flags = 0
        if inst.immediate is not None:
            flags |= 1
        if inst.wave_annotation is not None:
            flags |= 2
        if isinstance(inst.immediate, int):
            flags |= 4
        out += _INST_HEAD.pack(
            _OPCODE_IDS[inst.opcode], flags,
            len(inst.dests), len(inst.false_dests),
        )
        if inst.immediate is not None:
            packed, _ = _pack_value(inst.immediate)
            out += packed
        if inst.wave_annotation is not None:
            ann = inst.wave_annotation
            out += _ANNOTATION.pack(ann.prev, ann.this, ann.next,
                                    ann.region)
        for dest in inst.dests + inst.false_dests:
            out += _DEST.pack(dest.inst, dest.port)
        int_flags.append(flags)
    for token in graph.entry_tokens:
        packed, was_int = _pack_value(token.value)
        out += _ENTRY.pack(
            token.thread, token.wave, token.inst,
            (token.port << 1) | int(was_int),
            struct.unpack("<d", packed)[0],
        )
    for address in sorted(graph.initial_memory):
        value = graph.initial_memory[address]
        packed, was_int = _pack_value(value)
        out += _CELL.pack(
            (address << 1) | int(was_int),
            struct.unpack("<d", packed)[0],
        )
    # Thread table (appendix): thread id + member count + member ids.
    out += struct.pack("<I", len(graph.threads))
    for tinfo in graph.threads:
        out += struct.pack("<II", tinfo.thread_id,
                           len(tinfo.instructions))
        for inst_id in tinfo.instructions:
            out += struct.pack("<I", inst_id)
    return bytes(out)


def decode(data: bytes, name: str = "binary") -> DataflowGraph:
    """Reconstruct a :class:`DataflowGraph` from :func:`encode` output."""
    view = memoryview(data)
    offset = 0

    def take(fmt: struct.Struct):
        nonlocal offset
        if offset + fmt.size > len(view):
            raise EncodingError("truncated binary")
        values = fmt.unpack_from(view, offset)
        offset += fmt.size
        return values

    magic, version, n_inst, n_entry, n_cells = take(_HEADER)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version != VERSION:
        raise EncodingError(f"unsupported version {version}")

    instructions = []
    for inst_id in range(n_inst):
        op_id, flags, n_dests, n_false = take(_INST_HEAD)
        opcode = _OPCODES_BY_ID.get(op_id)
        if opcode is None:
            raise EncodingError(f"unknown opcode id {op_id}")
        immediate = None
        if flags & 1:
            (raw,) = take(_F64)
            immediate = int(raw) if flags & 4 else raw
        annotation = None
        if flags & 2:
            prev, this, nxt, region = take(_ANNOTATION)
            annotation = WaveAnnotation(prev=prev, this=this, next=nxt,
                                        region=region)
        dests = tuple(Dest(*take(_DEST)) for _ in range(n_dests))
        false_dests = tuple(Dest(*take(_DEST)) for _ in range(n_false))
        instructions.append(
            Instruction(
                inst_id=inst_id,
                opcode=opcode,
                dests=dests,
                false_dests=false_dests,
                immediate=immediate,
                wave_annotation=annotation,
            )
        )

    entry_tokens = []
    for _ in range(n_entry):
        thread, wave, inst, port_flag, raw = take(_ENTRY)
        value = int(raw) if port_flag & 1 else raw
        entry_tokens.append(
            make_token(thread, wave, inst, port_flag >> 1, value)
        )

    initial_memory: dict[int, int | float] = {}
    for _ in range(n_cells):
        addr_flag, raw = take(_CELL)
        initial_memory[addr_flag >> 1] = int(raw) if addr_flag & 1 else raw

    (n_threads,) = struct.unpack_from("<I", view, offset)
    offset += 4
    threads = []
    for _ in range(n_threads):
        thread_id, count = struct.unpack_from("<II", view, offset)
        offset += 8
        members = struct.unpack_from(f"<{count}I", view, offset)
        offset += 4 * count
        threads.append(ThreadInfo(thread_id=thread_id,
                                  instructions=tuple(members)))

    return DataflowGraph(
        instructions=instructions,
        entry_tokens=entry_tokens,
        initial_memory=initial_memory,
        threads=threads,
        name=name,
    )


def encoded_bits_per_instruction(graph: DataflowGraph) -> float:
    """Mean packed size (bits) per instruction -- the figure the
    instruction-store area estimate rests on."""
    if not graph.instructions:
        return 0.0
    body = encode(graph)
    fixed = (
        _HEADER.size
        + len(graph.entry_tokens) * _ENTRY.size
        + len(graph.initial_memory) * _CELL.size
    )
    thread_bytes = 4 + sum(8 + 4 * len(t.instructions)
                           for t in graph.threads)
    inst_bytes = len(body) - fixed - thread_bytes
    return 8.0 * inst_bytes / len(graph.instructions)
