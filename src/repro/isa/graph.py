"""The dataflow graph: a complete WaveScalar program binary.

A :class:`DataflowGraph` is the unit the toolchain produces, the
placement phase maps onto PEs, and the simulator executes.  It bundles
the instruction array, the program entry tokens, initial memory image,
and per-thread metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .instruction import Dest, Instruction
from .opcodes import Opcode
from .token import Token


@dataclass(slots=True)
class ThreadInfo:
    """Metadata for one programmer-created thread."""

    thread_id: int
    #: Static ids of instructions that (predominantly) execute in this
    #: thread; used by placement to isolate threads on the die.
    instructions: tuple[int, ...] = ()
    label: str = ""


@dataclass
class DataflowGraph:
    """A complete WaveScalar program.

    Attributes
    ----------
    instructions:
        Dense list; ``instructions[i].inst_id == i``.
    entry_tokens:
        Tokens injected into the machine at cycle 0 (program arguments
        and the constant-trigger tokens that kick off execution).
    initial_memory:
        Sparse initial data-memory image (word address -> value).
    threads:
        Thread metadata, including the instruction partition used by
        thread-aware placement.
    name:
        Program name (workload id).
    """

    instructions: list[Instruction]
    entry_tokens: list[Token] = field(default_factory=list)
    initial_memory: dict[int, int | float] = field(default_factory=dict)
    threads: list[ThreadInfo] = field(default_factory=list)
    name: str = "anonymous"

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, inst_id: int) -> Instruction:
        return self.instructions[inst_id]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def producers_of(self, inst_id: int) -> list[int]:
        """Static ids of instructions that feed ``inst_id`` (any port)."""
        result = []
        for inst in self.instructions:
            for dest in inst.all_dests:
                if dest.inst == inst_id:
                    result.append(inst.inst_id)
                    break
        return result

    def edges(self) -> Iterable[tuple[int, Dest]]:
        """All (producer_id, destination) pairs in the program."""
        for inst in self.instructions:
            for dest in inst.all_dests:
                yield inst.inst_id, dest

    @property
    def memory_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if i.opcode.is_memory]

    @property
    def static_size(self) -> int:
        """Number of static instructions (the working-set the
        instruction stores must hold)."""
        return len(self.instructions)

    def alpha_equivalent_ids(self) -> frozenset[int]:
        """Ids of instructions counted toward AIPC."""
        return frozenset(
            i.inst_id for i in self.instructions if i.opcode.alpha_equivalent
        )

    def thread_of_instruction(self) -> dict[int, int]:
        """Map from instruction id to owning thread (default thread 0)."""
        owner: dict[int, int] = {}
        for tinfo in self.threads:
            for inst_id in tinfo.instructions:
                owner[inst_id] = tinfo.thread_id
        for inst in self.instructions:
            owner.setdefault(inst.inst_id, 0)
        return owner

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on structural corruption.

        Checks id density, destination ranges and port ranges.  Deeper
        semantic checks live in :mod:`repro.isa.verify`.
        """
        for i, inst in enumerate(self.instructions):
            if inst.inst_id != i:
                raise ValueError(
                    f"instruction ids must be dense: slot {i} holds "
                    f"i{inst.inst_id}"
                )
            for dest in inst.all_dests:
                if not 0 <= dest.inst < len(self.instructions):
                    raise ValueError(
                        f"i{i} targets nonexistent instruction i{dest.inst}"
                    )
                target = self.instructions[dest.inst]
                if not 0 <= dest.port < target.arity:
                    raise ValueError(
                        f"i{i} targets port {dest.port} of i{dest.inst} "
                        f"({target.opcode.name} has arity {target.arity})"
                    )
        for token in self.entry_tokens:
            if not 0 <= token.inst < len(self.instructions):
                raise ValueError(
                    f"entry token targets nonexistent instruction "
                    f"i{token.inst}"
                )
            target = self.instructions[token.inst]
            if not 0 <= token.port < target.arity:
                raise ValueError(
                    f"entry token targets port {token.port} of i{token.inst}"
                    f" ({target.opcode.name} has arity {target.arity})"
                )

    def output_instruction_ids(self) -> list[int]:
        """Ids of OUTPUT instructions, in id order."""
        return [
            i.inst_id for i in self.instructions if i.opcode is Opcode.OUTPUT
        ]

    def summary(self) -> str:
        """One-line description used in logs and example scripts."""
        n_mem = len(self.memory_instructions)
        n_thread = max(1, len(self.threads))
        return (
            f"{self.name}: {len(self.instructions)} static instructions "
            f"({n_mem} memory), {n_thread} thread(s), "
            f"{len(self.entry_tokens)} entry tokens"
        )
