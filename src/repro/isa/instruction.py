"""Static instruction encoding.

A WaveScalar binary is a dataflow graph.  Each node is an
:class:`Instruction`: an opcode, an optional immediate, destination lists
(who consumes each produced value) and, for memory operations, a
wave-ordering annotation.

Destinations are *port-addressed*: a destination ``(inst, port)`` says
"send my result to input ``port`` of instruction ``inst``".  STEER
instructions have two destination lists (taken / not-taken).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .opcodes import Opcode
from .waves import WaveAnnotation


@dataclass(frozen=True, slots=True)
class Dest:
    """One destination of an instruction's result."""

    inst: int
    port: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"i{self.inst}[{self.port}]"


@dataclass(slots=True)
class Instruction:
    """A static instruction (node of the dataflow graph).

    Attributes
    ----------
    inst_id:
        Dense static id, unique within the program.
    opcode:
        The operation performed when the instruction fires.
    dests:
        Consumers of the result.  For STEER these are the *taken*
        destinations.
    false_dests:
        For STEER/MERGE only: destinations used when the predicate is
        false.
    immediate:
        CONST value, WAVE_ADVANCE stride, or shift amounts baked into the
        instruction word.
    wave_annotation:
        ``<prev, this, next>`` triple; present exactly when
        ``opcode.is_memory``.
    thread_local:
        Hint from the toolchain that every producer and consumer lives in
        the same thread (used by placement).
    label:
        Optional human-readable name for debugging/disassembly.
    """

    inst_id: int
    opcode: Opcode
    dests: tuple[Dest, ...] = ()
    false_dests: tuple[Dest, ...] = ()
    immediate: Optional[int | float] = None
    wave_annotation: Optional[WaveAnnotation] = None
    thread_local: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.opcode.is_memory and self.wave_annotation is None:
            raise ValueError(
                f"memory instruction i{self.inst_id} ({self.opcode.name}) "
                "requires a wave annotation"
            )
        if not self.opcode.is_memory and self.wave_annotation is not None:
            raise ValueError(
                f"non-memory instruction i{self.inst_id} ({self.opcode.name}) "
                "must not carry a wave annotation"
            )
        if self.false_dests and self.opcode not in (Opcode.STEER, Opcode.MERGE):
            raise ValueError(
                f"only STEER/MERGE may have false destinations "
                f"(i{self.inst_id} is {self.opcode.name})"
            )

    @property
    def arity(self) -> int:
        return self.opcode.arity

    @property
    def all_dests(self) -> tuple[Dest, ...]:
        """Every destination regardless of predicate polarity."""
        return self.dests + self.false_dests

    @property
    def fanout(self) -> int:
        return len(self.dests) + len(self.false_dests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"i{self.inst_id}: {self.opcode.name}"]
        if self.immediate is not None:
            parts.append(f"#{self.immediate}")
        if self.dests:
            parts.append("-> " + ",".join(map(repr, self.dests)))
        if self.false_dests:
            parts.append("/ " + ",".join(map(repr, self.false_dests)))
        if self.wave_annotation is not None:
            parts.append(repr(self.wave_annotation))
        if self.label:
            parts.append(f"({self.label})")
        return " ".join(parts)


@dataclass(slots=True)
class InputSpec:
    """Declares a program entry point: tokens injected before cycle 0.

    ``values`` holds one value per thread launch; each is delivered to
    ``(inst, port)`` with the given thread id and wave 0.
    """

    inst: int
    port: int
    thread: int = 0
    values: tuple[int | float, ...] = field(default=(0,))
