"""WaveScalar opcode definitions.

WaveScalar is a tagged-token dynamic dataflow ISA.  Each opcode carries
static metadata the rest of the toolchain and simulator rely on:

* how many input operands it consumes (``arity``),
* whether it is counted as an *Alpha-equivalent* instruction for AIPC
  accounting (the paper reports AIPC, excluding dataflow-overhead
  instructions such as steers and wave management -- Section 4.2),
* whether it is a memory operation handled by the wave-ordered store
  buffer,
* whether it uses the floating-point unit (FPUs are shared per domain and
  pipelined, Section 3.2 / Table 2),
* the nominal execution latency in cycles.

The opcode set is the subset of the WaveScalar ISA needed to express the
binaries the paper runs: integer and floating-point arithmetic, data
steering (the dataflow equivalent of branches), wave management, constant
generation, and wave-ordered memory operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Coarse functional classification of an opcode."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP = "fp"
    STEER = "steer"
    WAVE = "wave"
    CONST = "const"
    MEMORY = "memory"
    THREAD = "thread"
    MISC = "misc"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    opclass: OpClass
    arity: int
    latency: int = 1
    alpha_equivalent: bool = True
    is_memory: bool = False
    is_store: bool = False
    is_load: bool = False
    uses_fpu: bool = False
    commutative: bool = False


class Opcode(enum.Enum):
    """Every instruction opcode understood by the simulator.

    The value of each member is an :class:`OpInfo` describing it.
    """

    # ------------------------------------------------------------------
    # Integer ALU (Alpha-equivalent, 1 cycle unless noted)
    # ------------------------------------------------------------------
    ADD = OpInfo("ADD", OpClass.INT_ALU, 2, commutative=True)
    SUB = OpInfo("SUB", OpClass.INT_ALU, 2)
    MUL = OpInfo("MUL", OpClass.INT_MUL, 2, latency=1, commutative=True)
    DIV = OpInfo("DIV", OpClass.INT_MUL, 2, latency=12)
    MOD = OpInfo("MOD", OpClass.INT_MUL, 2, latency=12)
    AND = OpInfo("AND", OpClass.INT_ALU, 2, commutative=True)
    OR = OpInfo("OR", OpClass.INT_ALU, 2, commutative=True)
    XOR = OpInfo("XOR", OpClass.INT_ALU, 2, commutative=True)
    NOT = OpInfo("NOT", OpClass.INT_ALU, 1)
    SHL = OpInfo("SHL", OpClass.INT_ALU, 2)
    SHR = OpInfo("SHR", OpClass.INT_ALU, 2)
    SAR = OpInfo("SAR", OpClass.INT_ALU, 2)
    NEG = OpInfo("NEG", OpClass.INT_ALU, 1)
    ABS = OpInfo("ABS", OpClass.INT_ALU, 1)
    MIN = OpInfo("MIN", OpClass.INT_ALU, 2, commutative=True)
    MAX = OpInfo("MAX", OpClass.INT_ALU, 2, commutative=True)

    # Comparisons produce 0/1.
    EQ = OpInfo("EQ", OpClass.INT_ALU, 2, commutative=True)
    NE = OpInfo("NE", OpClass.INT_ALU, 2, commutative=True)
    LT = OpInfo("LT", OpClass.INT_ALU, 2)
    LE = OpInfo("LE", OpClass.INT_ALU, 2)
    GT = OpInfo("GT", OpClass.INT_ALU, 2)
    GE = OpInfo("GE", OpClass.INT_ALU, 2)

    # ------------------------------------------------------------------
    # Floating point (pipelined FPU, Section 3.2: "Floating point units
    # are pipelined to avoid putting floating-point execution on the
    # critical path")
    # ------------------------------------------------------------------
    FADD = OpInfo("FADD", OpClass.FP, 2, latency=4, uses_fpu=True, commutative=True)
    FSUB = OpInfo("FSUB", OpClass.FP, 2, latency=4, uses_fpu=True)
    FMUL = OpInfo("FMUL", OpClass.FP, 2, latency=4, uses_fpu=True, commutative=True)
    FDIV = OpInfo("FDIV", OpClass.FP, 2, latency=12, uses_fpu=True)
    FSQRT = OpInfo("FSQRT", OpClass.FP, 1, latency=12, uses_fpu=True)
    FNEG = OpInfo("FNEG", OpClass.FP, 1, latency=1, uses_fpu=True)
    FABS = OpInfo("FABS", OpClass.FP, 1, latency=1, uses_fpu=True)
    FLT = OpInfo("FLT", OpClass.FP, 2, latency=2, uses_fpu=True)
    FLE = OpInfo("FLE", OpClass.FP, 2, latency=2, uses_fpu=True)
    FEQ = OpInfo("FEQ", OpClass.FP, 2, latency=2, uses_fpu=True, commutative=True)
    I2F = OpInfo("I2F", OpClass.FP, 1, latency=2, uses_fpu=True)
    F2I = OpInfo("F2I", OpClass.FP, 1, latency=2, uses_fpu=True)

    # ------------------------------------------------------------------
    # Dataflow control.  These are WaveScalar-specific and are *not*
    # Alpha equivalent (they replace branch bookkeeping).
    # ------------------------------------------------------------------
    # STEER: input 0 is the data value, input 1 a 1-bit predicate.  The
    # value is forwarded to the TRUE destinations when the predicate is
    # nonzero and to the FALSE destinations otherwise.  The 1-bit input
    # occupies the narrow third matching-table column in hardware.
    STEER = OpInfo("STEER", OpClass.STEER, 2, alpha_equivalent=False)
    # MERGE (phi): three inputs -- two data, one predicate -- selecting
    # which data input is forwarded.  Used rarely; steers are preferred.
    MERGE = OpInfo("MERGE", OpClass.STEER, 3, alpha_equivalent=False)

    # WAVE_ADVANCE increments the wave number of its token; it sits on
    # loop back-edges so each iteration executes in a fresh wave.
    WAVE_ADVANCE = OpInfo("WAVE_ADVANCE", OpClass.WAVE, 1, alpha_equivalent=False)
    # WAVE_TO_DATA exposes the current wave number as a data value
    # (used to derive induction variables and unique per-iteration ids).
    WAVE_TO_DATA = OpInfo("WAVE_TO_DATA", OpClass.WAVE, 1, alpha_equivalent=False)

    # CONST produces an immediate each time its trigger input arrives.
    CONST = OpInfo("CONST", OpClass.CONST, 1, alpha_equivalent=False)

    # NOP forwards its input unchanged (fan-out trees, ordering glue).
    NOP = OpInfo("NOP", OpClass.MISC, 1, alpha_equivalent=False)

    # ------------------------------------------------------------------
    # Wave-ordered memory.  Each memory instruction carries a
    # (prev, this, next) ordering annotation (see repro.isa.waves).
    # ------------------------------------------------------------------
    # LOAD: input 0 = address; result = memory[address].
    LOAD = OpInfo(
        "LOAD", OpClass.MEMORY, 1, latency=1, is_memory=True, is_load=True
    )
    # STORE: input 0 = address, input 1 = data.  Address and data travel
    # to the store buffer as separate messages (store decoupling,
    # Section 3.3.1); the PE fires when the address arrives and forwards
    # the data message when it arrives.
    STORE = OpInfo(
        "STORE", OpClass.MEMORY, 2, latency=1, is_memory=True, is_store=True
    )
    # MEMORY_NOP: participates in wave-ordering without touching memory;
    # used to close ordering gaps across branches.
    MEMORY_NOP = OpInfo(
        "MEMORY_NOP", OpClass.MEMORY, 1, latency=1, is_memory=True,
        alpha_equivalent=False,
    )

    # ------------------------------------------------------------------
    # Thread management (Splash2-style multithreading).
    # ------------------------------------------------------------------
    # THREAD_SPAWN retags its input token into a new thread context; the
    # target (thread, wave) pair is the instruction's immediate.
    # THREAD_HALT consumes a thread's final token.
    THREAD_SPAWN = OpInfo("THREAD_SPAWN", OpClass.THREAD, 1, alpha_equivalent=False)
    THREAD_HALT = OpInfo("THREAD_HALT", OpClass.THREAD, 1, alpha_equivalent=False)

    # Sink for values whose production we want to observe (program
    # outputs); consumes one token per firing.
    OUTPUT = OpInfo("OUTPUT", OpClass.MISC, 1, alpha_equivalent=False)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        return self.value

    @property
    def arity(self) -> int:
        return self.value.arity

    @property
    def latency(self) -> int:
        return self.value.latency

    @property
    def alpha_equivalent(self) -> bool:
        return self.value.alpha_equivalent

    @property
    def is_memory(self) -> bool:
        return self.value.is_memory

    @property
    def is_store(self) -> bool:
        return self.value.is_store

    @property
    def is_load(self) -> bool:
        return self.value.is_load

    @property
    def uses_fpu(self) -> bool:
        return self.value.uses_fpu

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Opcodes whose second input is the single-bit predicate stored in the
#: narrow third matching-table column (Section 3.2, footnote 3).
PREDICATED_OPCODES = frozenset({Opcode.STEER, Opcode.MERGE})

#: Name -> Opcode lookup used by the assembler.
OPCODES_BY_NAME = {op.name: op for op in Opcode}
