"""Operational semantics of WaveScalar opcodes.

Shared by the functional reference interpreter
(:mod:`repro.lang.interp`) and the cycle-level simulator's EXECUTE stage
so the two can never diverge.

Values are Python ints/floats standing in for 64-bit machine words.
Division and modulo by zero produce 0 (a common safe-hardware choice)
rather than trapping, so design-space sweeps never die on a stray
workload corner case.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from .opcodes import Opcode
from .token import Value


def _idiv(a: Value, b: Value) -> int:
    if b == 0:
        return 0
    return int(a) // int(b) if (a >= 0) == (b >= 0) else -(int(abs(a)) // int(abs(b)))


def _imod(a: Value, b: Value) -> int:
    if b == 0:
        return 0
    return int(a) - _idiv(a, b) * int(b)


def _fdiv(a: Value, b: Value) -> float:
    if b == 0:
        return 0.0
    return float(a) / float(b)


def _fsqrt(a: Value) -> float:
    return math.sqrt(a) if a >= 0 else 0.0


_EVALUATORS: dict[Opcode, Callable[..., Value]] = {
    Opcode.ADD: lambda a, b: int(a) + int(b),
    Opcode.SUB: lambda a, b: int(a) - int(b),
    Opcode.MUL: lambda a, b: int(a) * int(b),
    Opcode.DIV: _idiv,
    Opcode.MOD: _imod,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.NOT: lambda a: ~int(a),
    Opcode.SHL: lambda a, b: int(a) << max(0, min(63, int(b))),
    Opcode.SHR: lambda a, b: (int(a) % (1 << 64)) >> max(0, min(63, int(b))),
    Opcode.SAR: lambda a, b: int(a) >> max(0, min(63, int(b))),
    Opcode.NEG: lambda a: -int(a),
    Opcode.ABS: lambda a: abs(int(a)),
    Opcode.MIN: lambda a, b: min(int(a), int(b)),
    Opcode.MAX: lambda a, b: max(int(a), int(b)),
    Opcode.EQ: lambda a, b: int(a == b),
    Opcode.NE: lambda a, b: int(a != b),
    Opcode.LT: lambda a, b: int(a < b),
    Opcode.LE: lambda a, b: int(a <= b),
    Opcode.GT: lambda a, b: int(a > b),
    Opcode.GE: lambda a, b: int(a >= b),
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FDIV: _fdiv,
    Opcode.FSQRT: _fsqrt,
    Opcode.FNEG: lambda a: -float(a),
    Opcode.FABS: lambda a: abs(float(a)),
    Opcode.FLT: lambda a, b: int(float(a) < float(b)),
    Opcode.FLE: lambda a, b: int(float(a) <= float(b)),
    Opcode.FEQ: lambda a, b: int(float(a) == float(b)),
    Opcode.I2F: lambda a: float(int(a)),
    Opcode.F2I: lambda a: int(a),
    Opcode.NOP: lambda a: a,
    Opcode.WAVE_ADVANCE: lambda a: a,
    Opcode.THREAD_SPAWN: lambda a: a,
    Opcode.THREAD_HALT: lambda a: a,
    Opcode.OUTPUT: lambda a: a,
    Opcode.MEMORY_NOP: lambda a: a,
}


def evaluate(
    opcode: Opcode,
    operands: Sequence[Value],
    immediate: Optional[Value] = None,
) -> Value:
    """Compute the result value of a non-routing instruction.

    STEER/MERGE routing decisions and memory accesses are made by the
    caller (they need tag or memory context); for those this function
    returns the forwarded *data* value:

    * STEER forwards operand 0 (operand 1 is the predicate),
    * MERGE forwards operand 0 or 1 according to operand 2,
    * CONST ignores operands and returns the immediate,
    * LOAD/STORE return the address/data (the caller performs the
      access).
    """
    if opcode is Opcode.CONST:
        if immediate is None:
            raise ValueError("CONST requires an immediate")
        return immediate
    if opcode is Opcode.STEER:
        return operands[0]
    if opcode is Opcode.MERGE:
        return operands[0] if operands[2] else operands[1]
    if opcode is Opcode.LOAD:
        return operands[0]
    if opcode is Opcode.STORE:
        return operands[1]
    evaluator = _EVALUATORS.get(opcode)
    if evaluator is None:
        raise ValueError(f"no semantics for {opcode.name}")
    return evaluator(*operands)


def evaluator_for(
    opcode: Opcode,
    immediate: Optional[Value] = None,
) -> Callable[[Sequence[Value]], Value]:
    """A specialised single-argument callable equivalent to
    ``lambda operands: evaluate(opcode, operands, immediate)``.

    The opcode's identity tests and evaluator lookup are resolved
    once, here, instead of on every dynamic instruction -- the
    per-instruction fast path of the batched backend, which
    precomputes one evaluator per decoded instruction.  Error
    behaviour matches :func:`evaluate` exactly (the failures surface
    at call time, as the engine would see them).
    """
    if opcode is Opcode.CONST:
        if immediate is None:
            def _const_missing(operands: Sequence[Value]) -> Value:
                raise ValueError("CONST requires an immediate")
            return _const_missing
        return lambda operands: immediate
    if opcode is Opcode.STEER:
        return lambda operands: operands[0]
    if opcode is Opcode.MERGE:
        return lambda operands: operands[0] if operands[2] else operands[1]
    if opcode is Opcode.LOAD:
        return lambda operands: operands[0]
    if opcode is Opcode.STORE:
        return lambda operands: operands[1]
    evaluator = _EVALUATORS.get(opcode)
    if evaluator is None:
        def _no_semantics(operands: Sequence[Value]) -> Value:
            raise ValueError(f"no semantics for {opcode.name}")
        return _no_semantics
    return lambda operands: evaluator(*operands)


def steer_taken(operands: Sequence[Value]) -> bool:
    """Whether a STEER forwards to its true-side destinations."""
    return bool(operands[1])
