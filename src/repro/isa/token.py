"""Tagged tokens -- the unit of data in a dynamic dataflow machine.

A WaveScalar token pairs a 64-bit value with a *tag*.  The tag carries
everything needed to match the value with its consumer instruction:

* ``thread``  -- the programmer-created thread the value belongs to,
* ``wave``    -- the dynamic wave number (incremented by WAVE_ADVANCE on
  loop back-edges, so each loop iteration executes in its own wave),
* ``inst``    -- the static id of the consumer instruction,
* ``port``    -- which of the consumer's input operands this value fills.

Tokens for the same ``(thread, wave, inst)`` rendezvous in the consumer
PE's matching table; when all ``arity`` ports are present the instruction
fires (the dataflow firing rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Value = Union[int, float]


@dataclass(frozen=True, slots=True)
class Tag:
    """The matching tag of a token."""

    thread: int
    wave: int
    inst: int
    port: int

    def with_wave(self, wave: int) -> "Tag":
        """Return a copy of this tag in a different wave."""
        return Tag(self.thread, wave, self.inst, self.port)

    def match_key(self) -> tuple[int, int, int]:
        """The rendezvous key: tokens with equal keys match each other."""
        return (self.thread, self.wave, self.inst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<t{self.thread}.w{self.wave}.i{self.inst}[{self.port}]>"


@dataclass(frozen=True, slots=True)
class Token:
    """A tagged value in flight."""

    tag: Tag
    value: Value

    @property
    def thread(self) -> int:
        return self.tag.thread

    @property
    def wave(self) -> int:
        return self.tag.wave

    @property
    def inst(self) -> int:
        return self.tag.inst

    @property
    def port(self) -> int:
        return self.tag.port

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.tag!r}={self.value!r})"


def make_token(
    thread: int, wave: int, inst: int, port: int, value: Value
) -> Token:
    """Convenience constructor used heavily by tests and the toolchain."""
    return Token(Tag(thread, wave, inst, port), value)
