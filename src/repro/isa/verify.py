"""Semantic verification of dataflow graphs.

Beyond the structural checks in :meth:`DataflowGraph.validate`, this
module checks the properties the simulator relies on:

* every non-entry input port is fed by at least one producer (otherwise
  the instruction can never fire and the program deadlocks),
* wave annotations within the program form a consistent partial order
  (``this`` values unique, ``prev``/``next`` links reference real
  sequence numbers),
* STEER predicates arrive on port 1 from comparison-producing
  instructions or constants (heuristic warning only),
* OUTPUT instructions exist if the caller asks for observable results.
"""

from __future__ import annotations

from collections import defaultdict

from .graph import DataflowGraph
from .opcodes import Opcode
from .waves import UNKNOWN, WAVE_END, WAVE_START


class GraphVerificationError(ValueError):
    """Raised when a dataflow graph fails semantic verification."""


def verify_graph(graph: DataflowGraph, require_outputs: bool = False) -> None:
    """Run all semantic checks; raise :class:`GraphVerificationError`.

    Parameters
    ----------
    graph:
        The program to verify.  ``graph.validate()`` is run first.
    require_outputs:
        When true, insist the program contains at least one OUTPUT
        instruction so results are observable.
    """
    graph.validate()
    _check_port_coverage(graph)
    _check_wave_annotations(graph)
    if require_outputs and not graph.output_instruction_ids():
        raise GraphVerificationError(
            f"{graph.name}: no OUTPUT instructions; results unobservable"
        )


def _check_port_coverage(graph: DataflowGraph) -> None:
    """Every input port must be reachable from a producer or entry token."""
    fed: set[tuple[int, int]] = set()
    for _, dest in graph.edges():
        fed.add((dest.inst, dest.port))
    for token in graph.entry_tokens:
        fed.add((token.inst, token.port))

    for inst in graph.instructions:
        for port in range(inst.arity):
            if (inst.inst_id, port) not in fed:
                raise GraphVerificationError(
                    f"{graph.name}: port {port} of {inst!r} has no producer "
                    "and no entry token; instruction can never fire"
                )


def _check_wave_annotations(graph: DataflowGraph) -> None:
    """Wave annotations must form a consistent chain skeleton.

    Sequence numbers are scoped to their static wave region (each
    dynamic wave executes exactly one region), so all checks are
    per-region.
    """
    by_region: dict[int, list[tuple[int, object]]] = defaultdict(list)
    for inst in graph.memory_instructions:
        assert inst.wave_annotation is not None
        by_region[inst.wave_annotation.region].append(
            (inst.inst_id, inst.wave_annotation)
        )
    for region, anns in by_region.items():
        _check_region_chain(graph.name, region, anns)


def _check_region_chain(name: str, region: int, anns: list) -> None:
    seen_this: dict[int, int] = {}
    for inst_id, ann in anns:
        if ann.this in seen_this:
            raise GraphVerificationError(
                f"{name}: region {region}: duplicate wave sequence number "
                f"{ann.this} (i{seen_this[ann.this]} and i{inst_id})"
            )
        seen_this[ann.this] = inst_id

    valid = set(seen_this)
    for inst_id, ann in anns:
        if ann.prev not in (UNKNOWN, WAVE_START) and ann.prev not in valid:
            raise GraphVerificationError(
                f"{name}: region {region}: i{inst_id} names nonexistent "
                f"predecessor sequence {ann.prev}"
            )
        if ann.next not in (UNKNOWN, WAVE_END) and ann.next not in valid:
            raise GraphVerificationError(
                f"{name}: region {region}: i{inst_id} names nonexistent "
                f"successor sequence {ann.next}"
            )

    # Each op must be orderable: either its prev is statically known, or
    # at least one other op names it in its ``next`` field.  (At runtime
    # only one such producer fires per wave.)
    rippled_to: set[int] = set()
    for _, ann in anns:
        if ann.next not in (UNKNOWN, WAVE_END):
            rippled_to.add(ann.next)
    for inst_id, ann in anns:
        if ann.prev == UNKNOWN and ann.this not in rippled_to:
            raise GraphVerificationError(
                f"{name}: region {region}: i{inst_id} has unknown "
                "predecessor and no ripple names it; wave ordering would "
                "deadlock"
            )
    # Every region must be terminable: at least one op can close the
    # dynamic wave.
    if anns and not any(ann.next == WAVE_END for _, ann in anns):
        raise GraphVerificationError(
            f"{name}: region {region}: no operation carries WAVE_END; "
            "the store buffer could never retire this wave"
        )


def count_by_opclass(graph: DataflowGraph) -> dict[str, int]:
    """Histogram of static instructions by opcode class (diagnostics)."""
    hist: dict[str, int] = defaultdict(int)
    for inst in graph.instructions:
        hist[inst.opcode.value.opclass.value] += 1
    return dict(hist)


def steer_fraction(graph: DataflowGraph) -> float:
    """Fraction of static instructions that are dataflow overhead.

    The paper reports AIPC rather than IPC precisely because this
    overhead is significant; workload tests use this to check that our
    kernels have realistic overhead ratios.
    """
    if not graph.instructions:
        return 0.0
    overhead = sum(
        1 for inst in graph.instructions if not inst.opcode.alpha_equivalent
    )
    return overhead / len(graph.instructions)
