"""Semantic verification of dataflow graphs (raising wrapper).

The checks themselves live in the pluggable rule engine of
:mod:`repro.analysis` (rules ``G000``-``G011``): every non-entry input
port fed, consistent wave partial orders, predicate provenance, and
more.  This module keeps the historical raise-on-first-error API that
the toolchain (:meth:`GraphBuilder.finalize`, the assembler) and tests
rely on: :func:`verify_graph` runs the full graph registry and raises
:class:`GraphVerificationError` for the first error-level diagnostic.

Use :func:`repro.analysis.analyze_graph` directly to collect *all*
diagnostics (including warnings) instead of failing fast.
"""

from __future__ import annotations

from collections import defaultdict

from .graph import DataflowGraph


class GraphVerificationError(ValueError):
    """Raised when a dataflow graph fails semantic verification."""


def verify_graph(graph: DataflowGraph, require_outputs: bool = False) -> None:
    """Run all semantic checks; raise :class:`GraphVerificationError`.

    Parameters
    ----------
    graph:
        The program to verify.  Structural validation
        (``graph.validate()``) runs first, as rule ``G000``.
    require_outputs:
        When true, insist the program contains at least one OUTPUT
        instruction so results are observable (escalates the ``G011``
        observability warning to an error).
    """
    from ..analysis import analyze_graph

    report = analyze_graph(graph)
    errors = report.errors
    if errors:
        first = errors[0]
        prefix = f"{first.source}: " if first.source else ""
        raise GraphVerificationError(f"{prefix}{first.message}")
    if require_outputs and not graph.output_instruction_ids():
        raise GraphVerificationError(
            f"{graph.name}: no OUTPUT instructions; results unobservable"
        )


def count_by_opclass(graph: DataflowGraph) -> dict[str, int]:
    """Histogram of static instructions by opcode class (diagnostics)."""
    hist: dict[str, int] = defaultdict(int)
    for inst in graph.instructions:
        hist[inst.opcode.value.opclass.value] += 1
    return dict(hist)


def steer_fraction(graph: DataflowGraph) -> float:
    """Fraction of static instructions that are dataflow overhead.

    The paper reports AIPC rather than IPC precisely because this
    overhead is significant; workload tests use this to check that our
    kernels have realistic overhead ratios.
    """
    if not graph.instructions:
        return 0.0
    overhead = sum(
        1 for inst in graph.instructions if not inst.opcode.alpha_equivalent
    )
    return overhead / len(graph.instructions)
