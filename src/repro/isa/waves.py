"""Wave-ordered memory annotations.

WaveScalar executes imperative-language programs by annotating every
memory instruction with its position in the *program order* of its wave.
Each memory operation carries a triple ``<prev, this, next>``:

* ``this`` -- the operation's own sequence number within the wave,
* ``prev`` -- the sequence number of the memory operation that
  immediately precedes it in program order, or ``UNKNOWN`` ('?') when the
  predecessor depends on a branch not yet resolved,
* ``next`` -- the successor's sequence number, or ``UNKNOWN`` when it
  depends on an untaken-yet branch.

The store buffer (repro.sim.storebuffer) uses these annotations to issue
memory operations in program order: an operation may issue once its
predecessor link is resolved, either directly (``prev`` matches the last
issued operation) or through a *ripple* (the previous operation named
this one in its ``next`` field).

Compilers must guarantee that along every control path the chain of
annotations is gap-free; MEMORY_NOP instructions are inserted on branch
paths that contain no memory operations.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sentinel for an unresolved predecessor/successor ('?' in the paper).
UNKNOWN = -1

#: Sequence number marking the first operation of a wave (its ``prev``).
WAVE_START = -2

#: ``next`` value marking the last operation of a wave.
WAVE_END = -3


@dataclass(frozen=True, slots=True)
class WaveAnnotation:
    """The ``<prev, this, next>`` ordering triple of one memory op.

    ``region`` identifies the static wave region (single-entry
    single-exit code between wave boundaries) the annotation belongs
    to; sequence numbers are unique *within* a region.  At runtime each
    dynamic wave executes exactly one region, so the store buffer
    disambiguates chains by dynamic wave number alone -- ``region`` is
    metadata for verification and debugging.
    """

    prev: int
    this: int
    next: int
    region: int = 0

    def __post_init__(self) -> None:
        if self.this < 0:
            raise ValueError(f"'this' must be a real sequence number: {self.this}")
        if self.prev >= self.this and self.prev not in (UNKNOWN, WAVE_START):
            raise ValueError(
                f"prev ({self.prev}) must precede this ({self.this})"
            )
        if self.next != UNKNOWN and self.next != WAVE_END and self.next <= self.this:
            raise ValueError(
                f"next ({self.next}) must follow this ({self.this})"
            )

    @property
    def is_first(self) -> bool:
        """True if this is statically known to start its wave."""
        return self.prev == WAVE_START

    @property
    def is_last(self) -> bool:
        """True if this is statically known to end its wave."""
        return self.next == WAVE_END

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def show(x: int) -> str:
            if x == UNKNOWN:
                return "?"
            if x == WAVE_START:
                return "^"
            if x == WAVE_END:
                return "$"
            return str(x)

        return f"<{show(self.prev)},{show(self.this)},{show(self.next)}>"


class WaveSequencer:
    """Assigns gap-free wave annotations while a graph is being built.

    The builder calls :meth:`next_annotation` for every memory operation
    it emits, in program order.  Straight-line code produces fully
    resolved chains.  For branches the builder brackets the divergent
    region with :meth:`fork`/:meth:`join`; operations on the two arms
    receive ``UNKNOWN`` links that the store buffer resolves dynamically
    through ripples.
    """

    def __init__(self) -> None:
        self._counter = 0
        self._prev: int = WAVE_START
        self._prev_unknown = False

    @property
    def count(self) -> int:
        """Number of sequence slots handed out so far."""
        return self._counter

    def next_annotation(self) -> WaveAnnotation:
        """Annotation for the next memory op in straight-line order.

        The returned annotation has ``next = UNKNOWN``; callers patch the
        successor link via :func:`patch_next` once the successor is
        known.  The builder wrapper handles this automatically.
        """
        this = self._counter
        self._counter += 1
        prev = UNKNOWN if self._prev_unknown else self._prev
        self._prev = this
        self._prev_unknown = False
        return WaveAnnotation(prev=prev, this=this, next=UNKNOWN)

    def mark_divergent(self) -> None:
        """Record that the next op's predecessor is control-dependent.

        After a fork, the first memory operation on each arm cannot name
        its predecessor statically, so its ``prev`` becomes UNKNOWN and
        ordering relies on the predecessor's ``next`` ripple.
        """
        self._prev_unknown = True

    def reserve(self) -> int:
        """Reserve a sequence number without emitting an annotation."""
        this = self._counter
        self._counter += 1
        return this


def patch_next(ann: WaveAnnotation, next_seq: int) -> WaveAnnotation:
    """Return ``ann`` with its successor link filled in."""
    return WaveAnnotation(
        prev=ann.prev, this=ann.this, next=next_seq, region=ann.region
    )


def close_wave(ann: WaveAnnotation) -> WaveAnnotation:
    """Return ``ann`` marked as the final operation of its wave."""
    return WaveAnnotation(
        prev=ann.prev, this=ann.this, next=WAVE_END, region=ann.region
    )
