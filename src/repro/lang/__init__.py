"""WaveScalar program construction toolchain.

Replaces the paper's Alpha-binary-translation flow: programs are built
with the :class:`GraphBuilder` EDSL (or parsed from textual assembly),
k-loop bounded, and handed to placement and the simulator.
"""

from .assembler import AssemblerError, assemble
from .builder import MAX_FANOUT, BuildError, GraphBuilder, IfElse, Loop, Node
from .disasm import disassemble
from .dot import to_dot
from .kbound import backedge_ids, k_bound_of, set_k_bound

__all__ = [
    "AssemblerError",
    "assemble",
    "MAX_FANOUT",
    "BuildError",
    "GraphBuilder",
    "IfElse",
    "Loop",
    "Node",
    "disassemble",
    "to_dot",
    "backedge_ids",
    "k_bound_of",
    "set_k_bound",
]
