"""Textual WaveScalar assembly.

The paper's tool-chain ends in "our WaveScalar assembler"; this module
provides the equivalent: a human-readable, line-oriented format that
round-trips with :class:`repro.isa.DataflowGraph`.

Format
------
A program is a sequence of directives and instruction lines::

    .program dot
    .memory 0 = 3
    .memory 1 = 4
    .entry i0[0] t0 = 1
    .thread 1 : i4 i5 i6

    i0: NOP -> i1[0], i2[0]                     ; entry
    i1: CONST #8 -> i3[0]
    i2: LOAD <^,0,$> -> i3[1]
    i3: ADD -> i4[0]
    i4: STEER -> i5[0] / i6[0]
    i5: STORE <?,1,$>
    i6: OUTPUT

* ``#imm`` is the immediate; ``<prev,this,next>`` the wave annotation
  where ``^`` is wave-start, ``$`` wave-end and ``?`` unknown.
* Destinations after ``->`` are the true-side targets; targets after
  ``/`` are a steer's false-side targets.
* ``;`` starts a comment; the disassembler emits labels there.
"""

from __future__ import annotations

import re

from ..isa.graph import DataflowGraph, ThreadInfo
from ..isa.instruction import Dest, Instruction
from ..isa.opcodes import OPCODES_BY_NAME
from ..isa.token import make_token
from ..isa.waves import UNKNOWN, WAVE_END, WAVE_START, WaveAnnotation


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_DEST_RE = re.compile(r"i(\d+)\[(\d+)\]")
_INST_RE = re.compile(
    r"^i(?P<id>\d+):\s*(?P<op>[A-Z_0-9]+)"
    r"(?:\s+#(?P<imm>-?[\d.]+))?"
    r"(?:\s+<(?P<ann>[^>]+)>)?"
    r"(?:\s*->\s*(?P<dests>[^/;]*))?"
    r"(?:/\s*(?P<fdests>[^;]*))?\s*$"
)
_ENTRY_RE = re.compile(
    r"^\.entry\s+i(\d+)\[(\d+)\]\s+t(\d+)\s*=\s*(-?[\d.]+)$"
)
_MEMORY_RE = re.compile(r"^\.memory\s+(\d+)\s*=\s*(-?[\d.]+)$")
_THREAD_RE = re.compile(r"^\.thread\s+(\d+)\s*:\s*(.*)$")


def _parse_number(text: str) -> int | float:
    return float(text) if "." in text else int(text)


def _parse_seq(text: str) -> int:
    if text == "^":
        return WAVE_START
    if text == "$":
        return WAVE_END
    if text == "?":
        return UNKNOWN
    return int(text)


def _parse_dests(text: str, lineno: int) -> tuple[Dest, ...]:
    text = text.strip()
    if not text:
        return ()
    dests = []
    for part in text.split(","):
        match = _DEST_RE.fullmatch(part.strip())
        if not match:
            raise AssemblerError(lineno, f"bad destination {part.strip()!r}")
        dests.append(Dest(int(match.group(1)), int(match.group(2))))
    return tuple(dests)


def assemble(text: str, verify: bool = True) -> DataflowGraph:
    """Parse assembly ``text`` into a :class:`DataflowGraph`."""
    name = "anonymous"
    slots: dict[int, Instruction] = {}
    entry_tokens = []
    initial_memory: dict[int, int | float] = {}
    threads: list[ThreadInfo] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".program"):
            name = line.split(None, 1)[1].strip()
            continue
        if line.startswith(".memory"):
            match = _MEMORY_RE.match(line)
            if not match:
                raise AssemblerError(lineno, f"bad .memory directive: {line}")
            initial_memory[int(match.group(1))] = _parse_number(match.group(2))
            continue
        if line.startswith(".entry"):
            match = _ENTRY_RE.match(line)
            if not match:
                raise AssemblerError(lineno, f"bad .entry directive: {line}")
            inst, port, thread, value = match.groups()
            entry_tokens.append(
                make_token(
                    thread=int(thread),
                    wave=0,
                    inst=int(inst),
                    port=int(port),
                    value=_parse_number(value),
                )
            )
            continue
        if line.startswith(".thread"):
            match = _THREAD_RE.match(line)
            if not match:
                raise AssemblerError(lineno, f"bad .thread directive: {line}")
            ids = tuple(
                int(part[1:]) for part in match.group(2).split() if part
            )
            threads.append(
                ThreadInfo(thread_id=int(match.group(1)), instructions=ids)
            )
            continue

        match = _INST_RE.match(line)
        if not match:
            raise AssemblerError(lineno, f"unparseable line: {line!r}")
        inst_id = int(match.group("id"))
        op_name = match.group("op")
        if op_name not in OPCODES_BY_NAME:
            raise AssemblerError(lineno, f"unknown opcode {op_name!r}")
        opcode = OPCODES_BY_NAME[op_name]
        immediate = None
        if match.group("imm") is not None:
            immediate = _parse_number(match.group("imm"))
        annotation = None
        if match.group("ann") is not None:
            parts = [p.strip() for p in match.group("ann").split(",")]
            if len(parts) not in (3, 4):
                raise AssemblerError(
                    lineno, f"wave annotation needs 3 or 4 fields: {line}"
                )
            annotation = WaveAnnotation(
                prev=_parse_seq(parts[0]),
                this=_parse_seq(parts[1]),
                next=_parse_seq(parts[2]),
                region=int(parts[3]) if len(parts) == 4 else 0,
            )
        dests = _parse_dests(match.group("dests") or "", lineno)
        false_dests = _parse_dests(match.group("fdests") or "", lineno)
        if inst_id in slots:
            raise AssemblerError(lineno, f"duplicate instruction id i{inst_id}")
        try:
            slots[inst_id] = Instruction(
                inst_id=inst_id,
                opcode=opcode,
                dests=dests,
                false_dests=false_dests,
                immediate=immediate,
                wave_annotation=annotation,
            )
        except ValueError as exc:
            raise AssemblerError(lineno, str(exc)) from exc

    if slots:
        expected = set(range(max(slots) + 1))
        missing = expected - set(slots)
        if missing:
            raise AssemblerError(
                0, f"instruction ids not dense; missing {sorted(missing)[:5]}"
            )
    instructions = [slots[i] for i in range(len(slots))]
    graph = DataflowGraph(
        instructions=instructions,
        entry_tokens=entry_tokens,
        initial_memory=initial_memory,
        threads=threads,
        name=name,
    )
    if verify:
        from ..isa.verify import verify_graph

        verify_graph(graph)
    return graph
