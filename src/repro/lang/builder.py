"""Dataflow graph builder: an embedded DSL for WaveScalar programs.

The original paper compiles DEC Alpha binaries to WaveScalar assembly
with a binary translator.  Without that toolchain, workloads in this
reproduction are written directly against :class:`GraphBuilder`, which
produces the same artifact the translator would: a
:class:`repro.isa.DataflowGraph` with steers for control flow,
WAVE_ADVANCE instructions at wave boundaries, and gap-free wave-ordered
memory annotations.

Wave discipline
---------------
WaveScalar tokens match on ``(thread, wave, instruction)``.  The builder
therefore partitions each thread's code into *regions*; a region is the
single-entry single-exit code between two wave boundaries (loop entry,
loop back-edge, loop exit) and executes entirely within one dynamic
wave.  Two rules keep programs wave-consistent, and the builder enforces
both:

1. An instruction may only consume values produced in the *current*
   region.  Values that must cross a loop boundary are threaded through
   the loop as carried or invariant state (which routes them through
   WAVE_ADVANCE instructions).
2. Every region's memory operations form one gap-free wave-ordering
   chain.  Regions that perform no memory operation receive an automatic
   MEMORY_NOP so that, per thread, the store buffer observes a
   contiguous sequence of waves (this mirrors the paper's use of
   MEMORY_NOPs to close ordering gaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..isa.graph import DataflowGraph, ThreadInfo
from ..isa.instruction import Dest, Instruction
from ..isa.opcodes import Opcode
from ..isa.token import Token, make_token
from ..isa.waves import UNKNOWN, WAVE_END, WAVE_START, WaveAnnotation

#: Maximum destinations encodable in one instruction word; larger
#: fan-out is realised with automatically inserted NOP trees.
MAX_FANOUT = 4


class BuildError(ValueError):
    """Raised when a program violates the builder's wave discipline."""


@dataclass(frozen=True, slots=True)
class Node:
    """Handle for one value stream (an instruction output side)."""

    inst: int
    true_side: bool
    region: int
    thread: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        side = "" if self.true_side else ".F"
        return f"n{self.inst}{side}@r{self.region}"


@dataclass(slots=True, eq=False)
class _MemRec:
    """Mutable wave-ordering record for one memory instruction."""

    inst: int
    this: int
    region: int = 0
    prev: int = UNKNOWN
    next: int = UNKNOWN
    next_ambiguous: bool = False


@dataclass(slots=True)
class _Region:
    """Build-time state for one wave region of one thread."""

    region_id: int
    thread: int
    seq_counter: int = 0
    cursor: list[_MemRec] = field(default_factory=list)
    mem_ops: list[_MemRec] = field(default_factory=list)
    trigger: Optional[Node] = None
    closed: bool = False


class GraphBuilder:
    """Constructs a :class:`DataflowGraph` program.

    Typical use::

        b = GraphBuilder("dot")
        base = b.data("v", [1, 2, 3, 4])
        t = b.entry(0)
        n = b.const(4, trigger=t)
        lp = b.loop([b.const(0, t), b.const(0, t)], invariants=[n])
        i, acc = lp.state
        (n_in,) = lp.invariants
        x = b.load(b.add(b.const(base, i), i))
        i2 = b.add(i, b.const(1, i))
        lp.next_iteration(b.lt(i2, n_in), [i2, b.add(acc, x)])
        _, total, _ = lp.end()
        b.output(total)
        graph = b.finalize()
    """

    def __init__(self, name: str = "anonymous") -> None:
        self.name = name
        self._opcodes: list[Opcode] = []
        self._immediates: list[Optional[int | float]] = []
        self._labels: list[str] = []
        self._inst_thread: list[int] = []
        self._edges_true: dict[int, list[tuple[int, int]]] = {}
        self._edges_false: dict[int, list[tuple[int, int]]] = {}
        self._mem_recs: dict[int, _MemRec] = {}
        self._entry_tokens: list[Token] = []
        self._initial_memory: dict[int, int | float] = {}
        self._heap_top = 0
        self._data_bases: dict[str, int] = {}

        self._regions: list[_Region] = []
        self._region_counter = 0
        self._current: _Region = self._new_region(thread=0)
        self._cond_depth = 0
        self._finalized = False
        self._thread_parents: dict[int, _Region] = {}

    # ==================================================================
    # Region bookkeeping
    # ==================================================================
    def _new_region(self, thread: int) -> _Region:
        region = _Region(region_id=self._region_counter, thread=thread)
        self._region_counter += 1
        self._regions.append(region)
        return region

    def _close_region(self, region: _Region) -> None:
        """Terminate a region's wave-ordering chain.

        Regions with no memory operations get an automatic MEMORY_NOP so
        every dynamic wave presents exactly one chain (ending in
        WAVE_END) to the store buffer.
        """
        if region.closed:
            raise BuildError(f"region {region.region_id} closed twice")
        if not region.mem_ops:
            if region.trigger is None:
                raise BuildError(
                    f"region {region.region_id} has no unconditional value "
                    "to trigger its closing MEMORY_NOP"
                )
            saved = self._current
            self._current = region
            region.closed = False  # re-open briefly for the nop emit
            self.memory_nop(region.trigger)
            self._current = saved
        for rec in region.cursor:
            if not rec.next_ambiguous and rec.next == UNKNOWN:
                rec.next = WAVE_END
        region.closed = True

    def _use(self, node: Node) -> Node:
        """Validate that ``node`` is legal to consume here."""
        if node.region != self._current.region_id:
            raise BuildError(
                f"value {node!r} crosses a wave boundary into region "
                f"{self._current.region_id}; thread it through the loop as "
                "carried or invariant state"
            )
        if node.thread != self._current.thread:
            raise BuildError(
                f"value {node!r} belongs to thread {node.thread}, not "
                f"thread {self._current.thread}; use spawn/end_thread"
            )
        return node

    # ==================================================================
    # Raw emission
    # ==================================================================
    def _emit(
        self,
        opcode: Opcode,
        inputs: Sequence[Node],
        immediate: Optional[int | float] = None,
        label: str = "",
        check_inputs: bool = True,
        new_region: Optional[_Region] = None,
        allow_underfed: bool = False,
    ) -> Node:
        """Create one instruction and wire its inputs.

        ``new_region`` is used internally by wave-advancing constructs:
        the created instruction consumes values from the current region
        but its *output* belongs to ``new_region``.  ``allow_underfed``
        permits ports to be fed later (entry tokens, join wiring).
        """
        if self._finalized:
            raise BuildError("builder already finalized")
        if len(inputs) != opcode.arity and not (
            allow_underfed and len(inputs) < opcode.arity
        ):
            raise BuildError(
                f"{opcode.name} needs {opcode.arity} inputs, got {len(inputs)}"
            )
        inst_id = len(self._opcodes)
        self._opcodes.append(opcode)
        self._immediates.append(immediate)
        self._labels.append(label)
        self._inst_thread.append(self._current.thread)
        for port, node in enumerate(inputs):
            if check_inputs:
                self._use(node)
            edges = (
                self._edges_true if node.true_side else self._edges_false
            )
            edges.setdefault(node.inst, []).append((inst_id, port))

        out_region = new_region if new_region is not None else self._current
        node_out = Node(
            inst=inst_id,
            true_side=True,
            region=out_region.region_id,
            thread=out_region.thread,
        )
        if opcode.is_memory:
            self._sequence_memory_op(inst_id)
        # Track a region trigger for auto-inserted MEMORY_NOPs: it must
        # fire unconditionally (not inside an if_else arm) and actually
        # produce a token (OUTPUT and THREAD_HALT are sinks; STEER's
        # true side fires only when the predicate is true).
        produces_output = opcode not in (
            Opcode.OUTPUT,
            Opcode.THREAD_HALT,
            Opcode.STEER,
        )
        if self._cond_depth == 0 and new_region is None and produces_output:
            self._current.trigger = node_out
        return node_out

    def _sequence_memory_op(self, inst_id: int) -> None:
        """Assign a wave-ordering record to a freshly emitted memory op."""
        region = self._current
        if region.closed:
            raise BuildError(
                f"memory op emitted into closed region {region.region_id}"
            )
        rec = _MemRec(
            inst=inst_id, this=region.seq_counter, region=region.region_id
        )
        region.seq_counter += 1
        cursor = region.cursor
        if not cursor:
            rec.prev = WAVE_START
        elif len(cursor) == 1 and not cursor[0].next_ambiguous:
            rec.prev = cursor[0].this
            cursor[0].next = rec.this
        else:
            # Post-join (or ambiguous-next predecessor): ripple forward.
            rec.prev = UNKNOWN
            for pred in cursor:
                if not pred.next_ambiguous:
                    pred.next = rec.this
            if all(pred.next_ambiguous for pred in cursor):
                raise BuildError(
                    "memory op follows a fork with no join NOPs; "
                    "this indicates a builder bug"
                )
        region.cursor = [rec]
        region.mem_ops.append(rec)
        self._mem_recs[inst_id] = rec

    # ==================================================================
    # Data segment
    # ==================================================================
    def data(
        self, name: str, values: Sequence[int | float], stride: int = 1
    ) -> int:
        """Place an initialised array in memory; returns its base address.

        Addresses are in 64-bit words; the cache hierarchy maps 16
        consecutive words to one 128-byte line.  ``stride`` spaces the
        elements ``stride`` words apart -- used to model records larger
        than one word (element i lives at ``base + i*stride``), which
        determines the array's cache footprint.
        """
        return self.alloc(name, len(values), init=values, stride=stride)

    def alloc(
        self,
        name: str,
        size: int,
        fill: int | float = 0,
        init: Optional[Sequence[int | float]] = None,
        stride: int = 1,
    ) -> int:
        """Reserve ``size`` elements spaced ``stride`` words apart;
        returns the base address."""
        if name in self._data_bases:
            raise BuildError(f"data segment {name!r} already allocated")
        if size <= 0:
            raise BuildError(f"allocation {name!r} must be positive, got {size}")
        if stride < 1:
            raise BuildError(f"stride must be >= 1, got {stride}")
        base = self._heap_top
        values = init if init is not None else [fill] * size
        if len(values) != size:
            raise BuildError(
                f"init for {name!r} has {len(values)} values, expected {size}"
            )
        for offset, value in enumerate(values):
            if value != 0:
                self._initial_memory[base + offset * stride] = value
        # Round segments to cache-line (16-word) boundaries so arrays
        # don't share lines; this mirrors typical allocator behaviour and
        # makes coherence traffic attributable.
        words = size * stride
        self._heap_top = base + ((words + 15) // 16) * 16
        self._data_bases[name] = base
        return base

    def base_of(self, name: str) -> int:
        return self._data_bases[name]

    # ==================================================================
    # Entry points and constants
    # ==================================================================
    def entry(self, value: int | float = 0, label: str = "entry") -> Node:
        """Declare a program input delivered at cycle 0 (wave 0)."""
        if self._current.thread != 0 or self._current.region_id != 0:
            raise BuildError("entries may only be created in the master region")
        node = self._emit(
            Opcode.NOP, [], label=label, check_inputs=False, allow_underfed=True
        )
        # NOP has arity 1; feed its single port from an entry token.
        self._entry_tokens.append(
            make_token(thread=0, wave=0, inst=node.inst, port=0, value=value)
        )
        return node

    def const(
        self, value: int | float, trigger: Optional[Node] = None, label: str = ""
    ) -> Node:
        """Produce ``value`` each time ``trigger`` delivers a token.

        With no explicit trigger the region's current unconditional
        trigger is used.
        """
        if trigger is None:
            trigger = self._current.trigger
        if trigger is None:
            raise BuildError("const needs a trigger in an empty region")
        return self._emit(
            Opcode.CONST, [trigger], immediate=value, label=label or f"#{value}"
        )

    def nop(self, value: Node, label: str = "") -> Node:
        """Forward ``value`` unchanged (fan-out / join glue)."""
        return self._emit(Opcode.NOP, [value], label=label)

    # ==================================================================
    # Arithmetic (generated helpers)
    # ==================================================================
    def _binop(self, opcode: Opcode, a: Node, b: Node, label: str = "") -> Node:
        return self._emit(opcode, [a, b], label=label)

    def _unop(self, opcode: Opcode, a: Node, label: str = "") -> Node:
        return self._emit(opcode, [a], label=label)

    def add(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.ADD, a, b)

    def sub(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.SUB, a, b)

    def mul(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.MUL, a, b)

    def div(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.DIV, a, b)

    def mod(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.MOD, a, b)

    def and_(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.AND, a, b)

    def or_(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.OR, a, b)

    def xor(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.XOR, a, b)

    def not_(self, a: Node) -> Node:
        return self._unop(Opcode.NOT, a)

    def shl(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.SHL, a, b)

    def shr(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.SHR, a, b)

    def sar(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.SAR, a, b)

    def neg(self, a: Node) -> Node:
        return self._unop(Opcode.NEG, a)

    def abs_(self, a: Node) -> Node:
        return self._unop(Opcode.ABS, a)

    def min_(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.MIN, a, b)

    def max_(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.MAX, a, b)

    def eq(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.EQ, a, b)

    def ne(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.NE, a, b)

    def lt(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.LT, a, b)

    def le(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.LE, a, b)

    def gt(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.GT, a, b)

    def ge(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.GE, a, b)

    def fadd(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FADD, a, b)

    def fsub(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FSUB, a, b)

    def fmul(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FMUL, a, b)

    def fdiv(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FDIV, a, b)

    def fsqrt(self, a: Node) -> Node:
        return self._unop(Opcode.FSQRT, a)

    def fneg(self, a: Node) -> Node:
        return self._unop(Opcode.FNEG, a)

    def fabs_(self, a: Node) -> Node:
        return self._unop(Opcode.FABS, a)

    def flt(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FLT, a, b)

    def fle(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FLE, a, b)

    def feq(self, a: Node, b: Node) -> Node:
        return self._binop(Opcode.FEQ, a, b)

    def i2f(self, a: Node) -> Node:
        return self._unop(Opcode.I2F, a)

    def f2i(self, a: Node) -> Node:
        return self._unop(Opcode.F2I, a)

    # ==================================================================
    # Memory
    # ==================================================================
    def load(self, addr: Node, label: str = "") -> Node:
        return self._emit(Opcode.LOAD, [addr], label=label)

    def store(self, addr: Node, value: Node, label: str = "") -> Node:
        """Emit a store; the returned node is the store's acknowledgement
        value (the stored data), usable for explicit ordering chains."""
        return self._emit(Opcode.STORE, [addr, value], label=label)

    def memory_nop(self, trigger: Node, label: str = "mnop") -> Node:
        return self._emit(Opcode.MEMORY_NOP, [trigger], label=label)

    # ==================================================================
    # Control flow
    # ==================================================================
    def steer(self, value: Node, pred: Node) -> tuple[Node, Node]:
        """Raw steer: returns the (true-side, false-side) streams."""
        node = self._emit(Opcode.STEER, [value, pred])
        true_node = node
        false_node = Node(
            inst=node.inst,
            true_side=False,
            region=node.region,
            thread=node.thread,
        )
        return true_node, false_node

    def merge_select(self, a: Node, b: Node, pred: Node) -> Node:
        """Strict select: all three inputs arrive; forwards a or b."""
        return self._emit(Opcode.MERGE, [a, b, pred])

    def if_else(self, pred: Node, values: Sequence[Node]) -> "IfElse":
        """Open a conditional region over ``values``.

        See :class:`IfElse`.  ``values`` must be non-empty (the arms need
        at least one steered token to trigger conditional work).
        """
        if not values:
            raise BuildError("if_else requires at least one steered value")
        pred = self._use(pred)
        values = [self._use(v) for v in values]
        cursor = self._current.cursor
        if len(cursor) > 1 or any(rec.next_ambiguous for rec in cursor):
            # Fork directly after a join: the join's multiple chain
            # tails cannot each ripple to the new fork's alternative
            # heads (``next`` is single-valued), so a MEMORY_NOP
            # serialises the chain first -- the same NOP a wave-ordered
            # memory compiler must insert.  Its trigger fires exactly
            # when this conditional executes.
            self.memory_nop(values[0], label="fork.mnop")
        return IfElse(self, pred, values)

    def loop(
        self,
        carried: Sequence[Node],
        invariants: Sequence[Node] = (),
        k: Optional[int] = None,
        label: str = "loop",
    ) -> "Loop":
        """Open a loop whose body runs one wave per iteration.

        ``carried`` values are rebound by :meth:`Loop.next_iteration`;
        ``invariants`` pass through unchanged.  ``k`` bounds the number
        of in-flight iterations (k-loop bounding [Culler88]); ``None``
        leaves the loop unbounded.
        """
        if not carried:
            raise BuildError("loop requires at least one carried value")
        return Loop(self, list(carried), list(invariants), k, label)

    # ==================================================================
    # Threads
    # ==================================================================
    def spawn_thread(
        self, thread_id: int, values: Sequence[Node], label: str = ""
    ) -> list[Node]:
        """Retag ``values`` into thread ``thread_id`` (wave 0) and switch
        the builder into that thread's entry region.

        Must later be matched by :meth:`end_thread`.
        """
        if thread_id == self._current.thread:
            raise BuildError(f"thread {thread_id} would spawn into itself")
        if thread_id in self._thread_parents:
            raise BuildError(f"thread {thread_id} already open")
        if not values:
            raise BuildError("spawn_thread needs at least one seed value")
        parent = self._current
        region = self._new_region(thread=thread_id)
        spawned = []
        for i, value in enumerate(values):
            node = self._emit(
                Opcode.THREAD_SPAWN,
                [value],
                immediate=thread_id,
                label=label or f"spawn.t{thread_id}.{i}",
                new_region=region,
            )
            spawned.append(node)
        self._current = region
        region.trigger = spawned[0]
        self._thread_parents[thread_id] = parent
        return spawned

    def end_thread(self, result: Node, label: str = "") -> Node:
        """Close the current thread, retagging ``result`` back to the
        parent (master) context; returns the master-side node."""
        region = self._current
        parent = self._thread_parents.pop(region.thread, None)
        if parent is None:
            raise BuildError("end_thread without matching spawn_thread")
        self._use(result)
        self._close_region(region)
        node = self._emit(
            Opcode.THREAD_SPAWN,
            [result],
            immediate=parent.thread,
            label=label or f"join.t{region.thread}",
            check_inputs=False,
            new_region=parent,
        )
        self._current = parent
        return node

    # ==================================================================
    # Outputs and finalisation
    # ==================================================================
    def output(self, value: Node, label: str = "out") -> Node:
        """Mark ``value`` as a program output (observable result)."""
        return self._emit(Opcode.OUTPUT, [value], label=label)

    def finalize(self, verify: bool = True) -> DataflowGraph:
        """Close open regions, expand fan-out, and build the binary."""
        if self._finalized:
            raise BuildError("finalize called twice")
        if self._thread_parents:
            raise BuildError(
                f"{len(self._thread_parents)} thread(s) not closed with "
                "end_thread"
            )
        if self._cond_depth:
            raise BuildError("finalize inside an open if_else arm")
        self._close_region(self._current)
        self._expand_fanout()
        self._finalized = True

        instructions = []
        for inst_id, opcode in enumerate(self._opcodes):
            rec = self._mem_recs.get(inst_id)
            annotation = None
            if rec is not None:
                annotation = WaveAnnotation(
                    prev=rec.prev,
                    this=rec.this,
                    next=rec.next,
                    region=rec.region,
                )
            instructions.append(
                Instruction(
                    inst_id=inst_id,
                    opcode=opcode,
                    dests=tuple(
                        Dest(i, p) for i, p in self._edges_true.get(inst_id, [])
                    ),
                    false_dests=tuple(
                        Dest(i, p)
                        for i, p in self._edges_false.get(inst_id, [])
                    ),
                    immediate=self._immediates[inst_id],
                    wave_annotation=annotation,
                    label=self._labels[inst_id],
                )
            )

        threads: dict[int, list[int]] = {}
        for inst_id, thread in enumerate(self._inst_thread):
            threads.setdefault(thread, []).append(inst_id)
        thread_infos = [
            ThreadInfo(thread_id=t, instructions=tuple(ids))
            for t, ids in sorted(threads.items())
        ]

        graph = DataflowGraph(
            instructions=instructions,
            entry_tokens=list(self._entry_tokens),
            initial_memory=dict(self._initial_memory),
            threads=thread_infos,
            name=self.name,
        )
        if verify:
            from ..isa.verify import verify_graph

            verify_graph(graph)
        return graph

    def _expand_fanout(self) -> None:
        """Split destinations beyond MAX_FANOUT through NOP trees."""
        work = list(range(len(self._opcodes)))
        while work:
            inst_id = work.pop()
            for edges in (self._edges_true, self._edges_false):
                dests = edges.get(inst_id, [])
                if len(dests) <= MAX_FANOUT:
                    continue
                # Keep MAX_FANOUT - 1 real destinations, push the rest
                # through a relay NOP (which may itself be split again).
                keep = dests[: MAX_FANOUT - 1]
                rest = dests[MAX_FANOUT - 1 :]
                relay_id = len(self._opcodes)
                self._opcodes.append(Opcode.NOP)
                self._immediates.append(None)
                self._labels.append(f"fanout.i{inst_id}")
                self._inst_thread.append(self._inst_thread[inst_id])
                edges[inst_id] = keep + [(relay_id, 0)]
                self._edges_true[relay_id] = rest
                work.append(relay_id)
                work.append(inst_id)
                break  # edges mutated; revisit this instruction


# ----------------------------------------------------------------------
# Control-flow helpers
# ----------------------------------------------------------------------
class IfElse:
    """A structured conditional.

    Usage::

        br = b.if_else(pred, [x, y])
        tx, ty = br.then_values()
        br.then_result([b.add(tx, ty)])
        fx, fy = br.else_values()
        br.else_result([fx])
        (merged,) = br.end()

    Each arm's body must consume only its own steered values (plus
    constants triggered by them).  Results of the two arms are joined
    through shared NOPs, so downstream code sees a single stream.

    The conditional keeps wave-ordering sound across arms: if one arm
    performs memory operations and the other does not, the empty arm
    receives an automatic MEMORY_NOP so the ordering chain resolves on
    both paths.
    """

    def __init__(self, b: GraphBuilder, pred: Node, values: list[Node]) -> None:
        self._b = b
        self._true_vals: list[Node] = []
        self._false_vals: list[Node] = []
        for value in values:
            t, f = b.steer(value, pred)
            self._true_vals.append(t)
            self._false_vals.append(f)
        region = b._current
        self._region = region
        self._fork_cursor = list(region.cursor)
        self._fork_counter_ops = len(region.mem_ops)
        # The op immediately before the fork can no longer name its
        # successor statically if either arm emits memory ops.
        self._then_results: Optional[list[Node]] = None
        self._else_results: Optional[list[Node]] = None
        self._then_last: list[_MemRec] = []
        self._else_last: list[_MemRec] = []
        self._then_had_ops = False
        self._else_had_ops = False
        self._state = "open"

    # -- then arm ------------------------------------------------------
    def then_values(self) -> list[Node]:
        if self._state != "open":
            raise BuildError(f"then_values in state {self._state}")
        self._state = "then"
        self._b._cond_depth += 1
        self._arm_start()
        return list(self._true_vals)

    def then_result(self, results: Sequence[Node]) -> None:
        if self._state != "then":
            raise BuildError("then_result without then_values")
        self._then_had_ops, self._then_last = self._arm_end(
            self._true_vals[0], self._then_had_ops_pending()
        )
        self._then_results = [self._b._use(r) for r in results]
        self._b._cond_depth -= 1
        self._state = "mid"

    # -- else arm ------------------------------------------------------
    def else_values(self) -> list[Node]:
        if self._state != "mid":
            raise BuildError("else_values before then_result")
        self._state = "else"
        self._b._cond_depth += 1
        self._arm_start()
        return list(self._false_vals)

    def else_result(self, results: Sequence[Node]) -> None:
        if self._state != "else":
            raise BuildError("else_result without else_values")
        self._else_had_ops, self._else_last = self._arm_end(
            self._false_vals[0], self._else_had_ops_pending()
        )
        self._else_results = [self._b._use(r) for r in results]
        self._b._cond_depth -= 1
        self._state = "done"

    # -- join ----------------------------------------------------------
    def end(self) -> list[Node]:
        """Join the two arms; returns the merged value streams."""
        if self._state != "done":
            raise BuildError("end before both arms completed")
        assert self._then_results is not None
        assert self._else_results is not None
        if len(self._then_results) != len(self._else_results):
            raise BuildError(
                "arms must produce the same number of results "
                f"({len(self._then_results)} vs {len(self._else_results)})"
            )
        region = self._region
        if self._then_had_ops or self._else_had_ops:
            # Insert a MEMORY_NOP on any memory-free arm, then set the
            # join cursor to both arms' last ops and poison the pre-fork
            # op's next link (its dynamic successor is arm-dependent).
            if not self._then_had_ops:
                self._then_last = self._emit_arm_nop(self._true_vals[0])
            if not self._else_had_ops:
                self._else_last = self._emit_arm_nop(self._false_vals[0])
            for rec in self._fork_cursor:
                rec.next_ambiguous = True
                rec.next = UNKNOWN
            region.cursor = self._then_last + self._else_last
        else:
            region.cursor = self._fork_cursor

        merged = []
        for t_node, f_node in zip(self._then_results, self._else_results):
            join = self._b._emit(Opcode.NOP, [t_node], label="join")
            # Wire the false-arm producer into the same join port.
            edges = (
                self._b._edges_true
                if f_node.true_side
                else self._b._edges_false
            )
            edges.setdefault(f_node.inst, []).append((join.inst, 0))
            merged.append(join)
        return merged

    # -- internals -----------------------------------------------------
    def _arm_start(self) -> None:
        region = self._region
        region.cursor = list(self._fork_cursor)
        # Arms may not ripple *through* the fork ops while building (the
        # counterpart arm also descends from them); defer patches.
        self._arm_ops_before = len(region.mem_ops)

    def _then_had_ops_pending(self) -> bool:
        return len(self._region.mem_ops) > self._arm_ops_before

    _else_had_ops_pending = _then_had_ops_pending

    def _arm_end(
        self, arm_trigger: Node, had_ops: bool
    ) -> tuple[bool, list[_MemRec]]:
        region = self._region
        last = [rec for rec in region.cursor if rec not in self._fork_cursor]
        if had_ops and not last:
            # Possible if the arm's last ops came from a nested join that
            # restored the fork cursor; treat as no ops at this level.
            had_ops = False
        if had_ops:
            # First op of the arm descends from the fork point; if there
            # were multiple fork-cursor entries its prev is already
            # UNKNOWN; with exactly one it was recorded as that op's
            # ``this`` by _sequence_memory_op, which also patched the
            # fork op's next -- undo that patch (arm-dependent).
            for rec in self._fork_cursor:
                if rec.next != UNKNOWN and any(
                    rec.next == arm_rec.this for arm_rec in region.mem_ops
                ):
                    rec.next = UNKNOWN
        return had_ops, last

    def _emit_arm_nop(self, trigger: Node) -> list[_MemRec]:
        region = self._region
        region.cursor = list(self._fork_cursor)
        self._b._cond_depth += 1
        try:
            node = self._b.memory_nop(trigger, label="arm.mnop")
        finally:
            self._b._cond_depth -= 1
        rec = self._b._mem_recs[node.inst]
        for fork_rec in self._fork_cursor:
            if fork_rec.next == rec.this:
                fork_rec.next = UNKNOWN
        return [rec]


class Loop:
    """A structured loop; each iteration executes in its own wave.

    Construction wiring (per carried value ``v``)::

        outer value --WAVE_ADVANCE--> header NOP --> body ...
        body result --STEER(pred)--+--true--> WAVE_ADVANCE --> header NOP
                                   +--false-> WAVE_ADVANCE --> exit NOP

    Invariants use the same wiring with the steered input being the
    header output itself (pass-through).  The exit WAVE_ADVANCE moves
    post-loop code into a fresh wave, giving it a fresh memory-ordering
    chain.
    """

    def __init__(
        self,
        b: GraphBuilder,
        carried: list[Node],
        invariants: list[Node],
        k: Optional[int],
        label: str,
    ) -> None:
        self._b = b
        self._k = k
        self._label = label
        outer = b._current
        for node in carried + invariants:
            b._use(node)
        b._close_region(outer)

        body = b._new_region(thread=outer.thread)
        self._body_region = body
        self._headers: list[Node] = []
        for idx, value in enumerate(carried + invariants):
            adv = b._emit(
                Opcode.WAVE_ADVANCE,
                [value],
                label=f"{label}.enter.{idx}",
                check_inputs=False,
                new_region=body,
            )
            saved = b._current
            b._current = body
            header = b.nop(adv, label=f"{label}.hdr.{idx}")
            b._current = saved
            self._headers.append(header)
        self._n_carried = len(carried)
        self._n_invariant = len(invariants)
        b._current = body
        body.trigger = self._headers[0]
        self._exit_advances: list[Node] = []
        self._state = "body"

    @property
    def state(self) -> list[Node]:
        """Header outputs for the carried values."""
        return self._headers[: self._n_carried]

    @property
    def invariants(self) -> list[Node]:
        """Header outputs for the invariant values."""
        return self._headers[self._n_carried :]

    def next_iteration(
        self,
        pred: Node,
        next_values: Sequence[Node],
        next_invariants: Optional[Sequence[Node]] = None,
    ) -> None:
        """Close the body: continue with ``next_values`` while ``pred``.

        ``next_values`` rebind the carried state.  Invariants are routed
        automatically when the iteration tail is still the loop body
        region; if the body contained an inner loop (which advances
        waves), the caller must thread the invariants through it and
        hand the post-inner versions back via ``next_invariants``.
        """
        if self._state != "body":
            raise BuildError(f"next_iteration in state {self._state}")
        if len(next_values) != self._n_carried:
            raise BuildError(
                f"loop carries {self._n_carried} values, got "
                f"{len(next_values)} next values"
            )
        b = self._b
        # The region current *now* is the tail of the iteration: the
        # body itself, or the post-region of an inner loop.  Its chain
        # ends here (the back edge is a wave boundary).
        tail = b._current
        pred = b._use(pred)
        routed = []
        for value in next_values:
            routed.append(b._use(value))
        if next_invariants is None:
            if (
                self._n_invariant
                and tail.region_id != self._body_region.region_id
            ):
                raise BuildError(
                    f"loop {self._label!r}: body contains an inner loop; "
                    "thread the invariants through it and pass them to "
                    "next_iteration(next_invariants=...)"
                )
            routed.extend(self._headers[self._n_carried :])
        else:
            if len(next_invariants) != self._n_invariant:
                raise BuildError(
                    f"loop has {self._n_invariant} invariants, got "
                    f"{len(next_invariants)}"
                )
            for value in next_invariants:
                routed.append(b._use(value))
        b._close_region(tail)

        for idx, value in enumerate(routed):
            t_node, f_node = b.steer(value, pred)
            back = b._emit(
                Opcode.WAVE_ADVANCE,
                [t_node],
                immediate=self._k,
                label=f"{self._label}.back.{idx}",
                check_inputs=False,
                new_region=tail,
            )
            # Back-edge targets this value's header NOP.
            b._edges_true.setdefault(back.inst, []).append(
                (self._headers[idx].inst, 0)
            )
            exit_adv = b._emit(
                Opcode.WAVE_ADVANCE,
                [f_node],
                label=f"{self._label}.exit.{idx}",
                check_inputs=False,
                new_region=tail,  # placeholder; retargeted in end()
            )
            self._exit_advances.append(exit_adv)
        self._state = "closed"

    def end(self) -> list[Node]:
        """Finish the loop; returns exit values (carried + invariants)
        in a fresh post-loop region."""
        if self._state != "closed":
            raise BuildError("end before next_iteration")
        b = self._b
        post = b._new_region(thread=self._body_region.thread)
        exits = []
        for idx, adv in enumerate(self._exit_advances):
            saved = b._current
            b._current = post
            exit_node = Node(
                inst=adv.inst,
                true_side=True,
                region=post.region_id,
                thread=post.thread,
            )
            landing = b.nop(exit_node, label=f"{self._label}.land.{idx}")
            b._current = saved
            exits.append(landing)
        b._current = post
        post.trigger = exits[0]
        self._state = "ended"
        return exits
