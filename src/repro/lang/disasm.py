"""Disassembler: DataflowGraph -> textual assembly.

``assemble(disassemble(graph))`` reproduces the graph exactly (labels
are carried in comments and dropped on re-assembly; everything
architecturally meaningful round-trips).
"""

from __future__ import annotations

from ..isa.graph import DataflowGraph
from ..isa.instruction import Instruction
from ..isa.waves import UNKNOWN, WAVE_END, WAVE_START


def _seq_str(seq: int) -> str:
    if seq == WAVE_START:
        return "^"
    if seq == WAVE_END:
        return "$"
    if seq == UNKNOWN:
        return "?"
    return str(seq)


def _format_instruction(inst: Instruction) -> str:
    parts = [f"i{inst.inst_id}: {inst.opcode.name}"]
    if inst.immediate is not None:
        parts.append(f"#{inst.immediate}")
    if inst.wave_annotation is not None:
        ann = inst.wave_annotation
        parts.append(
            f"<{_seq_str(ann.prev)},{_seq_str(ann.this)},"
            f"{_seq_str(ann.next)},{ann.region}>"
        )
    if inst.dests:
        parts.append(
            "-> " + ", ".join(f"i{d.inst}[{d.port}]" for d in inst.dests)
        )
    if inst.false_dests:
        if not inst.dests:
            parts.append("->")
        parts.append(
            "/ " + ", ".join(f"i{d.inst}[{d.port}]" for d in inst.false_dests)
        )
    line = " ".join(parts)
    if inst.label:
        line += f"  ; {inst.label}"
    return line


def disassemble(graph: DataflowGraph) -> str:
    """Render ``graph`` in the textual assembly format."""
    lines = [f".program {graph.name}"]
    for address in sorted(graph.initial_memory):
        lines.append(f".memory {address} = {graph.initial_memory[address]}")
    for token in graph.entry_tokens:
        lines.append(
            f".entry i{token.inst}[{token.port}] t{token.thread} "
            f"= {token.value}"
        )
    for tinfo in graph.threads:
        ids = " ".join(f"i{i}" for i in tinfo.instructions)
        lines.append(f".thread {tinfo.thread_id} : {ids}")
    lines.append("")
    for inst in graph.instructions:
        lines.append(_format_instruction(inst))
    return "\n".join(lines) + "\n"
