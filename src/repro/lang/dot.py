"""Graphviz export of dataflow graphs.

``to_dot(graph)`` renders a :class:`~repro.isa.DataflowGraph` as a DOT
digraph: one node per instruction (coloured by opcode class, memory
nodes annotated with their wave triple), solid edges for true-side
destinations and dashed edges for a steer's false side.  Pipe the
output through ``dot -Tsvg`` to visualise a kernel, or use
``cluster_by`` to box nodes by thread or by placement.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..isa.graph import DataflowGraph
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass

#: Fill colours per opcode class (graphviz X11 names).
CLASS_COLORS: Mapping[OpClass, str] = {
    OpClass.INT_ALU: "lightblue",
    OpClass.INT_MUL: "steelblue",
    OpClass.FP: "lightpink",
    OpClass.STEER: "gold",
    OpClass.WAVE: "palegreen",
    OpClass.CONST: "lightgrey",
    OpClass.MEMORY: "orange",
    OpClass.THREAD: "plum",
    OpClass.MISC: "white",
}


def _label(inst: Instruction) -> str:
    parts = [f"i{inst.inst_id} {inst.opcode.name}"]
    if inst.immediate is not None:
        parts.append(f"#{inst.immediate}")
    if inst.wave_annotation is not None:
        parts.append(repr(inst.wave_annotation))
    if inst.label:
        parts.append(inst.label)
    return "\\n".join(p.replace('"', "'") for p in parts)


def to_dot(
    graph: DataflowGraph,
    cluster_by: Optional[Callable[[int], object]] = None,
    include_entry_tokens: bool = True,
) -> str:
    """Render ``graph`` as a DOT digraph string.

    ``cluster_by(inst_id)`` groups nodes into subgraph clusters (pass
    ``placement.pe_of.get`` to box by PE, or the graph's
    ``thread_of_instruction().get`` to box by thread).
    """
    lines = [
        f'digraph "{graph.name}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace", '
        "fontsize=9];",
    ]

    groups: dict[object, list[int]] = {}
    for inst in graph.instructions:
        key = cluster_by(inst.inst_id) if cluster_by else None
        groups.setdefault(key, []).append(inst.inst_id)

    for key, members in sorted(groups.items(), key=lambda kv: str(kv[0])):
        indent = "  "
        if key is not None:
            lines.append(f'  subgraph "cluster_{key}" {{')
            lines.append(f'    label="{key}";')
            indent = "    "
        for inst_id in members:
            inst = graph[inst_id]
            color = CLASS_COLORS.get(inst.opcode.value.opclass, "white")
            lines.append(
                f'{indent}i{inst_id} [label="{_label(inst)}", '
                f'fillcolor="{color}"];'
            )
        if key is not None:
            lines.append("  }")

    for inst in graph.instructions:
        for dest in inst.dests:
            lines.append(
                f"  i{inst.inst_id} -> i{dest.inst} "
                f'[headlabel="{dest.port}", labelfontsize=7];'
            )
        for dest in inst.false_dests:
            lines.append(
                f"  i{inst.inst_id} -> i{dest.inst} "
                f'[style=dashed, headlabel="{dest.port}", '
                "labelfontsize=7];"
            )

    if include_entry_tokens:
        for index, token in enumerate(graph.entry_tokens):
            lines.append(
                f'  entry{index} [shape=plaintext, '
                f'label="t{token.thread}={token.value!r}"];'
            )
            lines.append(f"  entry{index} -> i{token.inst};")

    lines.append("}")
    return "\n".join(lines)
