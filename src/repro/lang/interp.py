"""Functional reference interpreter for dataflow graphs.

Executes a :class:`~repro.isa.DataflowGraph` with unlimited resources
and zero-latency communication: pure dataflow-firing-rule semantics plus
wave-ordered memory.  It is the *architectural golden model* -- the
cycle-level simulator must produce identical program outputs and final
memory, which the integration tests assert for every workload.

The interpreter also reports dynamic statistics (instruction counts by
class, wave counts) that the workload suite uses to characterise kernel
shape independent of any microarchitecture.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from ..isa.graph import DataflowGraph
from ..isa.opcodes import Opcode
from ..isa.semantics import evaluate, steer_taken
from ..isa.token import Tag, Token, Value
from ..isa.waves import UNKNOWN, WAVE_END, WAVE_START


class DeadlockError(RuntimeError):
    """Raised when execution stops with unconsumed partial matches."""


@dataclass
class InterpResult:
    """Outcome of a reference execution."""

    outputs: dict[int, list[Value]]
    memory: dict[int, Value]
    dynamic_instructions: int
    alpha_instructions: int
    fired_by_opcode: dict[str, int]
    fired_by_inst: dict[int, int]
    waves_retired: dict[int, int]
    #: Tokens delivered per static edge: ``(src, dst, dst_port) ->
    #: count``.  Architectural (config-independent), so the static
    #: bound analyzer can use it as an exact dynamic profile.
    sent_by_edge: dict[tuple[int, int, int], int] = field(
        default_factory=dict
    )

    def output_values(self) -> list[Value]:
        """All OUTPUT-instruction values, ordered by (inst id, arrival)."""
        result = []
        for inst_id in sorted(self.outputs):
            result.extend(self.outputs[inst_id])
        return result


@dataclass
class _WaveChain:
    """Wave-ordering state for one (thread, wave) in the memory model."""

    pending: dict[int, tuple[int, Value, Value]] = field(default_factory=dict)
    last_issued: int = WAVE_START
    last_next: int = UNKNOWN
    complete: bool = False


class _OrderedMemory:
    """Sequentially consistent wave-ordered memory for the interpreter.

    Memory operations arrive (possibly out of order) tagged with
    ``(thread, wave)`` and their static annotation; each thread's waves
    issue strictly in order, and within a wave the ``<prev, this,
    next>`` chain dictates issue order exactly as in the hardware store
    buffer.
    """

    def __init__(self, graph: DataflowGraph, initial: dict[int, Value]):
        self._graph = graph
        self.data: dict[int, Value] = dict(initial)
        self._chains: dict[tuple[int, int], _WaveChain] = {}
        self._expected_wave: dict[int, int] = {}
        self.waves_retired: dict[int, int] = defaultdict(int)
        #: (inst_id, tag-thread, tag-wave, value) results ready to return
        self.completions: deque[tuple[int, int, int, Value]] = deque()

    def submit(
        self, inst_id: int, thread: int, wave: int, addr: Value, data: Value
    ) -> None:
        ann = self._graph[inst_id].wave_annotation
        assert ann is not None
        chain = self._chains.setdefault((thread, wave), _WaveChain())
        if ann.this in chain.pending:
            raise DeadlockError(
                f"duplicate memory op seq {ann.this} in thread {thread} "
                f"wave {wave} (i{inst_id})"
            )
        chain.pending[ann.this] = (inst_id, addr, data)
        self._expected_wave.setdefault(thread, 0)
        self._drain(thread)

    def _drain(self, thread: int) -> None:
        while True:
            wave = self._expected_wave[thread]
            chain = self._chains.get((thread, wave))
            if chain is None:
                return
            progressed = self._drain_chain(thread, wave, chain)
            if chain.complete:
                del self._chains[(thread, wave)]
                self._expected_wave[thread] = wave + 1
                self.waves_retired[thread] = wave + 1
                continue
            if not progressed:
                return

    def _drain_chain(self, thread: int, wave: int, chain: _WaveChain) -> bool:
        progressed = False
        while True:
            ready_seq = self._next_ready(chain)
            if ready_seq is None:
                return progressed
            inst_id, addr, data = chain.pending.pop(ready_seq)
            inst = self._graph[inst_id]
            ann = inst.wave_annotation
            assert ann is not None
            if inst.opcode is Opcode.LOAD:
                value = self.data.get(int(addr), 0)
                self.completions.append((inst_id, thread, wave, value))
            elif inst.opcode is Opcode.STORE:
                self.data[int(addr)] = data
                self.completions.append((inst_id, thread, wave, data))
            else:  # MEMORY_NOP
                self.completions.append((inst_id, thread, wave, addr))
            chain.last_issued = ann.this
            chain.last_next = ann.next
            progressed = True
            if ann.next == WAVE_END:
                chain.complete = True
                return progressed

    def _next_ready(self, chain: _WaveChain) -> int | None:
        for seq, (inst_id, _, _) in chain.pending.items():
            ann = self._graph[inst_id].wave_annotation
            assert ann is not None
            if chain.last_issued == WAVE_START:
                if ann.prev == WAVE_START:
                    return seq
            elif ann.prev == chain.last_issued:
                return seq
            elif chain.last_next == ann.this:
                return seq
        return None

    def stuck_report(self) -> str:
        lines = []
        for (thread, wave), chain in sorted(self._chains.items()):
            if chain.pending:
                ops = ", ".join(
                    f"i{i}<seq {s}>" for s, (i, _, _) in
                    sorted(chain.pending.items())
                )
                lines.append(
                    f"  thread {thread} wave {wave} "
                    f"(expected wave {self._expected_wave.get(thread)}; "
                    f"last issued {chain.last_issued}): {ops}"
                )
        return "\n".join(lines)


def interpret(
    graph: DataflowGraph,
    max_firings: int = 50_000_000,
    strict: bool = True,
) -> InterpResult:
    """Execute ``graph`` to completion under ideal dataflow semantics.

    Raises :class:`DeadlockError` if execution stops while operands or
    memory operations remain buffered (``strict=False`` returns the
    partial result instead, for diagnostic use).
    """
    matching: dict[tuple[int, int, int], dict[int, Value]] = {}
    worklist: deque[Token] = deque(graph.entry_tokens)
    memory = _OrderedMemory(graph, graph.initial_memory)
    outputs: dict[int, list[Value]] = defaultdict(list)
    fired: dict[str, int] = defaultdict(int)
    fired_inst: dict[int, int] = defaultdict(int)
    dynamic = 0
    alpha = 0

    sent_by_edge: dict[tuple[int, int, int], int] = defaultdict(int)

    def send(inst_id: int, thread: int, wave: int, value: Value,
             taken: bool) -> None:
        inst = graph[inst_id]
        dests = inst.dests if taken else inst.false_dests
        for dest in dests:
            sent_by_edge[(inst_id, dest.inst, dest.port)] += 1
            worklist.append(
                Token(Tag(thread, wave, dest.inst, dest.port), value)
            )

    firings = 0
    while worklist or memory.completions:
        while memory.completions:
            inst_id, thread, wave, value = memory.completions.popleft()
            send(inst_id, thread, wave, value, taken=True)
        if not worklist:
            break
        token = worklist.popleft()
        key = token.tag.match_key()
        inst = graph[token.inst]
        slot = matching.setdefault(key, {})
        if token.port in slot:
            raise DeadlockError(
                f"operand collision at {token.tag!r}: port already full "
                "(missing wave advance?)"
            )
        slot[token.port] = token.value
        if len(slot) < inst.arity:
            continue

        # Fire.
        del matching[key]
        operands = [slot[p] for p in range(inst.arity)]
        firings += 1
        if firings > max_firings:
            raise DeadlockError(
                f"{graph.name}: exceeded {max_firings} firings; "
                "probable livelock (unbounded loop?)"
            )
        dynamic += 1
        fired[inst.opcode.name] += 1
        fired_inst[inst.inst_id] += 1
        if inst.opcode.alpha_equivalent:
            alpha += 1

        thread, wave = token.thread, token.wave
        if inst.opcode.is_memory:
            if inst.opcode is Opcode.STORE:
                memory.submit(
                    inst.inst_id, thread, wave, operands[0], operands[1]
                )
            else:
                memory.submit(
                    inst.inst_id, thread, wave, operands[0], operands[0]
                )
            continue
        if inst.opcode is Opcode.OUTPUT:
            outputs[inst.inst_id].append(operands[0])
            continue
        if inst.opcode is Opcode.THREAD_HALT:
            continue

        value = evaluate(inst.opcode, operands, inst.immediate)
        if inst.opcode is Opcode.STEER:
            send(inst.inst_id, thread, wave, value,
                 taken=steer_taken(operands))
        elif inst.opcode is Opcode.WAVE_ADVANCE:
            send(inst.inst_id, thread, wave + 1, value, taken=True)
        elif inst.opcode is Opcode.THREAD_SPAWN:
            assert inst.immediate is not None
            send(inst.inst_id, int(inst.immediate), 0, value, taken=True)
        else:
            send(inst.inst_id, thread, wave, value, taken=True)

    if strict:
        leftovers = {
            key: sorted(slot) for key, slot in matching.items() if slot
        }
        stuck_mem = memory.stuck_report()
        if leftovers or stuck_mem:
            detail = ""
            if leftovers:
                sample = list(leftovers.items())[:8]
                pretty = ", ".join(
                    f"t{t}.w{w}.i{i}(ports {p})" for (t, w, i), p in sample
                )
                detail += f"\n  partial matches: {pretty}"
            if stuck_mem:
                detail += f"\n  stuck memory ops:\n{stuck_mem}"
            raise DeadlockError(f"{graph.name}: deadlocked{detail}")

    return InterpResult(
        outputs=dict(outputs),
        memory=memory.data,
        dynamic_instructions=dynamic,
        alpha_instructions=alpha,
        fired_by_opcode=dict(fired),
        fired_by_inst=dict(fired_inst),
        waves_retired=dict(memory.waves_retired),
        sent_by_edge=dict(sent_by_edge),
    )
