"""k-loop bounding pass.

WaveScalar restricts the number of dynamic instances of a loop that may
be in flight simultaneously with *k-loop bounding* [Culler & Arvind,
ISCA'88]: at most ``k`` input instances may accumulate for a single
static instruction.  The paper tunes ``k`` per application (Table 4) by
sweeping it against an infinite matching table.

In this reproduction the bound is carried in the immediate of every
back-edge WAVE_ADVANCE instruction (``None`` means unbounded); the
simulator's wave-advance unit delays issuing wave ``w+1`` tokens until
wave ``w+1-k`` has retired at the store buffer.  This pass rewrites
those immediates, so a single built graph can be re-bounded cheaply for
the Table 4 sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..isa.graph import DataflowGraph
from ..isa.opcodes import Opcode


def backedge_ids(graph: DataflowGraph) -> list[int]:
    """Static ids of back-edge WAVE_ADVANCE instructions.

    Back edges are recognised structurally: a WAVE_ADVANCE (a) whose
    input is the *true* side of a STEER (the loop-continue path) and
    (b) whose destination is a loop-header NOP fed by at least two
    WAVE_ADVANCE instructions (the loop-entry advance plus the back
    edge).  The builder's ``*.back.*`` labels are not relied upon, so
    the pass also works on assembled programs without labels.
    """
    # For every (dest inst, port): which producers feed it, and on
    # which steer side.
    advance_feeds: dict[tuple[int, int], int] = {}
    fed_from_steer_true: dict[tuple[int, int], bool] = {}
    for inst in graph.instructions:
        from_steer_true = inst.opcode is Opcode.STEER
        for dest in inst.dests:
            key = (dest.inst, dest.port)
            if inst.opcode is Opcode.WAVE_ADVANCE:
                advance_feeds[key] = advance_feeds.get(key, 0) + 1
            if from_steer_true:
                fed_from_steer_true[key] = True
        if inst.opcode is Opcode.WAVE_ADVANCE:
            for dest in inst.false_dests:
                key = (dest.inst, dest.port)
                advance_feeds[key] = advance_feeds.get(key, 0) + 1

    result = []
    for inst in graph.instructions:
        if inst.opcode is not Opcode.WAVE_ADVANCE:
            continue
        if not fed_from_steer_true.get((inst.inst_id, 0), False):
            continue  # entry or exit advance
        is_back = any(
            advance_feeds.get((dest.inst, dest.port), 0) >= 2
            and graph[dest.inst].opcode is Opcode.NOP
            for dest in inst.all_dests
        )
        if is_back:
            result.append(inst.inst_id)
    return result


def set_k_bound(graph: DataflowGraph, k: Optional[int]) -> DataflowGraph:
    """Return a copy of ``graph`` with every loop bounded to ``k``.

    ``k=None`` removes all bounds.  ``k`` must be >= 1 (at least one
    iteration must be allowed in flight).
    """
    if k is not None and k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    targets = set(backedge_ids(graph))
    instructions = []
    for inst in graph.instructions:
        if inst.inst_id in targets:
            instructions.append(dataclasses.replace(inst, immediate=k))
        else:
            instructions.append(inst)
    return DataflowGraph(
        instructions=instructions,
        entry_tokens=list(graph.entry_tokens),
        initial_memory=dict(graph.initial_memory),
        threads=list(graph.threads),
        name=graph.name,
    )


def k_bound_of(graph: DataflowGraph) -> Optional[int]:
    """The common k bound of the graph's loops (None if unbounded or
    no loops; raises if loops carry inconsistent bounds)."""
    bounds = {
        graph[i].immediate for i in backedge_ids(graph)
    }
    if not bounds:
        return None
    if len(bounds) > 1:
        raise ValueError(f"inconsistent k bounds in {graph.name}: {bounds}")
    value = bounds.pop()
    return int(value) if value is not None else None
