"""Unified observability: metrics, trace export, and profiling.

The paper's entire evaluation is read off simulator instrumentation
(AIPC, Figure 8 traffic locality, Table 4 matching behaviour, the
Figure 9 pipeline walk-through), and the harness's campaign health is
read off scheduler instrumentation.  This package is the one place
both live:

* :mod:`repro.obs.metrics` -- a counter/gauge/histogram registry,
  aggregation of per-cell ledger ``metrics`` blocks, and the
  :class:`~repro.obs.metrics.ThroughputMeter` behind the sweep
  driver's cells-per-second / ETA reporting;
* :mod:`repro.obs.chrome` -- Chrome trace-event JSON export of a
  :class:`~repro.sim.trace.Trace` (one track per PE; open the file in
  Perfetto or ``chrome://tracing``);
* :mod:`repro.obs.profile` -- opt-in per-phase cycle attribution of
  the engine hot loop (INPUT/MATCH/DISPATCH/EXECUTE/DELIVER), with a
  benchmark-enforced <2% overhead when disabled.
"""

from .chrome import chrome_trace_events, write_chrome_trace
from .metrics import (
    DETERMINISTIC_CELL_COUNTERS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ThroughputMeter,
    aggregate_records,
    cell_metrics,
    deterministic_counters,
)
from .profile import PHASES, PhaseProfile

__all__ = [
    "Counter",
    "DETERMINISTIC_CELL_COUNTERS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "PhaseProfile",
    "ThroughputMeter",
    "aggregate_records",
    "cell_metrics",
    "chrome_trace_events",
    "deterministic_counters",
    "write_chrome_trace",
]
