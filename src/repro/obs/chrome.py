"""Chrome trace-event export of an execution trace.

Converts a :class:`~repro.sim.trace.Trace` into the Chrome
trace-event JSON format (the ``traceEvents`` array flavour), loadable
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* one track per PE (``tid`` = PE index, named ``PE n``), plus a
  ``store buffer`` track for memory completions, which the engine
  emits with ``pe == -1``;
* ``dispatch``/``execute`` pairs of the same dynamic firing become
  one *complete* slice (``ph: "X"``) spanning DISPATCH through the
  end of EXECUTE -- the Figure 9 pipeline walk-through, zoomable;
* every other event (``input``, ``match``, ``output``, ``mem_req``,
  ``fault_drop``, ...) becomes an *instant* event (``ph: "i"``);
* one simulated cycle maps to one microsecond of trace time (the
  format's native unit), so the Perfetto ruler reads directly in
  cycles.

The module is duck-typed on ``trace.events`` so it never imports the
simulator; :meth:`repro.sim.trace.Trace.to_chrome` is the convenience
wrapper users call.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

#: ``tid`` used for events without a PE (store-buffer completions).
MEMORY_TRACK = "mem"


def _track(pe: int) -> object:
    return MEMORY_TRACK if pe < 0 else pe


def _kind_name(kind) -> str:
    """Trace kinds are strings; an event carrying a raw integer
    calendar tag (:mod:`repro.sim.events`) is mapped to its
    human-readable name defensively, so such a trace still renders
    with ``token``/``dispatch``/... labels rather than bare numbers.
    The import stays lazy (and guarded) to keep this module loadable
    without the simulator package."""
    if isinstance(kind, int):
        try:
            from ..sim.events import tag_name
        except ImportError:
            return f"tag{kind}"
        return tag_name(kind)
    return kind


def chrome_trace_events(events: Iterable) -> list[dict]:
    """The ``traceEvents`` list for an iterable of trace events."""
    out: list[dict] = []
    tracks: set = set()
    # Open dispatches awaiting their execute, keyed by dynamic firing.
    pending: dict[tuple, list[dict]] = {}
    for e in events:
        tracks.add(_track(e.pe))
        kind = _kind_name(e.kind)
        args = {"inst": e.inst, "thread": e.thread, "wave": e.wave}
        if e.detail:
            args["detail"] = e.detail
        if kind == "dispatch":
            slice_event = {
                "name": e.detail or "dispatch",
                "cat": "pipeline",
                "ph": "X",
                "ts": e.cycle,
                "dur": 1,  # widened when the execute arrives
                "pid": 0,
                "tid": _track(e.pe),
                "args": args,
            }
            out.append(slice_event)
            key = (e.pe, e.inst, e.thread, e.wave)
            pending.setdefault(key, []).append(slice_event)
            continue
        if kind == "execute":
            key = (e.pe, e.inst, e.thread, e.wave)
            open_slices = pending.get(key)
            if open_slices:
                slice_event = open_slices.pop(0)
                if not open_slices:
                    del pending[key]
                # EXECUTE completes at e.cycle; give zero-latency ops
                # a 1-cycle slice so they stay visible.
                slice_event["dur"] = max(
                    1, e.cycle - slice_event["ts"]
                )
                continue
            # An execute with no open dispatch (truncated trace):
            # fall through to an instant event.
        out.append({
            "name": kind,
            "cat": "pipeline",
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": e.cycle,
            "pid": 0,
            "tid": _track(e.pe),
            "args": args,
        })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": "WaveScalar simulator"},
    }]
    for track in sorted(tracks, key=str):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": track,
            "args": {
                "name": "store buffer" if track == MEMORY_TRACK
                else f"PE {track}"
            },
        })
    return meta + out


def write_chrome_trace(trace, path) -> int:
    """Write ``trace`` as a Chrome trace-event JSON file.

    Returns the number of ``traceEvents`` written (metadata
    included).  The document also records how many events the bounded
    trace dropped, so a truncated export is never mistaken for a
    complete one.
    """
    events = chrome_trace_events(trace.events)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro.obs.chrome",
            "time_unit": "1 trace us == 1 simulated cycle",
            "events_captured": len(trace.events),
            "events_dropped": trace.dropped,
            "limit": trace.limit,
            "drop_policy": getattr(trace, "policy", "drop_newest"),
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.write("\n")
    return len(events)
