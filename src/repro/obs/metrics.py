"""Metrics: counters, gauges, histograms, and sweep aggregation.

Two layers use this module:

* the **cell layer** -- every simulated sweep cell leaves a
  ``metrics`` block on its ledger record (:func:`cell_metrics`),
  carrying the deterministic simulation counters (events, cycles,
  dispatches, messages) plus wall-clock derived series (wall time,
  event throughput);
* the **campaign layer** -- :func:`aggregate_records` folds a loaded
  ledger into one :class:`MetricsRegistry` for ``repro stats``,
  :class:`~repro.harness.sweep.SweepReport`, and the full report.

Determinism contract: everything under
:data:`DETERMINISTIC_CELL_COUNTERS` is a pure function of the cell
spec, so aggregated counts are bit-identical for any ``jobs`` value
and any completion order (asserted by
``tests/harness/test_scheduler.py``).  Wall-clock series are
explicitly excluded from that contract and kept in histograms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

#: Per-cell counters that are pure functions of the cell spec --
#: identical for any scheduler parallelism or completion order.
DETERMINISTIC_CELL_COUNTERS = (
    "events",
    "sim_cycles",
    "dispatches",
    "messages",
)

#: The chaos/recovery counter catalogue (see
#: :mod:`repro.harness.chaos`).  One ``chaos_<point>`` counter per
#: injection point in ``repro.harness.chaos.POINTS`` -- the registry
#: sync is asserted by ``tests/harness/test_chaos.py`` -- plus the
#: recovery-machinery counters.  All ``chaos_``-prefixed names are
#: excluded from invariant comparisons by convention: they describe
#: the disturbance, not the result.
CHAOS_COUNTERS = (
    "chaos_injections_total",
    "chaos_worker_kill",
    "chaos_worker_stall",
    "chaos_poison",
    "chaos_scheduler_kill",
    "chaos_driver_crash",
    "chaos_torn_line",
    "chaos_corrupt_line",
    "chaos_dup_line",
    "chaos_fsync_error",
    "chaos_result_delay",
    "chaos_injections_recorded",  # from ledger records, not hooks
    "ledger_lines_quarantined",
    "ledger_repairs",
    "ledger_compactions",
    "ledger_append_retries",
    "worker_respawns",
    "worker_crash_retries",
    "breaker_trips",
    "cells_poisoned",
)


@dataclass
class Counter:
    """A monotonically increasing integer."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """A point-in-time measurement (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of a value distribution (count/sum/min/max).

    Deliberately bucket-free: the sweep's distributions (cell wall
    time, event throughput) are summarised, not plotted, and a
    four-scalar summary merges exactly under any sharding.
    """

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def render(self) -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} "
            f"min={self.min:.4g} max={self.max:.4g}"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    JSON round-trip (:meth:`to_dict` / :meth:`from_dict`) is what lets
    the ledger persist a ``metrics`` block and ``repro stats`` rebuild
    it; :meth:`merge` is what makes aggregation shard-independent.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    @property
    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def gauges(self) -> dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        for name, value in (data.get("counters") or {}).items():
            reg.counter(name).inc(int(value))
        for name, value in (data.get("gauges") or {}).items():
            reg.gauge(name).set(value)
        for name, h in (data.get("histograms") or {}).items():
            if h.get("count"):
                reg._histograms[name] = Histogram(
                    count=h["count"], total=h["total"],
                    min=h["min"], max=h["max"],
                )
            else:
                reg.histogram(name)
        return reg

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)
        return self

    # -- rendering ------------------------------------------------------
    def render(self, title: Optional[str] = None) -> str:
        lines = [title] if title else []
        for name, value in self.counters.items():
            lines.append(f"  {name:<28}{value:>14,}")
        for name, value in self.gauges.items():
            lines.append(f"  {name:<28}{value:>14.4g}")
        for name, hist in self.histograms.items():
            lines.append(f"  {name:<28}{hist.render()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cell-level metrics (what the ledger persists per record)
# ----------------------------------------------------------------------
def cell_metrics(stats, wall_s: float) -> dict:
    """The ``metrics`` block for one successful cell record.

    ``stats`` is a :class:`~repro.sim.stats.SimStats`; only scalars go
    in (the block must survive a JSON round-trip through the ledger).
    """
    events = getattr(stats, "events_processed", 0)
    return {
        "wall_s": round(wall_s, 6),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "sim_cycles": stats.cycles,
        "dispatches": stats.dispatches,
        "messages": stats.message_count,
    }


def aggregate_records(records: Iterable[dict]) -> MetricsRegistry:
    """Fold ledger records into one registry.

    Accepts the hash-keyed map from :meth:`Ledger.load` (pass
    ``records.values()``) or any iterable of record dicts.  Cells
    without a ``metrics`` block (failed cells, pre-``metrics``
    ledgers) still contribute status and retry counts.
    """
    reg = MetricsRegistry()
    for record in records:
        status = record.get("status", "unknown")
        reg.counter(f"cells_{status}").inc()
        reg.counter("cells_total").inc()
        reg.counter("retries").inc(int(record.get("retries", 0) or 0))
        failure = record.get("failure_class")
        if failure:
            reg.counter(f"failures_{failure}").inc()
        injected = int(record.get("chaos_injected", 0) or 0)
        if injected:
            reg.counter("chaos_injections_recorded").inc(injected)
        metrics = record.get("metrics") or {}
        for key in DETERMINISTIC_CELL_COUNTERS:
            if key in metrics:
                reg.counter(key).inc(int(metrics[key]))
        if "wall_s" in metrics:
            reg.histogram("cell_wall_s").observe(metrics["wall_s"])
        if metrics.get("events_per_s"):
            reg.histogram("cell_events_per_s").observe(
                metrics["events_per_s"]
            )
        for key in ("compile_cache_hits", "compile_cache_misses",
                    "compile_cache_evictions"):
            if key in metrics:
                # Histograms, NOT counters: cache activity attributed
                # to a cell depends on which worker process ran it and
                # in what order, so folding these into the counter set
                # would break the jobs-independence contract that
                # deterministic_counters() asserts.
                reg.histogram(key).observe(metrics[key])
    return reg


def deterministic_counters(reg: MetricsRegistry) -> dict[str, int]:
    """The subset of aggregated counters guaranteed bit-identical for
    any scheduler parallelism: cell statuses, retries, failure
    classes, and the deterministic simulation counters.  Wall-clock
    histograms are excluded by construction."""
    return reg.counters


# ----------------------------------------------------------------------
# Live throughput / ETA
# ----------------------------------------------------------------------
class ThroughputMeter:
    """Cells-per-second with ETA for a running campaign.

    The sweep driver notes every resolved cell (simulated, resumed, or
    rejected); ``rate()`` and ``eta_s()`` answer the two questions a
    user has mid-campaign.  ``total`` is the upper bound of cells the
    campaign may run (lane stop-on-failure can finish earlier, so the
    ETA is conservative).
    """

    def __init__(
        self,
        total: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.done = 0
        self._clock = clock
        self._started = clock()

    def note(self, n: int = 1) -> None:
        self.done += n

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def rate(self) -> float:
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> Optional[float]:
        """Seconds until done at the current rate, or ``None`` before
        the first completion / without a total."""
        if self.total is None or not self.done:
            return None
        remaining = max(0, self.total - self.done)
        rate = self.rate()
        return remaining / rate if rate > 0 else None

    def render(self) -> str:
        text = f"{self.done}"
        if self.total is not None:
            text += f"/{self.total}"
        text += f" cells, {self.rate():.2f} cells/s"
        eta = self.eta_s()
        if eta is not None:
            text += f", ETA {eta:.0f}s"
        return text
