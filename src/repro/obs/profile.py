"""Opt-in per-phase cycle attribution of the engine hot loop.

Attach a :class:`PhaseProfile` to an engine before running::

    engine.profile = PhaseProfile()
    engine.run()
    print(engine.profile.render())

The engine brackets each hot-loop region with :meth:`PhaseProfile.push`
/ :meth:`PhaseProfile.pop`; nested regions attribute *self time* (a
push inside an open region subtracts its span from the parent), so the
reported nanoseconds sum to the loop's wall time without double
counting.  Phases mirror the paper's pipeline stages:

=========  ======================================================
input      token arrival: istore residency, store decoupling
match      matching-table insert / fire decision
dispatch   bandwidth reservation + result steering
execute    ALU/FPU evaluation (:func:`repro.isa.semantics.evaluate`)
deliver    operand routing and token posting
memory     store-buffer submit and completion fan-out
other      ifetch fills, wave retirement bookkeeping
=========  ======================================================

Cost contract: profiling is **opt-in**.  With no profile attached the
engine runs its uninstrumented loop twin and the profiled wrappers are
never installed, so the disabled hot path carries *no* hook code --
``benchmarks/test_simulator_performance.py`` enforces the <2% bound
against an engine with the profiling machinery compiled out entirely.
"""

from __future__ import annotations

from time import perf_counter_ns

#: Phase names in pipeline order (render order).
PHASES = (
    "input",
    "match",
    "dispatch",
    "execute",
    "deliver",
    "memory",
    "other",
)


def phase_of_tag(tag: int) -> str:
    """The pipeline phase charged for one integer calendar tag.

    The engine's calendar carries the integer tags of
    :mod:`repro.sim.events`; this is the human-facing mapping back to
    a :data:`PHASES` name (unknown tags land in ``"other"``, so
    reporting code never raises on a foreign tag).  Imported lazily so
    this module stays loadable without the simulator package.
    """
    from ..sim.events import tag_phase

    return tag_phase(tag)


class PhaseProfile:
    """Self-time attribution over the engine's pipeline phases."""

    __slots__ = ("ns", "calls", "_stack")

    def __init__(self) -> None:
        self.ns: dict[str, int] = {phase: 0 for phase in PHASES}
        self.calls: dict[str, int] = {phase: 0 for phase in PHASES}
        # Open regions: [phase, start_ns, child_ns].
        self._stack: list[list] = []

    # -- recording (hot path) ------------------------------------------
    def push(self, phase: str) -> None:
        self._stack.append([phase, perf_counter_ns(), 0])

    def pop(self) -> None:
        phase, started, child_ns = self._stack.pop()
        span = perf_counter_ns() - started
        self.ns[phase] = self.ns.get(phase, 0) + span - child_ns
        self.calls[phase] = self.calls.get(phase, 0) + 1
        if self._stack:
            self._stack[-1][2] += span

    # -- reading -------------------------------------------------------
    @property
    def total_ns(self) -> int:
        return sum(self.ns.values())

    def fractions(self) -> dict[str, float]:
        total = self.total_ns
        if not total:
            return {phase: 0.0 for phase in self.ns}
        return {phase: ns / total for phase, ns in self.ns.items()}

    def to_dict(self) -> dict:
        return {
            "ns": dict(self.ns),
            "calls": dict(self.calls),
            "total_ns": self.total_ns,
        }

    def render(self) -> str:
        total = self.total_ns
        lines = [
            f"{'phase':<10}{'calls':>12}{'time':>12}{'share':>8}"
        ]
        order = list(PHASES) + sorted(
            set(self.ns) - set(PHASES)
        )
        for phase in order:
            ns = self.ns.get(phase, 0)
            calls = self.calls.get(phase, 0)
            share = ns / total if total else 0.0
            lines.append(
                f"{phase:<10}{calls:>12,}{ns / 1e6:>10.2f}ms"
                f"{share:>8.1%}"
            )
        lines.append(f"{'total':<10}{'':>12}{total / 1e6:>10.2f}ms")
        return "\n".join(lines)
