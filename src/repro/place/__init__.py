"""Instruction placement: binding static instructions to PEs.

Implements the paper's locality-seeking placement (depth-first snake
within a thread's home cluster) and thread isolation across clusters,
plus static quality metrics.
"""

from .metrics import (
    EdgeLocality,
    average_edge_distance,
    classify_edge,
    edge_locality,
)
from .anneal import AnnealResult, anneal_place, placement_cost
from .placement import Placement
from .policies import POLICIES, place_with_policy
from .snake import chunk_size_for, dfs_order, place
from .threads import assign_threads_to_clusters, cluster_loads

__all__ = [
    "EdgeLocality",
    "average_edge_distance",
    "classify_edge",
    "edge_locality",
    "Placement",
    "AnnealResult",
    "anneal_place",
    "placement_cost",
    "POLICIES",
    "place_with_policy",
    "chunk_size_for",
    "dfs_order",
    "place",
    "assign_threads_to_clusters",
    "cluster_loads",
]
