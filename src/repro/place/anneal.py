"""Profile-guided simulated-annealing placement.

The paper's placement cites a dedicated instruction-placement model and
scheduler ([Mercaldi05]; "Instruction scheduling for a tiled
architecture", in submission to PLDI'06).  This module provides an
optimising placer in that spirit: starting from the snake layout,
simulated annealing moves instructions between PEs to minimise a
profiled *static* objective

    cost = sum over edges  weight(edge) * latency(level(src, dst))
         + balance * sum over PEs  (profiled load of the PE)^2

where ``weight`` is the producer's dynamic firing count (measured once
on the functional interpreter), ``latency`` the Table 1 cost of the
interconnect level the edge would use, and the quadratic load term
penalises concentrating hot instructions on one dispatch port.  Thread
isolation is preserved: instructions move only within their thread's
home cluster.

**Measured finding (kept deliberately):** the annealer reliably cuts
the static objective by ~10% but does *not* beat the snake's measured
AIPC on our kernels -- wire-latency-plus-load objectives miss the
pipelining structure the DFS snake gets for free (dependence chains
land on pods in execution order).  The placement-ablation benchmark
records this, a concrete instance of the paper's warning that tiled
architectures need careful, empirically validated tuning.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.config import WaveScalarConfig
from ..isa.graph import DataflowGraph
from .metrics import classify_edge
from .placement import Placement
from .snake import place as snake_place

#: Interconnect-level costs used by the objective (Table 1 latencies).
LEVEL_COST = {"pod": 1.0, "domain": 5.0, "cluster": 9.0, "grid": 12.0}

#: Default weight of the quadratic load-balance term.
BALANCE_WEIGHT = 0.02


@dataclass
class AnnealResult:
    """Outcome of one annealing run."""

    placement: Placement
    initial_cost: float
    final_cost: float
    moves_tried: int
    moves_accepted: int

    @property
    def improvement(self) -> float:
        """Fractional objective reduction vs the snake starting point."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def edge_weights(
    graph: DataflowGraph, firing_counts: dict[int, int] | None
) -> list[tuple[int, int, float]]:
    """(src, dst, weight) for every static edge; weight = producer's
    dynamic firing count (1.0 when no profile is supplied)."""
    edges = []
    for inst in graph.instructions:
        weight = float(
            firing_counts.get(inst.inst_id, 1) if firing_counts else 1
        )
        for dest in inst.all_dests:
            edges.append((inst.inst_id, dest.inst, weight))
    return edges


def placement_cost(
    edges: list[tuple[int, int, float]],
    pe_of: dict[int, int],
    config: WaveScalarConfig,
) -> float:
    """The communication half of the objective (no balance term)."""
    total = 0.0
    for src, dst, weight in edges:
        level = classify_edge(pe_of[src], pe_of[dst], config)
        total += weight * LEVEL_COST[level]
    return total


def anneal_place(
    graph: DataflowGraph,
    config: WaveScalarConfig,
    firing_counts: dict[int, int] | None = None,
    moves: int = 20_000,
    seed: int = 0,
    balance_weight: float = BALANCE_WEIGHT,
    initial_temperature: float | None = None,
) -> AnnealResult:
    """Optimise a placement of ``graph`` onto ``config``.

    ``firing_counts`` comes from
    :attr:`repro.lang.interp.InterpResult.fired_by_inst`; without it the
    objective treats every edge as equally hot (static annealing).
    Deterministic given ``seed``.
    """
    base = snake_place(graph, config)
    pe_of = dict(base.pe_of)
    edges = edge_weights(graph, firing_counts)
    profile = firing_counts or {}

    touching: dict[int, list[tuple[int, int, float]]] = defaultdict(list)
    for edge in edges:
        src, dst, _ = edge
        touching[src].append(edge)
        if dst != src:
            touching[dst].append(edge)

    owner = graph.thread_of_instruction()
    home = base.thread_home
    pes_per_cluster = config.pes_per_cluster
    occupancy: dict[int, int] = defaultdict(int)
    load: dict[int, float] = defaultdict(float)
    for inst_id, pe in pe_of.items():
        occupancy[pe] += 1
        load[pe] += float(profile.get(inst_id, 1))

    def comm_cost(inst_id: int) -> float:
        seen: set[int] = set()
        total = 0.0
        for edge in touching[inst_id]:
            if id(edge) in seen:
                continue
            seen.add(id(edge))
            src, dst, weight = edge
            level = classify_edge(pe_of[src], pe_of[dst], config)
            total += weight * LEVEL_COST[level]
        return total

    initial_cost = placement_cost(edges, pe_of, config)
    if initial_temperature is None:
        initial_temperature = max(1.0, initial_cost / max(1, len(edges)))

    rng = np.random.default_rng(seed)
    inst_ids = [i.inst_id for i in graph.instructions]
    accepted = 0
    for step in range(moves):
        temperature = initial_temperature * (1.0 - step / moves) + 1e-9
        inst_id = inst_ids[int(rng.integers(len(inst_ids)))]
        cluster = home[owner[inst_id]]
        new_pe = cluster * pes_per_cluster + int(
            rng.integers(pes_per_cluster)
        )
        old_pe = pe_of[inst_id]
        if new_pe == old_pe:
            continue
        if occupancy[new_pe] >= config.virtualization:
            continue
        weight = float(profile.get(inst_id, 1))
        before = comm_cost(inst_id) + balance_weight * (
            load[old_pe] ** 2 + load[new_pe] ** 2
        )
        pe_of[inst_id] = new_pe
        after = comm_cost(inst_id) + balance_weight * (
            (load[old_pe] - weight) ** 2 + (load[new_pe] + weight) ** 2
        )
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            load[old_pe] -= weight
            load[new_pe] += weight
            occupancy[old_pe] -= 1
            occupancy[new_pe] += 1
            accepted += 1
        else:
            pe_of[inst_id] = old_pe

    assigned: dict[int, list[int]] = defaultdict(list)
    slot_of: dict[int, int] = {}
    for inst_id in sorted(pe_of):
        pe = pe_of[inst_id]
        slot_of[inst_id] = len(assigned[pe])
        assigned[pe].append(inst_id)

    placement = Placement(
        pe_of=pe_of,
        slot_of=slot_of,
        thread_home=dict(home),
        assigned=dict(assigned),
    )
    return AnnealResult(
        placement=placement,
        initial_cost=initial_cost,
        final_cost=placement_cost(edges, pe_of, config),
        moves_tried=moves,
        moves_accepted=accepted,
    )
