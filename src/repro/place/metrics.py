"""Static placement-quality metrics.

These score a placement *before* simulation by classifying every static
dataflow edge by the interconnect level it would traverse.  The
simulator measures the dynamic equivalent (Figure 8); the static metric
is used by placement tests and by the placement-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import WaveScalarConfig
from ..isa.graph import DataflowGraph
from .placement import Placement

LEVELS = ("pod", "domain", "cluster", "grid")


@dataclass(frozen=True)
class EdgeLocality:
    """Static edge counts by interconnect level."""

    pod: int
    domain: int
    cluster: int
    grid: int

    @property
    def total(self) -> int:
        return self.pod + self.domain + self.cluster + self.grid

    def fraction(self, level: str) -> float:
        if self.total == 0:
            return 0.0
        return getattr(self, level) / self.total

    def within_cluster_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.pod + self.domain + self.cluster) / self.total


def classify_edge(
    pe_a: int, pe_b: int, config: WaveScalarConfig
) -> str:
    """Interconnect level a message from ``pe_a`` to ``pe_b`` uses."""
    if pe_a // 2 == pe_b // 2:
        return "pod"
    if pe_a // config.pes_per_domain == pe_b // config.pes_per_domain:
        return "domain"
    if pe_a // config.pes_per_cluster == pe_b // config.pes_per_cluster:
        return "cluster"
    return "grid"


def edge_locality(
    graph: DataflowGraph, placement: Placement, config: WaveScalarConfig
) -> EdgeLocality:
    """Classify every static dataflow edge by interconnect level."""
    counts = {level: 0 for level in LEVELS}
    for src, dest in graph.edges():
        level = classify_edge(
            placement.pe_of[src], placement.pe_of[dest.inst], config
        )
        counts[level] += 1
    return EdgeLocality(**counts)


def average_edge_distance(
    graph: DataflowGraph, placement: Placement, config: WaveScalarConfig
) -> float:
    """Mean cluster-grid hop distance over all static edges."""
    total = 0
    count = 0
    for src, dest in graph.edges():
        a = placement.pe_of[src] // config.pes_per_cluster
        b = placement.pe_of[dest.inst] // config.pes_per_cluster
        total += config.cluster_distance(a, b)
        count += 1
    return total / count if count else 0.0
