"""Placement result shared between the placer and the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Placement:
    """A binding of static instructions to processing elements.

    Attributes
    ----------
    pe_of:
        instruction id -> global PE index.
    slot_of:
        instruction id -> dense slot within its PE's instruction store
        (the ``I`` of the matching-table hash ``I*k + (w mod k)``).
    thread_home:
        thread id -> cluster index whose store buffer orders that
        thread's memory operations.
    assigned:
        global PE index -> instruction ids, in slot order.
    """

    pe_of: dict[int, int]
    slot_of: dict[int, int]
    thread_home: dict[int, int]
    assigned: dict[int, list[int]] = field(default_factory=dict)

    def occupancy(self) -> dict[int, int]:
        """Instructions per occupied PE."""
        return {pe: len(ids) for pe, ids in self.assigned.items()}

    def max_occupancy(self) -> int:
        return max((len(ids) for ids in self.assigned.values()), default=0)

    def used_pes(self) -> int:
        return sum(1 for ids in self.assigned.values() if ids)
