"""Alternative placement policies.

The paper attributes much of WaveScalar's locality to instruction
placement ("instructions that communicate frequently are placed in
close proximity", Section 1; the placement model of [Mercaldi05]).
These policies quantify that claim by contrast with the default snake
placement:

* ``random`` -- instructions scattered uniformly over the thread's
  home cluster (locality only by luck),
* ``dense``  -- DFS order packed V-at-a-time into as few PEs as
  possible (maximum locality, minimum parallelism),
* ``whole_chip_random`` -- scattered over the entire processor,
  ignoring thread isolation (the anti-placement: maximum inter-cluster
  traffic),
* ``anneal`` -- profile-guided simulated annealing over a static
  wire-cost + load-balance objective (see :mod:`repro.place.anneal`;
  kept as a documented negative result -- it does not beat the snake).

The placement-ablation benchmark measures the AIPC and traffic cost of
each against the snake.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.config import WaveScalarConfig
from ..isa.graph import DataflowGraph
from .placement import Placement
from .snake import dfs_order, place as snake_place
from .threads import assign_threads_to_clusters

POLICIES = ("snake", "dense", "random", "whole_chip_random", "anneal")


def place_with_policy(
    graph: DataflowGraph,
    config: WaveScalarConfig,
    policy: str = "snake",
    seed: int = 0,
) -> Placement:
    """Place ``graph`` using a named policy."""
    if policy == "snake":
        return snake_place(graph, config)
    if policy == "dense":
        return _place_dense(graph, config)
    if policy == "anneal":
        # Profile-guided simulated annealing (see repro.place.anneal);
        # the profile costs one functional-interpreter run.
        from ..lang.interp import interpret
        from .anneal import anneal_place

        profile = interpret(graph).fired_by_inst
        return anneal_place(
            graph, config, firing_counts=profile, seed=seed
        ).placement
    if policy == "random":
        return _place_random(graph, config, seed, isolate_threads=True)
    if policy == "whole_chip_random":
        return _place_random(graph, config, seed, isolate_threads=False)
    raise ValueError(f"unknown placement policy {policy!r}; "
                     f"have {POLICIES}")


def _thread_partition(graph: DataflowGraph):
    owner = graph.thread_of_instruction()
    by_thread: dict[int, list[int]] = defaultdict(list)
    for inst_id, thread in owner.items():
        by_thread[thread].append(inst_id)
    return by_thread


def _build(pe_of: dict[int, int]) -> tuple[dict[int, int],
                                            dict[int, list[int]]]:
    assigned: dict[int, list[int]] = defaultdict(list)
    slot_of: dict[int, int] = {}
    for inst_id in sorted(pe_of):
        pe = pe_of[inst_id]
        slot_of[inst_id] = len(assigned[pe])
        assigned[pe].append(inst_id)
    return slot_of, dict(assigned)


def _place_dense(graph: DataflowGraph,
                 config: WaveScalarConfig) -> Placement:
    """Pack DFS order tightly into as few PEs as possible.

    The pack factor is capped at a quarter of the matching capacity:
    packing a full ``V`` instructions onto one PE starves its matching
    table so badly the machine crawls (exactly the thrashing the
    paper's matching-table equation exists to avoid), which would make
    the ablation unmeasurable rather than just slow.
    """
    pack = max(8, min(config.virtualization,
                      config.matching_entries // 4))
    by_thread = _thread_partition(graph)
    thread_home = assign_threads_to_clusters(
        {t: len(ids) for t, ids in by_thread.items()}, config
    )
    pe_of: dict[int, int] = {}
    next_pe: dict[int, int] = defaultdict(int)
    for thread in sorted(by_thread):
        cluster = thread_home[thread]
        order = dfs_order(graph, sorted(by_thread[thread]))
        base = cluster * config.pes_per_cluster
        start = next_pe[cluster]
        for index, inst_id in enumerate(order):
            pe_local = (start + index // pack) % config.pes_per_cluster
            pe_of[inst_id] = base + pe_local
        used = -(-len(order) // pack)
        next_pe[cluster] = (start + used) % config.pes_per_cluster
    slot_of, assigned = _build(pe_of)
    return Placement(pe_of=pe_of, slot_of=slot_of,
                     thread_home=thread_home, assigned=assigned)


def _place_random(
    graph: DataflowGraph,
    config: WaveScalarConfig,
    seed: int,
    isolate_threads: bool,
) -> Placement:
    rng = np.random.default_rng(seed)
    by_thread = _thread_partition(graph)
    thread_home = assign_threads_to_clusters(
        {t: len(ids) for t, ids in by_thread.items()}, config
    )
    pe_of: dict[int, int] = {}
    for thread in sorted(by_thread):
        ids = sorted(by_thread[thread])
        if isolate_threads:
            base = thread_home[thread] * config.pes_per_cluster
            choices = rng.integers(0, config.pes_per_cluster, len(ids))
            for inst_id, offset in zip(ids, choices):
                pe_of[inst_id] = base + int(offset)
        else:
            choices = rng.integers(0, config.total_pes, len(ids))
            for inst_id, pe in zip(ids, choices):
                pe_of[inst_id] = int(pe)
    slot_of, assigned = _build(pe_of)
    return Placement(pe_of=pe_of, slot_of=slot_of,
                     thread_home=thread_home, assigned=assigned)
