"""Depth-first snake placement.

WaveScalar performance depends critically on placing instructions that
communicate frequently close to each other (Section 1; the placement
model of [Mercaldi05]).  This module implements the placement policy the
paper's results rely on:

1. Order each thread's instructions by a depth-first traversal of its
   dataflow graph, so producer/consumer pairs are adjacent in the order.
2. Cut the order into chunks and lay the chunks out in a *snake* over
   the PEs of the thread's home cluster: consecutive chunks land in the
   same pod, then the same domain, then adjacent domains -- matching the
   machine's latency hierarchy.

The chunk size balances locality against parallelism: it is the
smallest size that lets the thread's code spread over all PEs of its
cluster share, capped by the PE's instruction-store capacity ``V``
(spilling over ``V`` would guarantee instruction-store thrashing for no
locality benefit).
"""

from __future__ import annotations

from collections import defaultdict

from ..core.config import WaveScalarConfig
from ..isa.graph import DataflowGraph
from .placement import Placement
from .threads import assign_threads_to_clusters


def dfs_order(graph: DataflowGraph, instruction_ids: list[int]) -> list[int]:
    """Depth-first order over the dataflow edges, entry-roots first.

    Iterative DFS restricted to ``instruction_ids``; unreachable
    instructions (none, in builder output) are appended at the end so
    the order is always a permutation of the input.
    """
    members = set(instruction_ids)
    successors: dict[int, list[int]] = defaultdict(list)
    indegree: dict[int, int] = {i: 0 for i in instruction_ids}
    for inst_id in instruction_ids:
        for dest in graph[inst_id].all_dests:
            if dest.inst in members:
                successors[inst_id].append(dest.inst)
                indegree[dest.inst] += 1

    roots = [i for i in instruction_ids if indegree[i] == 0]
    entry_insts = {t.inst for t in graph.entry_tokens}
    roots.sort(key=lambda i: (i not in entry_insts, i))
    if not roots:  # fully cyclic region (a loop); start at the minimum id
        roots = [min(instruction_ids)]

    order: list[int] = []
    seen: set[int] = set()
    for root in roots:
        if root in seen:
            continue
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            order.append(node)
            # Reversed so the first successor is visited next (true DFS).
            for succ in reversed(successors[node]):
                if succ not in seen:
                    stack.append(succ)
    for inst_id in instruction_ids:
        if inst_id not in seen:
            seen.add(inst_id)
            order.append(inst_id)
    return order


#: Smallest chunk the snake will place on one PE.  Placement sweeps
#: (see benchmarks/test_placement_ablation.py) show locality pays:
#: spreading a small program one instruction per PE loses ~13% AIPC to
#: operand latency, while chunks of ~16 keep producer/consumer pairs on
#: a pod without starving the matching table.
MIN_CHUNK = 16


def chunk_size_for(
    thread_size: int, pes_available: int, virtualization: int,
    min_chunk: int = MIN_CHUNK,
) -> int:
    """Chunk size balancing locality (big chunks) vs parallelism
    (spreading over all available PEs)."""
    if thread_size <= 0:
        return 1
    spread = -(-thread_size // pes_available)  # ceil division
    return min(virtualization, max(min_chunk, spread))


def place(graph: DataflowGraph, config: WaveScalarConfig) -> Placement:
    """Compute a placement of ``graph`` onto ``config``'s PEs."""
    owner = graph.thread_of_instruction()
    by_thread: dict[int, list[int]] = defaultdict(list)
    for inst_id, thread in owner.items():
        by_thread[thread].append(inst_id)

    thread_home = assign_threads_to_clusters(
        {t: len(ids) for t, ids in by_thread.items()}, config
    )

    pe_of: dict[int, int] = {}
    slot_of: dict[int, int] = {}
    assigned: dict[int, list[int]] = defaultdict(list)
    pes_per_cluster = config.pes_per_cluster
    # Rotating fill pointer per cluster so multiple threads sharing a
    # cluster occupy disjoint PEs where possible.
    fill_pointer: dict[int, int] = defaultdict(int)

    for thread in sorted(by_thread):
        ids = by_thread[thread]
        order = dfs_order(graph, sorted(ids))
        cluster = thread_home[thread]
        chunk = chunk_size_for(
            len(order), pes_per_cluster, config.virtualization
        )
        base_pe = cluster * pes_per_cluster
        start = fill_pointer[cluster]
        for index, inst_id in enumerate(order):
            pe_local = (start + index // chunk) % pes_per_cluster
            pe = base_pe + pe_local
            pe_of[inst_id] = pe
            slot_of[inst_id] = len(assigned[pe])
            assigned[pe].append(inst_id)
        fill_pointer[cluster] = (
            start + -(-len(order) // chunk)
        ) % pes_per_cluster

    return Placement(
        pe_of=pe_of,
        slot_of=slot_of,
        thread_home=thread_home,
        assigned=dict(assigned),
    )
