"""Thread-to-cluster assignment.

The paper attributes WaveScalar's communication locality partly to "the
WaveScalar instruction placement algorithms [which] isolate individual
Splash threads into different portions of the die" (Section 4.3).  This
module implements that isolation: each thread is given a home cluster,
balancing load (instruction count) across clusters, with the master
thread pinned to cluster 0.
"""

from __future__ import annotations

from ..core.config import WaveScalarConfig


def assign_threads_to_clusters(
    thread_sizes: dict[int, int], config: WaveScalarConfig
) -> dict[int, int]:
    """Map each thread to a home cluster.

    Greedy balanced assignment: threads are placed largest-first onto
    the currently least-loaded cluster.  Thread 0 (the master) always
    lives in cluster 0 so program entry tokens start there.
    """
    load = [0] * config.clusters
    home: dict[int, int] = {}

    if 0 in thread_sizes:
        home[0] = 0
        load[0] += thread_sizes[0]

    rest = sorted(
        (t for t in thread_sizes if t != 0),
        key=lambda t: (-thread_sizes[t], t),
    )
    for thread in rest:
        cluster = min(range(config.clusters), key=lambda c: (load[c], c))
        home[thread] = cluster
        load[cluster] += thread_sizes[thread]
    return home


def cluster_loads(
    thread_sizes: dict[int, int], home: dict[int, int], clusters: int
) -> list[int]:
    """Instruction count per cluster under an assignment (diagnostics)."""
    load = [0] * clusters
    for thread, size in thread_sizes.items():
        load[home[thread]] += size
    return load
