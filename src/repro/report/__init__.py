"""Text-mode renderings of the paper's figures (scatter plots,
traffic bars, comparison tables)."""

from .fullreport import generate_report
from .plots import comparison_table, scatter, stacked_bar, traffic_chart

__all__ = [
    "comparison_table",
    "generate_report",
    "scatter",
    "stacked_bar",
    "traffic_chart",
]
