"""One-shot markdown reproduction report.

``generate_report()`` re-runs a compact slice of every experiment
family (area model, workload characterisation, a subsampled Pareto
sweep, a traffic profile) and renders a single self-contained markdown
document -- the quickest way for a new user to see the reproduction
working end to end without running the full benchmark harness.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Optional

from ..area import chip_area, estimate_constants
from ..area import model as area_model
from ..core import WaveScalarConfig
from ..core.experiments import evaluate_design_space, traffic_profile
from ..design import pareto_front, viable_designs
from ..workloads import (
    SPLASH_NAMES,
    WORKLOADS,
    Scale,
    characterization_table,
    get,
    profile_workload,
)
from .plots import scatter, traffic_chart


def _area_section() -> str:
    est = estimate_constants()
    rows = [
        ("matching/entry", area_model.MATCHING_MM2_PER_ENTRY,
         est.matching_mm2_per_entry),
        ("istore/instruction", area_model.ISTORE_MM2_PER_INSTRUCTION,
         est.istore_mm2_per_instruction),
        ("L1 per KB", area_model.L1_MM2_PER_KB, est.l1_mm2_per_kb),
        ("L2 per MB", area_model.L2_MM2_PER_MB, est.l2_mm2_per_mb),
    ]
    lines = ["## Area model", "",
             "| constant | paper (mm²) | estimated | ratio |",
             "|---|---|---|---|"]
    for name, paper, estimated in rows:
        lines.append(
            f"| {name} | {paper:.4f} | {estimated:.4f} | "
            f"{estimated / paper:.2f} |"
        )
    big = WaveScalarConfig(clusters=16, virtualization=64,
                           matching_entries=64, l1_kb=8, l2_mb=1)
    lines.append("")
    lines.append(
        f"Table 5 row 18 cross-check: paper 399 mm², model "
        f"{chip_area(big):.0f} mm²."
    )
    return "\n".join(lines)


def _workload_section(scale: Scale) -> str:
    profiles = [
        profile_workload(get(name), scale,
                         threads=4 if get(name).multithreaded else None)
        for name in sorted(WORKLOADS)
    ]
    return "\n".join([
        "## Workload characterisation", "",
        "```", characterization_table(profiles), "```",
    ])


def _pareto_section(scale: Scale, sample: int) -> str:
    designs = viable_designs()[::sample]
    points = evaluate_design_space(designs, SPLASH_NAMES, scale,
                                   threaded=True)
    front = pareto_front(points)
    lines = [
        "## Splash2 Pareto sweep (subsampled)", "",
        f"{len(points)} designs evaluated; {len(front)} Pareto optimal.",
        "",
        "```", scatter(points, title=f"Splash2 @ {scale.value}"), "```",
        "",
        "Frontier:",
    ]
    for p in front:
        lines.append(
            f"* {p.area:.0f} mm² -> {p.performance:.2f} AIPC ({p.label})"
        )
    return "\n".join(lines)


def _traffic_section(scale: Scale) -> str:
    config = WaveScalarConfig(clusters=4, virtualization=64,
                              matching_entries=64, l2_mb=1)
    profile = traffic_profile(config, SPLASH_NAMES, scale, threaded=True)
    chart = traffic_chart({"Splash2 (4 clusters)": profile})
    within = profile["pod"] + profile["domain"] + profile["cluster"]
    return "\n".join([
        "## Traffic locality (Figure 8)", "",
        "```", chart, "```", "",
        f"{within:.1%} of messages stay within a cluster "
        f"(paper: >98% for multithreaded code); operands are "
        f"{profile['operand']:.0%} of messages (paper ~80%).",
    ])


def _observability_section(ledger_path) -> str:
    """Campaign metrics aggregated from a sweep ledger (the same
    numbers ``repro stats`` prints, in markdown)."""
    from ..harness.ledger import Ledger, summarize
    from ..obs.metrics import aggregate_records

    ledger = Ledger(ledger_path)
    records = ledger.load()
    lines = ["## Campaign observability", ""]
    if not records:
        lines.append(f"No records in `{ledger_path}`.")
        return "\n".join(lines)
    statuses = summarize(records, ledger.torn_lines,
                         ledger.corrupt_lines)
    registry = aggregate_records(records.values())
    counters = registry.counters
    lines.append(
        f"`{ledger_path}`: {len(records)} cells "
        f"({', '.join(f'{v} {k}' for k, v in sorted(statuses.items()))})."
    )
    audit = ledger.verify()
    integrity = f"Ledger integrity: {audit.summary()}."
    if not audit.clean:
        integrity += (
            f" Run `repro ledger repair {ledger_path}` to quarantine "
            f"the bad lines."
        )
    lines += ["", integrity]
    lines += ["", "| metric | value |", "|---|---|"]
    for name, value in counters.items():
        lines.append(f"| {name} | {value:,} |")
    for name, hist in registry.histograms.items():
        lines.append(f"| {name} | {hist.render()} |")
    return "\n".join(lines)


def generate_report(
    scale: Scale = Scale.TINY,
    sample: int = 8,
    timestamp: Optional[str] = None,
    ledger_path=None,
) -> str:
    """Build the full markdown report (pure string; caller writes it).

    ``ledger_path`` optionally appends a campaign-observability
    section aggregated from an existing sweep ledger.
    """
    # selflint: allow(D001) report byline; tests pin `timestamp`
    stamp = timestamp or datetime.now(timezone.utc).strftime(
        "%Y-%m-%d %H:%M UTC"
    )
    header = "\n".join([
        "# WaveScalar reproduction — quick report",
        "",
        f"Generated {stamp}; workload scale `{scale.value}`, design "
        f"subsample 1/{sample}.  Full regeneration: "
        "`pytest benchmarks/ --benchmark-only`.",
    ])
    sections = [
        header,
        _area_section(),
        _workload_section(scale),
        _pareto_section(scale, sample),
        _traffic_section(scale),
    ]
    if ledger_path:
        sections.append(_observability_section(ledger_path))
    return "\n\n".join(sections) + "\n"
