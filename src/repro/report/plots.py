"""Text-mode visualisations of the paper's figures.

Everything in this reproduction runs in terminals and CI logs, so the
figures render as ASCII: a scatter plot for the Pareto analyses
(Figures 6-7) and stacked bars for the traffic distribution
(Figure 8).  The benchmarks embed these renderings in their result
artifacts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..design.pareto import ParetoPoint, pareto_front


def scatter(
    points: Sequence[ParetoPoint],
    width: int = 68,
    height: int = 18,
    title: str = "",
) -> str:
    """An area-vs-performance scatter with the Pareto front marked.

    ``*`` marks Pareto-optimal points, ``.`` the dominated ones; axes
    are linear, labelled with their ranges.
    """
    if not points:
        return "(no points)"
    xs = [p.area for p in points]
    ys = [p.performance for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    x_span = (x1 - x0) or 1.0
    y_span = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    front = {id(p) for p in pareto_front(points)}

    def cell(p: ParetoPoint) -> tuple[int, int]:
        col = round((p.area - x0) / x_span * (width - 1))
        row = round((p.performance - y0) / y_span * (height - 1))
        return (height - 1 - row), col

    # Dominated points first so front markers overwrite them.
    for p in sorted(points, key=lambda p: id(p) in front):
        r, c = cell(p)
        grid[r][c] = "*" if id(p) in front else "."

    lines = []
    if title:
        lines.append(title)
    lines.append(f"AIPC {y1:.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + "|" + "".join(row) + "|")
    lines.append(f"AIPC {y0:.2f} +" + "-" * width + "+")
    lines.append(
        " " * 11 + f"{x0:<10.0f}" + f"area (mm^2)".center(width - 20)
        + f"{x1:>10.0f}"
    )
    lines.append(" " * 11 + "* Pareto optimal   . dominated")
    return "\n".join(lines)


def stacked_bar(
    fractions: Mapping[str, float],
    order: Sequence[str],
    width: int = 60,
    glyphs: Mapping[str, str] | None = None,
) -> str:
    """One horizontal stacked bar (a Figure 8 row)."""
    glyphs = glyphs or {}
    default_glyphs = "#=+-:~"
    bar = []
    for index, key in enumerate(order):
        frac = max(0.0, fractions.get(key, 0.0))
        glyph = glyphs.get(key, default_glyphs[index % len(default_glyphs)])
        bar.append(glyph * round(frac * width))
    text = "".join(bar)[:width]
    return text.ljust(width, " ")


def traffic_chart(
    profiles: Mapping[str, Mapping[str, float]],
    width: int = 56,
) -> str:
    """Figure 8: one stacked bar per workload group.

    Levels are drawn innermost-first, so locality reads left to right:
    ``#`` pod, ``=`` domain, ``+`` cluster, ``!`` inter-cluster.
    """
    order = ("pod", "domain", "cluster", "grid")
    glyphs = {"pod": "#", "domain": "=", "cluster": "+", "grid": "!"}
    label_width = max(len(name) for name in profiles) + 2
    lines = [
        " " * label_width
        + "# pod   = domain   + cluster   ! inter-cluster"
    ]
    for name, profile in profiles.items():
        bar = stacked_bar(profile, order, width, glyphs)
        grid_pct = profile.get("grid", 0.0)
        lines.append(
            f"{name:<{label_width}}|{bar}| grid {grid_pct:.1%}"
        )
    return "\n".join(lines)


def comparison_table(
    rows: Sequence[tuple[str, float, float]],
    headers: tuple[str, str, str] = ("metric", "paper", "measured"),
) -> str:
    """Paper-vs-measured table used by EXPERIMENTS.md tooling."""
    name_w = max(len(headers[0]), *(len(r[0]) for r in rows)) + 2
    lines = [
        f"{headers[0]:<{name_w}}{headers[1]:>12}{headers[2]:>12}{'ratio':>9}"
    ]
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        lines.append(
            f"{name:<{name_w}}{paper:>12.3g}{measured:>12.3g}{ratio:>9.2f}"
        )
    return "\n".join(lines)
