"""Cycle-level simulator of the WaveScalar processor.

Entry point::

    from repro.sim import simulate
    stats = simulate(graph, config)

Abnormal stops raise the failure taxonomy of :mod:`repro.sim.failures`
(:class:`TrueDeadlock`, :class:`CycleBudgetExhausted`,
:class:`EventBudgetExhausted`), all subclasses of the historical
:class:`SimulationDeadlock`.
"""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    UnknownBackendError,
    batch_unsupported_reason,
    batched_available,
    validate_backend,
)
from .engine import Engine, simulate
from .failures import (
    FAILURE_CLASSES,
    CycleBudgetExhausted,
    EventBudgetExhausted,
    FailureDiagnostics,
    SimulationDeadlock,
    SimulationFailure,
    TrueDeadlock,
    WatchdogTimeout,
    WorkerCrash,
    classify,
    is_transient,
)
from .stats import KINDS, LEVELS, SimStats
from .trace import Trace, TraceEvent

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "UnknownBackendError",
    "batch_unsupported_reason",
    "batched_available",
    "validate_backend",
    "Engine",
    "Trace",
    "TraceEvent",
    "SimulationDeadlock",
    "SimulationFailure",
    "TrueDeadlock",
    "CycleBudgetExhausted",
    "EventBudgetExhausted",
    "WatchdogTimeout",
    "WorkerCrash",
    "FailureDiagnostics",
    "FAILURE_CLASSES",
    "classify",
    "is_transient",
    "simulate",
    "KINDS",
    "LEVELS",
    "SimStats",
]
