"""Cycle-level simulator of the WaveScalar processor.

Entry point::

    from repro.sim import simulate
    stats = simulate(graph, config)
"""

from .engine import Engine, SimulationDeadlock, simulate
from .trace import Trace, TraceEvent
from .stats import KINDS, LEVELS, SimStats

__all__ = [
    "Engine",
    "Trace",
    "TraceEvent",
    "SimulationDeadlock",
    "simulate",
    "KINDS",
    "LEVELS",
    "SimStats",
]
