"""Frozen pre-overhaul simulator snapshot (regression oracle).

``repro.sim._legacy`` preserves the engine, matching table, and
instruction store exactly as they behaved before the hot-path
overhaul.  The golden-stats test suite proves the production engine
bit-identical to this snapshot; the engine benchmark measures the
speedup against it.  Never import this package from production code.
"""

from .engine import Engine, simulate
from .istore import InstructionStore
from .matching import MatchingTable

__all__ = ["Engine", "simulate", "InstructionStore", "MatchingTable"]
