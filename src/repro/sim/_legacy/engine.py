"""Frozen pre-overhaul reference engine (regression oracle).

This is a verbatim snapshot of the engine as it stood before the
hot-path overhaul (compiled workloads, integer-tag dispatch,
matching-table fast paths).  It exists for exactly two consumers:

* ``tests/sim/test_golden_stats.py`` asserts the production engine's
  ``SimStats``/AIPC are bit-identical to this reference across the
  full workload suite (the determinism guarantee of the overhaul);
* ``benchmarks/test_simulator_performance.py`` measures the
  events-per-second speedup of the production engine against it.

Do not optimise or "fix" this module; it shares the unchanged
memory/network/store-buffer models with the production engine and
must keep producing the historical results.  The original docstring
follows.

The cycle-level simulation engine.

Executes a :class:`~repro.isa.DataflowGraph` on a configured WaveScalar
processor: PEs with banked matching tables and instruction stores,
pods/domains/clusters, the hierarchical interconnect, wave-ordered
store buffers, and the coherent cache hierarchy.

The engine is event-driven with exact bandwidth accounting: every
serialised resource (dispatch ports, result buses, NET pseudo-PEs,
mesh links, L1 ports, FPUs) is a reservation ledger, so work is
proportional to tokens in flight rather than cycles times PEs -- the
idle tiles of a 512-PE configuration cost nothing.  All latencies and
bandwidths come from :class:`~repro.core.config.WaveScalarConfig`
(paper Table 1).

Architectural results (OUTPUT values, final memory) are bit-identical
to the reference interpreter; the integration suite asserts this for
every workload.
"""

from __future__ import annotations

import heapq
import time
from typing import Optional

from ...core.config import WaveScalarConfig
from ...isa.graph import DataflowGraph
from ...isa.opcodes import Opcode
from ...isa.semantics import evaluate, steer_taken
from ...isa.token import Value
from ...place.placement import Placement
from ..failures import (
    CycleBudgetExhausted,
    EventBudgetExhausted,
    FailureDiagnostics,
    SimulationDeadlock,
    TrueDeadlock,
)
from ..memory.hierarchy import MemoryHierarchy
from ..network.topology import BandwidthLedger, Interconnect
from .istore import InstructionStore
from .matching import MatchingTable
from ..stats import SimStats
from ..storebuffer.storebuffer import MemOp, StoreBuffer

#: Event-calendar tag -> profile phase (repro.obs.profile.PHASES).
#: The finer stages (match, execute, deliver) are attributed by inner
#: hooks inside the handlers; stack-based self-time accounting in
#: PhaseProfile keeps the phases disjoint.
_TAG_PHASE = {
    "token": "input",
    "dispatch": "dispatch",
    "sbaddr": "memory",
    "sbdata": "memory",
    "ifetch": "other",
    "retire": "other",
}

__all__ = [
    "Engine",
    "SimulationDeadlock",
    "TrueDeadlock",
    "CycleBudgetExhausted",
    "EventBudgetExhausted",
    "FailureDiagnostics",
    "simulate",
]


class Engine:
    """One simulation run; construct and call :meth:`run`."""

    #: ALU/FPU evaluation, indirected so :meth:`_install_profile_hooks`
    #: can shadow it per instance with an "execute"-phase wrapper.
    _evaluate = staticmethod(evaluate)

    def __init__(
        self,
        graph: DataflowGraph,
        config: WaveScalarConfig,
        placement: Placement,
        max_cycles: int = 20_000_000,
        warm_caches: bool = True,
        max_events: int = 200_000_000,
    ) -> None:
        """``warm_caches`` pre-loads the program's initial data image
        into the L2 (when one exists), modelling the steady state the
        paper measures over long runs -- cold DRAM misses then occur
        only on configurations without an L2, reproducing the paper's
        large L2 effect (Table 5, configurations 1 vs 4).

        ``max_cycles`` bounds simulated time; ``max_events`` bounds
        *wall* time -- thrashing configurations generate many retry
        events per simulated cycle, so a cycle budget alone can take
        minutes to trip.  Exceeding either raises
        :class:`SimulationDeadlock`."""
        self.graph = graph
        self.config = config
        self.placement = placement
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.stats = SimStats()
        self.network = Interconnect(config, self.stats)
        self.memory = MemoryHierarchy(
            config, self.network, self.stats, graph.initial_memory
        )
        if warm_caches and self.memory.l2 is not None:
            from ..memory.hierarchy import SHARED

            for word in graph.initial_memory:
                self.memory.l2.insert(self.memory.line_of(word), SHARED)
        self.storebuffers = [
            StoreBuffer(
                cluster=c,
                config=config,
                graph=graph,
                memory=self.memory,
                stats=self.stats,
                complete_callback=self._memory_complete,
                retire_callback=self._wave_retired,
            )
            for c in range(config.clusters)
        ]

        n_pes = config.total_pes
        assigned = placement.assigned
        self.matching = [
            MatchingTable(
                config.matching_entries,
                config.matching_associativity,
                config.matching_banks,
                config.matching_hash_k,
            )
            for _ in range(n_pes)
        ]
        self.istores = [
            InstructionStore(config.virtualization, assigned.get(pe, []))
            for pe in range(n_pes)
        ]
        self._dispatch = [BandwidthLedger(1) for _ in range(n_pes)]
        n_domains = config.clusters * config.domains_per_cluster
        self._fpu = [BandwidthLedger(1) for _ in range(n_domains)]

        # Decoded-instruction arrays: the per-firing hot path reads
        # these flat lists instead of chasing Instruction/Opcode
        # attribute chains (the hardware analogue is the decoded
        # instruction store).
        self._d_arity = [inst.arity for inst in graph.instructions]
        self._d_opcode = [inst.opcode for inst in graph.instructions]
        self._d_slot = [
            placement.slot_of.get(inst.inst_id, 0)
            for inst in graph.instructions
        ]
        self._d_is_store = [
            inst.opcode is Opcode.STORE for inst in graph.instructions
        ]

        # Event calendar: (cycle, seq, handler_tag, payload).
        self._events: list = []
        self._seq = 0
        self._horizon = 0  # latest activity time seen

        # k-loop bounding state.
        self._retired: dict[int, int] = {}  # thread -> waves retired
        self._kbound_stalls: dict[int, list] = {}

        # Instruction fetches in flight: tokens for a non-resident
        # instruction queue here until the fetch completes (rather than
        # retrying blindly, which can livelock under heavy
        # over-subscription).
        self._ifetch: dict[tuple[int, int], list] = {}

        #: Optional execution trace (repro.sim.trace.Trace); attach
        #: before run().  None keeps the hot path branch-cheap.
        self.trace = None

        #: Optional hot-loop profiler (repro.obs.profile.PhaseProfile);
        #: attach before run() for per-phase cycle attribution
        #: (input/match/dispatch/execute/deliver/memory).  None runs
        #: the uninstrumented loop twin (_run_plain) with the profiled
        #: wrappers never installed, so the disabled path carries no
        #: hook code at all (benchmark-enforced <2% overhead).
        self.profile = None
        self._prof = None

        #: Optional fault-injection plan (repro.harness.faults
        #: .FaultPlan, duck-typed so the simulator stays free of
        #: harness imports); attach before run().  None keeps the hot
        #: path branch-cheap.
        self.faults = None

        #: Optional runtime sanitizer (repro.analysis.sanitize
        #: .RuntimeSanitizer, duck-typed like trace/faults); attach
        #: before run().  When set, the engine reports token
        #: creation/consumption and structure occupancy through its
        #: hooks and hands it the drained machine for a final audit.
        self.sanitizer = None
        self._fault_deliveries = 0
        self._events_processed = 0

    # ==================================================================
    # Event plumbing
    # ==================================================================
    def _post(self, cycle: int, tag: str, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._events, (cycle, self._seq, tag, payload))

    def _note_time(self, cycle: int) -> None:
        if cycle > self._horizon:
            self._horizon = cycle

    # ==================================================================
    # Main loop
    # ==================================================================
    def run(self, strict: bool = True) -> SimStats:
        faults = self.faults
        fault_sleep = 0.0
        if faults is not None:
            # Budget starvation: a fault plan may clamp the budgets to
            # force the exhaustion paths deterministically.
            if faults.max_cycles is not None:
                self.max_cycles = faults.max_cycles
            if faults.max_events is not None:
                self.max_events = faults.max_events
            fault_sleep = faults.wall_sleep_per_event_s
        for token in self.graph.entry_tokens:
            pe = self.placement.pe_of[token.inst]
            self._post(
                0, "token",
                (pe, token.thread, token.wave, token.inst, token.port,
                 token.value, False),
            )
        if self.sanitizer is not None:
            self.sanitizer.note_entry(len(self.graph.entry_tokens))
        events = self._events
        max_events = self.max_events
        prof = self._prof = self.profile
        if prof is None:
            processed = self._run_plain(events, max_events, fault_sleep)
        else:
            self._install_profile_hooks(prof)
            try:
                processed = self._run_profiled(
                    events, max_events, fault_sleep, prof
                )
            finally:
                self._uninstall_profile_hooks()

        self.stats.cycles = self._horizon
        self._events_processed = processed
        self.stats.events_processed = processed
        if self.sanitizer is not None:
            self.sanitizer.finalize(self)
        if strict:
            self._check_quiescent()
        return self.stats

    def _budget_stop(self, processed: int) -> FailureDiagnostics:
        """Final accounting on a budget-exhaustion raise path."""
        self._events_processed = processed
        self.stats.events_processed = processed
        return self.failure_diagnostics()

    def _run_plain(self, events, max_events: int,
                   fault_sleep: float) -> int:
        """The hot loop with zero instrumentation code.

        :meth:`_run_profiled` is its twin with phase attribution; the
        two must stay semantically identical --
        ``tests/obs/test_profile.py`` asserts their ASTs match once
        the profiling statements are stripped.
        """
        max_cycles = self.max_cycles
        processed = 0
        while events:
            cycle, _, tag, payload = heapq.heappop(events)
            if cycle > max_cycles:
                raise CycleBudgetExhausted(
                    f"{self.graph.name}: exceeded {max_cycles} cycles",
                    self._budget_stop(processed),
                )
            processed += 1
            if processed > max_events:
                raise EventBudgetExhausted(
                    f"{self.graph.name}: exceeded {max_events} events at "
                    f"cycle {cycle} (thrashing)",
                    self._budget_stop(processed),
                )
            if fault_sleep:
                time.sleep(fault_sleep)
            self._note_time(cycle)
            if tag == "token":
                self._on_token(cycle, *payload)
            elif tag == "dispatch":
                self._on_dispatch(cycle, *payload)
            elif tag == "sbaddr":
                sb, inst_id, thread, wave, value = payload
                sb.submit_address(inst_id, thread, wave, value, cycle)
            elif tag == "sbdata":
                sb, inst_id, thread, wave, value = payload
                sb.submit_data(inst_id, thread, wave, value, cycle)
            elif tag == "ifetch":
                self._on_ifetch(cycle, *payload)
            elif tag == "retire":
                self._on_retire(cycle, *payload)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event {tag}")
        return processed

    def _run_profiled(self, events, max_events: int, fault_sleep: float,
                      prof) -> int:
        """:meth:`_run_plain` with per-event phase attribution (the
        finer match/execute/deliver spans come from the wrappers that
        :meth:`_install_profile_hooks` shadowed in)."""
        max_cycles = self.max_cycles
        processed = 0
        while events:
            cycle, _, tag, payload = heapq.heappop(events)
            if cycle > max_cycles:
                raise CycleBudgetExhausted(
                    f"{self.graph.name}: exceeded {max_cycles} cycles",
                    self._budget_stop(processed),
                )
            processed += 1
            if processed > max_events:
                raise EventBudgetExhausted(
                    f"{self.graph.name}: exceeded {max_events} events at "
                    f"cycle {cycle} (thrashing)",
                    self._budget_stop(processed),
                )
            if fault_sleep:
                time.sleep(fault_sleep)
            self._note_time(cycle)
            prof.push(_TAG_PHASE.get(tag, "other"))
            if tag == "token":
                self._on_token(cycle, *payload)
            elif tag == "dispatch":
                self._on_dispatch(cycle, *payload)
            elif tag == "sbaddr":
                sb, inst_id, thread, wave, value = payload
                sb.submit_address(inst_id, thread, wave, value, cycle)
            elif tag == "sbdata":
                sb, inst_id, thread, wave, value = payload
                sb.submit_data(inst_id, thread, wave, value, cycle)
            elif tag == "ifetch":
                self._on_ifetch(cycle, *payload)
            elif tag == "retire":
                self._on_retire(cycle, *payload)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event {tag}")
            prof.pop()
        return processed

    def _install_profile_hooks(self, prof) -> None:
        """Shadow the hot-path callees with profiled wrappers.

        The shadows are *instance* attributes (and, for the matching
        tables, per-table attributes), so with profiling off the
        handlers run the original methods with no hook code at all --
        the <2% overhead contract of :mod:`repro.obs.profile` holds by
        construction.
        """
        deliver = self._deliver

        def profiled_deliver(*args, **kwargs):
            prof.push("deliver")
            try:
                deliver(*args, **kwargs)
            finally:
                prof.pop()

        self._deliver = profiled_deliver

        def profiled_evaluate(opcode, operands, immediate):
            prof.push("execute")
            try:
                return evaluate(opcode, operands, immediate)
            finally:
                prof.pop()

        self._evaluate = profiled_evaluate

        for table in self.matching:
            def profiled_insert(*args, _insert=table.insert, **kwargs):
                prof.push("match")
                try:
                    return _insert(*args, **kwargs)
                finally:
                    prof.pop()

            table.insert = profiled_insert

    def _uninstall_profile_hooks(self) -> None:
        self.__dict__.pop("_deliver", None)
        self.__dict__.pop("_evaluate", None)
        for table in self.matching:
            table.__dict__.pop("insert", None)

    def failure_diagnostics(self) -> FailureDiagnostics:
        """A structured snapshot of buffered work, attached to every
        engine-raised failure (and cheap enough to call ad hoc)."""
        matching_rows = sum(
            len(table.pending_rows()) for table in self.matching
        )
        ifetch_queued = sum(len(q) for q in self._ifetch.values())
        kbound = sum(len(s) for s in self._kbound_stalls.values())
        return FailureDiagnostics(
            cycles=self._horizon,
            events_processed=self._events_processed,
            events_pending=len(self._events),
            tokens_in_flight=matching_rows + ifetch_queued,
            queue_depths={
                "matching_rows": matching_rows,
                "ifetch_queued": ifetch_queued,
                "kbound_stalls": kbound,
                "event_calendar": len(self._events),
            },
            max_cycles=self.max_cycles,
            max_events=self.max_events,
        )

    def _check_quiescent(self) -> None:
        problems = []
        for pe, table in enumerate(self.matching):
            rows = table.pending_rows()
            if rows:
                sample = ", ".join(
                    f"{r.key}(ports {sorted(r.ports)})" for r in rows[:4]
                )
                problems.append(f"  pe{pe}: {len(rows)} partial rows: "
                                f"{sample}")
        for sb in self.storebuffers:
            report = sb.stuck_report()
            if report:
                problems.append(report)
        for thread, stalls in self._kbound_stalls.items():
            if stalls:
                problems.append(
                    f"  thread {thread}: {len(stalls)} k-bound stalled "
                    "wave advances"
                )
        if problems:
            raise TrueDeadlock(
                f"{self.graph.name}: deadlocked with buffered work:\n"
                + "\n".join(problems[:12]),
                self.failure_diagnostics(),
            )

    # ==================================================================
    # Token arrival (INPUT + MATCH stages)
    # ==================================================================
    def _on_token(
        self,
        cycle: int,
        pe: int,
        thread: int,
        wave: int,
        inst_id: int,
        port: int,
        value: Value,
        local: bool,
    ) -> None:
        # Instruction-store residency check (re-binding on demand).
        istore = self.istores[pe]
        if istore.over_subscribed:
            if not istore.hit(inst_id):
                key = (pe, inst_id)
                queue = self._ifetch.get(key)
                payload = (pe, thread, wave, inst_id, port, value, local)
                if queue is None:
                    # Start the fetch; tokens park until it completes.
                    self._ifetch[key] = [payload]
                    self.stats.istore_misses += 1
                    self._post(
                        cycle + self.config.istore_miss_penalty,
                        "ifetch", key,
                    )
                else:
                    queue.append(payload)
                return
            self.stats.istore_hits += 1

        # Store decoupling: STORE operands go straight to DISPATCH, one
        # message each, no matching rendezvous (Section 3.3.1).
        if self._d_is_store[inst_id]:
            delay = 0 if (local and self.config.speculative_fire) \
                else self.config.match_to_dispatch_delay
            self._post(
                cycle + delay, "dispatch",
                (pe, thread, wave, inst_id, (port, value)),
            )
            return

        table = self.matching[pe]
        result = table.insert(
            (thread, wave, inst_id), port, value,
            self._d_slot[inst_id], self._d_arity[inst_id], cycle
        )
        if not result.accepted:
            # Bank conflict: the sender retries next cycle.
            self.stats.input_rejects += 1
            if self.trace is not None:
                self.trace.emit(cycle, "reject", pe, inst_id, thread, wave)
            self._post(
                cycle + 1, "token",
                (pe, thread, wave, inst_id, port, value, local),
            )
            return

        if self.trace is not None:
            self.trace.emit(cycle, "input", pe, inst_id, thread, wave,
                            f"port {port} = {value!r}")
        self.stats.matching_inserts += 1
        if self.sanitizer is not None:
            self.sanitizer.note_table_size(pe, len(table), table.entries)
        if result.miss:
            self.stats.matching_misses += 1
        if result.deflected:
            # The token itself takes the overflow round trip.
            if self.trace is not None:
                self.trace.emit(cycle, "overflow", pe, inst_id, thread,
                                wave, "deflected")
            self._post(
                cycle + self.config.overflow_penalty, "token",
                (pe, thread, wave, inst_id, port, value, False),
            )
            return
        if result.evicted is not None:
            # Victim tokens take a round trip through the in-memory
            # overflow table and re-arrive later.
            self.stats.matching_evictions += 1
            v = result.evicted
            for vport, vvalue in v.ports.items():
                self._post(
                    cycle + self.config.overflow_penalty, "token",
                    (pe, v.key[0], v.key[1], v.key[2], vport, vvalue,
                     False),
                )
        if result.fired is not None:
            row = result.fired
            ports = row.ports
            operands = tuple(
                ports[p] for p in range(self._d_arity[inst_id])
            )
            delay = 0 if (local and self.config.speculative_fire) \
                else self.config.match_to_dispatch_delay
            if delay == 0:
                self.stats.speculative_hits += 1
            if self.trace is not None:
                self.trace.emit(
                    cycle, "match", pe, inst_id, thread, wave,
                    "speculative" if delay == 0 else "",
                )
            self._post(
                cycle + delay, "dispatch",
                (pe, thread, wave, inst_id, operands),
            )

    def _on_ifetch(self, cycle: int, pe: int, inst_id: int) -> None:
        """An instruction fetch completed: bind it and replay the
        tokens that were waiting on it."""
        self.istores[pe].fill(inst_id)
        if self.trace is not None:
            self.trace.emit(cycle, "ifetch", pe, inst_id, -1, -1)
        queued = self._ifetch.pop((pe, inst_id), [])
        for payload in queued:
            # Replay through the normal path; the instruction is
            # resident now (it cannot be evicted before these tokens
            # are processed because eviction only happens on a fill,
            # and fills happen in later events).
            self._on_token(cycle, *payload)

    # ==================================================================
    # DISPATCH + EXECUTE + OUTPUT
    # ==================================================================
    def _on_dispatch(
        self,
        cycle: int,
        pe: int,
        thread: int,
        wave: int,
        inst_id: int,
        operands,
    ) -> None:
        opcode = self._d_opcode[inst_id]
        granted = self._dispatch[pe].reserve(cycle)
        exec_start = granted + 1
        if opcode.uses_fpu:
            domain = pe // self.config.pes_per_domain
            exec_start = self._fpu[domain].reserve(exec_start)
        done = exec_start + opcode.latency
        self._note_time(done)
        self.stats.dispatches += 1
        if self.sanitizer is not None:
            # STORE halves dispatch decoupled, one operand each; every
            # other opcode consumes its full matched operand set.
            self.sanitizer.note_consumed(
                1 if opcode is Opcode.STORE else self._d_arity[inst_id]
            )
        if self.trace is not None:
            self.trace.emit(granted, "dispatch", pe, inst_id, thread,
                            wave, opcode.name)
            self.trace.emit(done, "execute", pe, inst_id, thread, wave)

        # STORE: a decoupled half-operation (operands == (port, value)).
        inst = self.graph[inst_id]
        if opcode is Opcode.STORE:
            port, value = operands
            if port == 0:
                self.stats.dynamic_instructions += 1
                self.stats.alpha_instructions += 1
                self._send_memory_request(
                    pe, thread, wave, inst_id, value, done, is_data=False
                )
            else:
                self._send_memory_request(
                    pe, thread, wave, inst_id, value, done, is_data=True
                )
            return

        self.stats.dynamic_instructions += 1
        if opcode.alpha_equivalent:
            self.stats.alpha_instructions += 1

        if opcode.is_memory:  # LOAD / MEMORY_NOP
            self._send_memory_request(
                pe, thread, wave, inst_id, operands[0], done, is_data=False
            )
            return

        if opcode is Opcode.OUTPUT:
            self.stats.outputs.setdefault(inst_id, []).append(operands[0])
            return

        if opcode is Opcode.THREAD_HALT:
            return

        value = self._evaluate(opcode, operands, inst.immediate)

        if opcode is Opcode.STEER:
            dests = inst.dests if steer_taken(operands) else inst.false_dests
            self._deliver(pe, dests, thread, wave, value, done,
                          bypass_from=granted)
            return

        if opcode is Opcode.WAVE_ADVANCE:
            self._advance_wave(pe, inst, thread, wave, value, done)
            return

        if opcode is Opcode.THREAD_SPAWN:
            assert inst.immediate is not None
            self._deliver(
                pe, inst.dests, int(inst.immediate), 0, value, done
            )
            return

        self._deliver(pe, inst.dests, thread, wave, value, done,
                      bypass_from=granted)

    # ==================================================================
    # Wave advance with k-loop bounding
    # ==================================================================
    def _advance_wave(
        self, pe: int, inst, thread: int, wave: int, value: Value, done: int
    ) -> None:
        out_wave = wave + 1
        k = inst.immediate
        if k is not None:
            needed = out_wave - int(k)
            if self._retired.get(thread, 0) < needed:
                self._kbound_stalls.setdefault(thread, []).append(
                    (needed, pe, inst.inst_id, thread, out_wave, value,
                     done)
                )
                return
        self._deliver(pe, inst.dests, thread, out_wave, value, done)

    def _wave_retired(self, thread: int, wave: int, cycle: int) -> None:
        """Store-buffer callback: the wave completes at ``cycle``
        (possibly in the future -- retirement awaits the slowest memory
        operation), so the bookkeeping runs as an event then."""
        self._note_time(cycle)
        self._post(cycle, "retire", (thread, wave))

    def _on_retire(self, cycle: int, thread: int, wave: int) -> None:
        if wave + 1 > self._retired.get(thread, 0):
            self._retired[thread] = wave + 1
        stalls = self._kbound_stalls.get(thread)
        if not stalls:
            return
        still = []
        for entry in stalls:
            needed, pe, inst_id, th, out_wave, value, done = entry
            if self._retired[thread] >= needed:
                inst = self.graph[inst_id]
                self._deliver(
                    pe, inst.dests, th, out_wave, value,
                    max(done, cycle + 1),
                )
            else:
                still.append(entry)
        self._kbound_stalls[thread] = still

    # ==================================================================
    # Operand delivery
    # ==================================================================
    def _deliver(
        self, src_pe: int, dests, thread: int, wave: int, value: Value,
        cycle: int, bypass_from: Optional[int] = None,
    ) -> None:
        """Route the result to its consumers.

        ``bypass_from`` is the producer's dispatch cycle.  Pod-local
        consumers snoop the bypass network: with speculative fire the
        consumer dispatches one cycle behind the producer and reads the
        result *during* its EXECUTE stage (the appendix's Figure 9
        timeline), so its token is delivered a cycle before the result
        formally completes.
        """
        spec_pod = (
            bypass_from is not None and self.config.speculative_fire
        )
        faults = self.faults
        for dest in dests:
            dst_pe = self.placement.pe_of[dest.inst]
            if faults is not None and self._fault_drops(faults, dst_pe):
                if self.trace is not None:
                    self.trace.emit(cycle, "fault_drop", src_pe, dest.inst,
                                    thread, wave)
                if self.sanitizer is not None:
                    self.sanitizer.note_dropped()
                continue
            if self.sanitizer is not None:
                self.sanitizer.note_created()
            route = self.network.route(src_pe, dst_pe, cycle, "operand")
            arrive = cycle + route.latency
            if spec_pod and route.level == "pod":
                arrive = max(bypass_from + 1, cycle - 1)
            if self.trace is not None:
                self.trace.emit(
                    cycle, "output", src_pe, dest.inst, thread, wave,
                    f"{route.level} -> pe{dst_pe} "
                    f"(+{arrive - cycle})",
                )
            self._post(
                arrive, "token",
                (dst_pe, thread, wave, dest.inst, dest.port, value,
                 route.level == "pod"),
            )

    def _fault_drops(self, faults, dst_pe: int) -> bool:
        """Deterministic fault-injection filter for operand delivery:
        swallow tokens bound for a stalled PE, and every Nth delivery
        once ``drop_after`` deliveries have passed."""
        if faults.stall_pe is not None and dst_pe == faults.stall_pe:
            return True
        if faults.drop_every_n is not None:
            self._fault_deliveries += 1
            count = self._fault_deliveries
            if count > faults.drop_after and \
                    count % faults.drop_every_n == 0:
                return True
        return False

    # ==================================================================
    # Memory interface (MEM pseudo-PE <-> store buffer)
    # ==================================================================
    def _home_storebuffer(self, thread: int) -> StoreBuffer:
        cluster = self.placement.thread_home.get(thread, 0)
        return self.storebuffers[cluster]

    def _send_memory_request(
        self,
        pe: int,
        thread: int,
        wave: int,
        inst_id: int,
        value: Value,
        cycle: int,
        is_data: bool,
    ) -> None:
        sb = self._home_storebuffer(thread)
        src_cluster = pe // self.config.pes_per_cluster
        if src_cluster == sb.cluster:
            latency = self.config.cluster_latency
            self.stats.record_message("memory", "cluster", latency)
        else:
            latency = self.config.domain_latency + \
                self.network.route_clusters(src_cluster, sb.cluster, cycle)
        arrive = cycle + latency
        self._note_time(arrive)
        if self.trace is not None:
            self.trace.emit(
                cycle, "mem_req", pe, inst_id, thread, wave,
                f"{'data' if is_data else 'addr'} -> sb{sb.cluster}",
            )
        tag = "sbdata" if is_data else "sbaddr"
        self._post(arrive, tag, (sb, inst_id, thread, wave, value))

    def _memory_complete(self, op: MemOp, value: Value, cycle: int) -> None:
        """Store-buffer completion: deliver the result to consumers."""
        self._note_time(cycle)
        inst = self.graph[op.inst_id]
        if self.trace is not None:
            self.trace.emit(
                cycle, "mem_done", -1, op.inst_id, op.thread, op.wave,
                f"= {value!r}",
            )
        sb_cluster = self.placement.thread_home.get(op.thread, 0)
        for dest in inst.dests:
            if self.sanitizer is not None:
                self.sanitizer.note_created()
            dst_pe = self.placement.pe_of[dest.inst]
            dst_cluster = dst_pe // self.config.pes_per_cluster
            if dst_cluster == sb_cluster:
                latency = self.config.cluster_latency
                self.stats.record_message("memory", "cluster", latency)
            else:
                latency = self.network.route_clusters(
                    sb_cluster, dst_cluster, cycle
                ) + self.config.domain_latency
            self._post(
                cycle + latency, "token",
                (dst_pe, op.thread, op.wave, dest.inst, dest.port, value,
                 False),
            )


def simulate(
    graph: DataflowGraph,
    config: WaveScalarConfig,
    placement: Optional[Placement] = None,
    max_cycles: int = 20_000_000,
    strict: bool = True,
    warm_caches: bool = True,
    max_events: int = 200_000_000,
) -> SimStats:
    """Convenience wrapper: place (if needed) and run ``graph``."""
    if placement is None:
        from ...place.snake import place

        placement = place(graph, config)
    engine = Engine(
        graph, config, placement, max_cycles=max_cycles,
        warm_caches=warm_caches, max_events=max_events,
    )
    return engine.run(strict=strict)
