"""The PE instruction store (Section 3.2).

Holds the decoded instructions bound to a PE.  Placement may assign a
PE more static instructions than its ``V`` slots (the processor
dynamically re-binds instructions on demand, "swapping them in and out"
-- Section 3.1).  The store therefore behaves as a fully-associative
LRU cache over the PE's assigned instructions; a *miss* fetches the
instruction's decoded state from memory at roughly 3x the cost of a
matching-table miss (Section 4.2).
"""

from __future__ import annotations

from collections import OrderedDict


class InstructionStore:
    """LRU-managed instruction residency for one PE."""

    def __init__(self, capacity: int, assigned: list[int]) -> None:
        self.capacity = capacity
        self.assigned = list(assigned)
        self._resident: OrderedDict[int, None] = OrderedDict()
        # Pre-load in slot order up to capacity (cold start: the first
        # `capacity` instructions are resident, mirroring initial
        # binding).
        for inst_id in self.assigned[:capacity]:
            self._resident[inst_id] = None
        self.hits = 0
        self.misses = 0

    @property
    def over_subscribed(self) -> bool:
        return len(self.assigned) > self.capacity

    def is_resident(self, inst_id: int) -> bool:
        return inst_id in self._resident

    def touch(self, inst_id: int) -> bool:
        """Access ``inst_id``; returns True on hit.

        On a miss the instruction becomes resident (evicting LRU) and
        False is returned -- the caller charges the fetch penalty.
        """
        if self.hit(inst_id):
            return True
        self.fill(inst_id)
        return False

    def hit(self, inst_id: int) -> bool:
        """Probe for residency; refreshes LRU and counts on a hit."""
        if inst_id in self._resident:
            self._resident.move_to_end(inst_id)
            self.hits += 1
            return True
        return False

    def fill(self, inst_id: int) -> None:
        """Complete a fetch: bind ``inst_id``, evicting LRU if full."""
        self.misses += 1
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
        self._resident[inst_id] = None

    def resident_count(self) -> int:
        return len(self._resident)
