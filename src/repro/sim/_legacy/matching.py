"""The matching table: a specialised operand cache (Section 3.2).

The matching table is the heart -- and 60% of the area -- of a
WaveScalar PE.  It emulates a conceptually infinite token store with a
small physical structure:

* ``M`` rows, set-associative (2-way in the paper's chosen design),
  three operand columns per row (the third column holds only the 1-bit
  predicate operands of STEER/MERGE).
* Rows are indexed by the tuned hash ``I*k + (w mod k)`` where ``I`` is
  the instruction's slot in this PE's instruction store and ``w`` the
  token's wave (Section 4.2's *matching table equation* machinery).
* Four banks accept up to four incoming operands per cycle; bank
  conflicts force retries (the INPUT stage "reject" of Section 3.2).
* When no way is free for an incoming token, the LRU victim row is
  evicted to the in-memory overflow table and its tokens return after a
  memory round trip -- a *matching-table miss*.

The tracker board (which operands are present per row) is the ``ports``
dict of each row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...isa.token import Value


@dataclass(slots=True)
class MatchRow:
    """One occupied matching-table row (tracker-board entry + operands)."""

    key: tuple[int, int, int]  # (thread, wave, inst)
    ports: dict[int, Value] = field(default_factory=dict)
    last_use: int = 0


@dataclass(slots=True)
class InsertResult:
    """Outcome of offering one token to the table."""

    accepted: bool  # False => bank conflict, retry next cycle
    fired: Optional[MatchRow] = None  # completed row, removed from table
    evicted: Optional[MatchRow] = None  # victim row sent to overflow
    miss: bool = False  # an eviction/deflection happened (table miss)
    #: The incoming token itself goes to the overflow table (it is
    #: younger than every resident row in its set -- oldest-wave
    #: priority guarantees forward progress under thrashing).
    deflected: bool = False


class MatchingTable:
    """Banked, set-associative operand cache for one PE."""

    def __init__(
        self,
        entries: int,
        associativity: int,
        banks: int,
        hash_k: int,
    ) -> None:
        if entries % associativity:
            raise ValueError("entries must be a multiple of associativity")
        self.entries = entries
        self.associativity = associativity
        self.banks = banks
        self.hash_k = max(1, hash_k)
        self.sets = max(1, entries // associativity)
        self._rows: dict[tuple[int, int, int], MatchRow] = {}
        self._by_set: dict[int, list[MatchRow]] = {}
        self._bank_cycle = -1
        self._bank_used: dict[int, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def occupancy(self) -> float:
        return len(self._rows) / self.entries if self.entries else 0.0

    def set_index(self, slot: int, wave: int) -> int:
        """The tuned hash of Section 4.2: ``I*k + (w mod k)``.

        The table is organised as ``sets/k`` instruction groups of
        ``k`` wave slots; the instruction picks the group, the wave
        picks the slot within it.  (Naively taking ``(I*k + w%k) mod
        sets`` would alias every instruction onto ``gcd(k, sets)``
        sets when the table is small.)  Tables smaller than one group
        fall back to a plain mixed hash.
        """
        k = self.hash_k
        groups = self.sets // k
        if groups >= 1:
            return (slot % groups) * k + (wave % k)
        return (slot + wave) % self.sets

    def lookup(self, key: tuple[int, int, int]) -> Optional[MatchRow]:
        return self._rows.get(key)

    # ------------------------------------------------------------------
    def insert(
        self,
        key: tuple[int, int, int],
        port: int,
        value: Value,
        slot: int,
        arity: int,
        cycle: int,
    ) -> InsertResult:
        """Offer one operand to the table at ``cycle``.

        Enforces the 4-arrivals-per-cycle bank limit; on success either
        records the operand, completes the row (``fired``), or evicts a
        victim to the overflow table (``miss``).
        """
        set_idx = self.set_index(slot, key[1])
        if not self._claim_bank(set_idx, cycle):
            return InsertResult(accepted=False)

        row = self._rows.get(key)
        if row is not None:
            row.ports[port] = value
            row.last_use = cycle
            if len(row.ports) >= arity:
                self._remove(row, set_idx)
                return InsertResult(accepted=True, fired=row)
            return InsertResult(accepted=True)

        ways = self._by_set.setdefault(set_idx, [])
        evicted = None
        miss = False
        if len(ways) >= self.associativity:
            # Oldest-first priority under thrashing: rank instances by
            # the total order (wave, thread, instruction); evict the
            # youngest resident row, or deflect the incoming token to
            # the overflow table if it is itself the youngest.  Because
            # the order is total, the globally oldest pending instance
            # always keeps its row, its partner operands join it on
            # arrival (lookup precedes allocation), and it eventually
            # fires -- guaranteeing forward progress however small the
            # table.
            def priority(k: tuple[int, int, int]) -> tuple[int, int, int]:
                return (k[1], k[0], k[2])

            victim = max(ways, key=lambda r: priority(r.key))
            if priority(key) >= priority(victim.key):
                return InsertResult(accepted=True, miss=True,
                                    deflected=True)
            evicted = victim
            self._remove(evicted, set_idx)
            miss = True
        row = MatchRow(key=key, ports={port: value}, last_use=cycle)
        self._rows[key] = row
        ways = self._by_set.setdefault(set_idx, [])
        ways.append(row)
        if len(row.ports) >= arity:  # single-operand instruction
            self._remove(row, set_idx)
            return InsertResult(
                accepted=True, fired=row, evicted=evicted, miss=miss
            )
        return InsertResult(accepted=True, evicted=evicted, miss=miss)

    def has_free_way(self, slot: int, wave: int) -> bool:
        """Whether a token hashing to (slot, wave) could be accepted
        without an eviction (used to pace overflow returns)."""
        set_idx = self.set_index(slot, wave)
        return len(self._by_set.get(set_idx, ())) < self.associativity

    def drop(self, key: tuple[int, int, int]) -> Optional[MatchRow]:
        """Remove and return a row (used when a PE migrates state)."""
        row = self._rows.get(key)
        if row is None:
            return None
        set_idx = None
        for idx, ways in self._by_set.items():
            if row in ways:
                set_idx = idx
                break
        assert set_idx is not None
        self._remove(row, set_idx)
        return row

    def pending_rows(self) -> list[MatchRow]:
        """All partially filled rows (deadlock diagnostics)."""
        return list(self._rows.values())

    # ------------------------------------------------------------------
    def _claim_bank(self, set_idx: int, cycle: int) -> bool:
        if cycle != self._bank_cycle:
            self._bank_cycle = cycle
            self._bank_used = {}
        bank = set_idx % self.banks
        if self._bank_used.get(bank, 0) >= 1:
            return False
        self._bank_used[bank] = 1
        return True

    def _remove(self, row: MatchRow, set_idx: int) -> None:
        del self._rows[row.key]
        self._by_set[set_idx].remove(row)
