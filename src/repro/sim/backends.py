"""The engine backend registry.

Three interchangeable ways to drive the cycle-level simulator:

* ``plain`` -- the default: one :class:`~repro.sim.engine.Engine` per
  run, the uninstrumented ``_run_plain`` hot loop.
* ``profiled`` -- the same engine with the ``_run_profiled`` loop twin
  and a :class:`~repro.obs.profile.PhaseProfile` attached, attributing
  hot-loop time to pipeline phases.  Simulated results are bit-identical
  to ``plain`` (the AST twin-sync test enforces it).
* ``batched`` -- the lockstep multi-cell backend of
  :mod:`repro.sim.batched`: many cells of the same workload graph run
  in one process, interleaved cycle-major, with per-cell results
  bit-identical to ``plain``.  Requires numpy; cells carrying a
  feature the lockstep loop does not support (fault plans, traces,
  sanitizers, profiles) fall back to ``plain`` per cell with a
  recorded reason.

Every user-facing selection point (``WaveScalarProcessor(backend=)``,
``repro run --backend``, sweep ``--backend``) funnels through
:func:`validate_backend`, so an unknown name always fails fast with
the valid set listed.
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "UnknownBackendError",
    "batched_available",
    "batch_unsupported_reason",
    "validate_backend",
]

#: Every selectable backend, in documentation order.
BACKENDS = ("plain", "profiled", "batched")

DEFAULT_BACKEND = "plain"


class UnknownBackendError(ValueError):
    """Raised for a backend name outside :data:`BACKENDS`."""

    def __init__(self, name: object) -> None:
        super().__init__(
            f"unknown engine backend {name!r}; valid backends: "
            + ", ".join(BACKENDS)
        )
        self.name = name


def validate_backend(name: object) -> str:
    """Normalize ``name`` to a registered backend string.

    Accepts the canonical strings (whitespace/case tolerated, for
    misparsed CLI values) and string-valued enum members from
    programmatic callers.  Everything else -- ``None``, bytes, numbers
    -- raises :class:`UnknownBackendError` listing the valid set, never
    ``TypeError``, so every selection point fails the same way.
    """
    candidate = name
    if isinstance(candidate, enum.Enum):
        candidate = candidate.value
    if not isinstance(candidate, str):
        raise UnknownBackendError(name)
    candidate = candidate.strip().lower()
    if candidate not in BACKENDS:
        raise UnknownBackendError(name)
    return candidate


def batched_available() -> bool:
    """Whether the batched backend can run in this environment (it
    holds its lockstep bookkeeping in numpy arrays)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def batch_unsupported_reason(
    faults=None,
    trace=None,
    sanitizer=None,
    profile=None,
) -> Optional[str]:
    """The deterministic reason a cell cannot run under the batched
    backend, or ``None`` when it can.

    The reasons here depend only on the cell's own definition and the
    environment -- never on scheduling dynamics (batch width, worker
    crashes) -- so a recorded fallback reason is identical for any
    ``jobs`` value and any lane interleaving.
    """
    if not batched_available():
        return "numpy-unavailable"
    if faults is not None:
        return "fault-plan"
    if trace is not None:
        return "trace-attached"
    if sanitizer is not None:
        return "sanitizer-attached"
    if profile is not None:
        return "profile-attached"
    return None
