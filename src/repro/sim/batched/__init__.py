"""The batched lockstep engine backend.

Executes many cells of the same workload graph in one process,
interleaved cycle-major over a shared frontier (see
:mod:`repro.sim.batched.core`).  Per-cell simulated results are
bit-identical to the serial ``plain`` backend; the golden suite in
``tests/sim/test_batched_backend.py`` proves it for every workload
against every grid configuration.
"""

from .core import (
    LOCKSTEP_QUANTUM,
    BatchedEngine,
    BatchOutcome,
)

__all__ = [
    "BatchedEngine",
    "BatchOutcome",
    "LOCKSTEP_QUANTUM",
]
