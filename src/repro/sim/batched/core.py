"""Lockstep multi-cell execution of the event-driven engine.

The sweep's unit of work is the *cell*: one (design, workload) pair
simulated to completion.  Cells are mutually independent, so a batch
of same-workload cells can interleave on one interpreter in any
order without changing any per-cell result.  This module drives a
batch *cycle-major*: a shared frontier tracks each cell's next
calendar cycle in a numpy struct-of-arrays (one slot per cell), every
round advances the cells sitting at the global minimum through one
lockstep quantum of simulated cycles, and each cell finalizes exactly
where the serial engine would have.

What the batch actually shares (and why it is faster than one fork
per cell):

* **decode** -- every cell of a group indexes the same
  :class:`~repro.sim.compile.CompiledGraph` flat per-instruction
  tuples (instruction-major SoA, built once per workload);
* **process and interpreter state** -- one fork, one warm allocator,
  one warm reference-output memo, one result channel, one ledger
  append for the whole batch instead of per cell;
* **event dispatch** -- the drain loop below is a specialisation of
  ``Engine._run_plain`` with the token path *and the matching-table
  probe* inlined, the dispatch and delivery handlers shadowed by
  closures with every ``self`` attribute hoisted, and the
  trace/sanitizer/fault hook sites removed (a cell that needs them is
  rejected at construction and falls back to the plain backend), so
  the per-event cost is paid to the simulation, not to call frames
  and disabled instrumentation.

What is deliberately **not** shared: all per-cell mutable machine
state (matching tables, reservation ledgers, store buffers, stats).
Configurations differ across the batch, so timing differs, and
bit-identity per cell is only achievable by keeping every cell's
state private.  The golden suite (``tests/sim/test_batched_backend
.py``) holds every workload to ``SimStats`` equality with the serial
engine across the design grid, including the budget-exhaustion and
deadlock paths.

The drain loop replicates ``_run_plain`` semantics *exactly*: event
budgets are charged per token (batch calendar entries unpack inline),
budget raises requeue the unprocessed bucket tail through
``Engine._requeue_bucket`` so failure diagnostics match the serial
engine bit for bit, and the horizon/quiescence finalisation runs per
cell exactly as ``Engine.run`` would.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional

import numpy as np

from ...isa.semantics import evaluator_for
from ..compile import (
    K_ALU,
    K_HALT,
    K_MEMORY,
    K_OUTPUT,
    K_STEER,
    K_STORE,
    K_WAVE_ADVANCE,
)
from ..engine import Engine
from ..events import (
    EV_DISPATCH,
    EV_IFETCH,
    EV_TOKEN,
    EV_TOKEN_BATCH,
)
from ..failures import (
    CycleBudgetExhausted,
    EventBudgetExhausted,
)
from ..network.topology import Route
from ..pe.matching import MatchRow
from ..stats import SimStats

__all__ = ["BatchedEngine", "BatchOutcome", "LOCKSTEP_QUANTUM"]

#: Simulated cycles each lockstep round advances past the global
#: frontier minimum.  Large enough that round bookkeeping is noise,
#: small enough that the batch genuinely interleaves (a stuck cell
#: cannot starve the others of interpreter time for long).
LOCKSTEP_QUANTUM = 4096

#: Frontier value for a cell with an empty calendar (or a failed one).
_IDLE = np.iinfo(np.int64).max


@dataclass
class BatchOutcome:
    """One cell's terminal state after a lockstep run."""

    stats: Optional[SimStats] = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchedEngine:
    """Runs a list of independently-constructed :class:`Engine`
    instances to completion in lockstep.

    Construction validates that every engine is lockstep-compatible:
    no trace, sanitizer, fault plan, or profiler may be attached (the
    drain loop has their hook sites compiled out -- use
    :func:`~repro.sim.backends.batch_unsupported_reason` to route such
    cells to the plain backend *before* building a batch).
    """

    def __init__(self, engines: list[Engine],
                 quantum: int = LOCKSTEP_QUANTUM) -> None:
        if not engines:
            raise ValueError("batch must contain at least one engine")
        if quantum < 1:
            raise ValueError("lockstep quantum must be positive")
        for n, engine in enumerate(engines):
            for attr in ("trace", "sanitizer", "faults", "profile"):
                if getattr(engine, attr) is not None:
                    raise ValueError(
                        f"cell {n}: {attr} is attached; the batched "
                        "backend does not support it -- run this cell "
                        "on the plain backend"
                    )
        self.engines = engines
        self.quantum = quantum
        n = len(engines)
        # Lockstep struct-of-arrays, one slot per cell: the next
        # calendar cycle (the frontier), events processed so far, and
        # liveness.  The scheduler below queries them vectorised
        # (min / compare / flatnonzero) once per round.
        self._frontier = np.full(n, _IDLE, dtype=np.int64)
        self._processed = np.zeros(n, dtype=np.int64)
        self._active = np.zeros(n, dtype=bool)
        self.rounds = 0

    # ------------------------------------------------------------------
    def run(self, strict: bool = True) -> list[BatchOutcome]:
        """Drive every cell to its terminal state; returns one
        :class:`BatchOutcome` per cell, in construction order.

        A cell that raises (budget exhaustion, deadlock) is recorded
        and deactivated; the rest of the batch continues.  ``strict``
        matches :meth:`Engine.run`: quiescence is audited per cell
        after its calendar drains.
        """
        engines = self.engines
        frontier = self._frontier
        processed = self._processed
        active = self._active
        outcomes = [BatchOutcome() for _ in engines]

        # Per-instruction evaluator tables, shared across cells that
        # index the same CompiledGraph rows (a same-workload batch
        # builds exactly one).
        eval_tables: dict[int, tuple] = {}
        for i, engine in enumerate(engines):
            _install_fast_route(engine)
            _install_fast_deliver(engine)
            _install_fast_dispatch(engine, eval_tables)
            _seed(engine)
            heap = engine._cycle_heap
            if heap:
                frontier[i] = heap[0]
                active[i] = True

        quantum = self.quantum
        while True:
            live = np.flatnonzero(active)
            if live.size == 0:
                break
            ceiling = int(frontier[live].min()) + quantum
            for i in np.flatnonzero(
                    active & (frontier <= ceiling)):
                engine = engines[i]
                try:
                    count = _drain_cell(
                        engine, ceiling, int(processed[i])
                    )
                except Exception as exc:  # noqa: BLE001 - per-cell verdict
                    outcomes[i].error = exc
                    active[i] = False
                    frontier[i] = _IDLE
                    continue
                processed[i] = count
                heap = engine._cycle_heap
                if heap:
                    frontier[i] = heap[0]
                else:
                    # Calendar drained: finalize exactly as
                    # Engine.run does after its loop returns.
                    active[i] = False
                    frontier[i] = _IDLE
                    engine.stats.cycles = engine._horizon
                    engine._events_processed = count
                    engine.stats.events_processed = count
                    try:
                        if strict:
                            engine._check_quiescent()
                    except Exception as exc:  # noqa: BLE001
                        outcomes[i].error = exc
                        continue
                    outcomes[i].stats = engine.stats
            self.rounds += 1
        for engine in engines:
            deliver = engine.__dict__.pop("_deliver", None)
            if deliver is not None:
                deliver.flush()
            dispatch = engine.__dict__.pop("_on_dispatch", None)
            if dispatch is not None:
                dispatch.flush()
            engine.network.__dict__.pop("route", None)
        return outcomes


def _install_fast_route(engine: Engine) -> None:
    """Shadow ``engine.network.route`` with a lockstep specialisation:
    verbatim :meth:`Interconnect.route` with the level memo, the
    result-bus :meth:`BandwidthLedger.reserve`, and the
    :meth:`SimStats.record_message` counters inlined.  The grid path
    (mesh reservations) stays a delegation -- it is both the rarest
    and the most stateful level.
    """
    net = engine.network
    cfg = net.config
    stats = engine.stats
    messages = stats.messages
    level_cache = net._level_cache
    classify = net._classify
    total_pes = net._total_pes
    pod_route = net._pod_route
    pod_latency = pod_route.latency
    pe_bus = net._pe_bus
    net_in = net._net_in
    pes_per_domain = net._pes_per_domain
    pes_per_cluster = net._pes_per_cluster
    domain_latency = cfg.domain_latency
    cluster_latency = cfg.cluster_latency
    route_grid = net._route_grid
    make_route = Route

    def fast_route(src_pe, dst_pe, cycle, kind):
        key = src_pe * total_pes + dst_pe
        level = level_cache.get(key)
        if level is None:
            level = classify(src_pe, dst_pe)
            level_cache[key] = level
        if level == "pod":
            messages[kind]["pod"] += 1
            stats.message_latency_sum += pod_latency
            stats.message_count += 1
            return pod_route

        # All other levels leave the PE on its result bus
        # (inlined BandwidthLedger.reserve).
        ledger = pe_bus[src_pe]
        floor = ledger._floor
        t = cycle if cycle > floor else floor
        used = ledger._used
        get = used.get
        count = get(t, 0)
        per_cycle = ledger.per_cycle
        while count >= per_cycle:
            t += 1
            count = get(t, 0)
        used[t] = count + 1
        if len(used) > 4096:
            floor = min(used)
            for k in [k for k in used if k < floor]:
                del used[k]
        wait = t - cycle

        if level == "domain":
            latency = wait + domain_latency
            messages[kind]["domain"] += 1
            stats.message_latency_sum += latency
            stats.message_count += 1
            return make_route("domain", latency, 0, wait)

        if level == "cluster":
            inject = net_in[dst_pe // pes_per_domain].reserve(
                t + cluster_latency - 1
            )
            latency = inject + 1 - cycle
            messages[kind]["cluster"] += 1
            stats.message_latency_sum += latency
            stats.message_count += 1
            return make_route("cluster", latency, 0, wait)

        return route_grid(src_pe, dst_pe, src_pe // pes_per_cluster,
                          cycle, t, kind)

    net.route = fast_route


def _install_fast_deliver(engine: Engine) -> None:
    """Shadow ``engine._deliver`` with a lockstep specialisation.

    The same per-instance shadowing idiom as the engine's profile
    hooks, in the opposite direction: the fault/trace/sanitizer hook
    sites are *removed* (batch construction guarantees all three are
    ``None``), every per-call ``self`` attribute is a closure
    variable, and the ``_post_tokens`` calendar append is inlined.
    The routing, bypass-snoop, and same-cycle batch-fusion logic is
    verbatim ``Engine._deliver``.
    """
    spec_fire = engine._spec_fire
    pe_of = engine._pe_of
    route_of = engine.network.route
    buckets = engine._buckets
    cycle_heap = engine._cycle_heap
    heap_push = heappush
    ev_token = EV_TOKEN
    ev_token_batch = EV_TOKEN_BATCH
    # Pod-level routing inlined a second time (fast_route already has
    # it): the pod path is stateless, and operand delivery is by far
    # its hottest caller, so the extra duplication buys back one
    # function call per pod-local operand.
    net = engine.network
    stats = engine.stats
    operand_counts = stats.messages["operand"]
    level_cache = net._level_cache
    classify = net._classify
    total_pes = net._total_pes
    pod_latency = net._pod_route.latency

    # Pod-message counters accumulate in closure cells and reach
    # ``stats`` through ``flush`` (called once, at shadow-pop): no
    # mid-run reader exists -- failure diagnostics snapshot only the
    # horizon and queue depths -- so per-message attribute writes
    # would be pure overhead.
    pod_messages = 0

    def fast_deliver(src_pe, dests, thread, wave, value, cycle,
                     bypass_from=None):
        nonlocal pod_messages
        spec_pod = bypass_from is not None and spec_fire
        if len(dests) == 1:
            # Single destination (the common case): no same-cycle
            # fusion is possible, so skip the batch bookkeeping.
            dest = dests[0]
            dst_pe = pe_of[dest.inst]
            key = src_pe * total_pes + dst_pe
            level = level_cache.get(key)
            if level is None:
                level = classify(src_pe, dst_pe)
                level_cache[key] = level
            if level == "pod":
                pod_messages += 1
                pod_local = True
                if spec_pod:
                    arrive = bypass_from + 1
                    if cycle - 1 > arrive:
                        arrive = cycle - 1
                else:
                    arrive = cycle + pod_latency
            else:
                route = route_of(src_pe, dst_pe, cycle, "operand")
                pod_local = False
                arrive = cycle + route.latency
            entry = (ev_token, (dst_pe, thread, wave, dest.inst,
                                dest.port, value, pod_local))
            b = buckets.get(arrive)
            if b is None:
                buckets[arrive] = [entry]
                heap_push(cycle_heap, arrive)
            else:
                b.append(entry)
            return
        batch = None
        batch_cycle = -1
        for dest in dests:
            dst_pe = pe_of[dest.inst]
            key = src_pe * total_pes + dst_pe
            level = level_cache.get(key)
            if level is None:
                level = classify(src_pe, dst_pe)
                level_cache[key] = level
            if level == "pod":
                pod_messages += 1
                pod_local = True
                arrive = cycle + pod_latency
            else:
                route = route_of(src_pe, dst_pe, cycle, "operand")
                pod_local = False
                arrive = cycle + route.latency
            if spec_pod and pod_local:
                arrive = max(bypass_from + 1, cycle - 1)
            token = (dst_pe, thread, wave, dest.inst, dest.port,
                     value, pod_local)
            if arrive == batch_cycle:
                batch.append(token)
            else:
                if batch is not None:
                    # inlined Engine._post_tokens
                    if len(batch) == 1:
                        entry = (ev_token, batch[0])
                    else:
                        entry = (ev_token_batch, tuple(batch))
                    b = buckets.get(batch_cycle)
                    if b is None:
                        buckets[batch_cycle] = [entry]
                        heap_push(cycle_heap, batch_cycle)
                    else:
                        b.append(entry)
                batch = [token]
                batch_cycle = arrive
        if batch is not None:
            if len(batch) == 1:
                entry = (ev_token, batch[0])
            else:
                entry = (ev_token_batch, tuple(batch))
            b = buckets.get(batch_cycle)
            if b is None:
                buckets[batch_cycle] = [entry]
                heap_push(cycle_heap, batch_cycle)
            else:
                b.append(entry)

    def _flush_deliver() -> None:
        nonlocal pod_messages
        if pod_messages:
            operand_counts["pod"] += pod_messages
            stats.message_count += pod_messages
            stats.message_latency_sum += pod_messages * pod_latency
            pod_messages = 0

    fast_deliver.flush = _flush_deliver
    engine._deliver = fast_deliver


def _install_fast_dispatch(engine: Engine,
                           eval_tables: dict[int, tuple]) -> None:
    """Shadow ``engine._on_dispatch`` with a lockstep specialisation:
    verbatim ``Engine._on_dispatch`` with the sanitizer/trace hook
    sites removed, every per-call ``self`` attribute hoisted into the
    closure, and :func:`~repro.isa.semantics.evaluate` replaced by a
    per-instruction evaluator table (``eval_tables`` memoises one
    table per CompiledGraph rows object, so a same-workload batch
    resolves each opcode's semantics exactly once).  Must run *after*
    :func:`_install_fast_deliver` so the captured ``deliver`` is the
    fast shadow.
    """
    d_row = engine._d_row
    d_eval = eval_tables.get(id(d_row))
    if d_eval is None:
        d_eval = tuple(evaluator_for(r[0], r[6]) for r in d_row)
        eval_tables[id(d_row)] = d_eval
    dispatch_ports = engine._dispatch
    fpu = engine._fpu
    pes_per_domain = engine._pes_per_domain
    stats = engine.stats
    outputs = engine.stats.outputs
    deliver = engine._deliver
    send_memory = engine._send_memory_request
    advance_wave = engine._advance_wave
    # Engine builds every PE dispatch port and per-domain FPU as
    # ``BandwidthLedger(1)``; the inlined reserves below hard-code
    # that width.  (The ledger's >4096 opportunistic cleanup is
    # omitted from the FPU inline: it deletes keys below
    # ``min(used)`` -- none -- so it never changes state.)
    assert all(ledger.per_cycle == 1 for ledger in dispatch_ports)
    assert all(ledger.per_cycle == 1 for ledger in fpu)
    # Instruction counters accumulate in closure cells and reach
    # ``stats`` through ``flush`` at shadow-pop -- same contract as
    # the deliver shadow's message counters (no mid-run reader).
    n_dispatches = 0
    n_dynamic = 0
    n_alpha = 0

    def fast_on_dispatch(cycle, payload):
        nonlocal n_dispatches, n_dynamic, n_alpha
        pe, thread, wave, inst_id, operands = payload
        (opcode, kind, arity, latency, uses_fpu, alpha, imm, dests,
         false_dests) = d_row[inst_id]
        # inlined BandwidthLedger.reserve on the (width-1) PE
        # dispatch port
        ledger = dispatch_ports[pe]
        floor = ledger._floor
        granted = cycle if cycle > floor else floor
        used = ledger._used
        while granted in used:
            granted += 1
        used[granted] = 1
        if len(used) > 4096:
            floor = min(used)
            for k in [k for k in used if k < floor]:
                del used[k]
        exec_start = granted + 1
        if uses_fpu:
            # inlined BandwidthLedger.reserve on the (width-1)
            # domain FPU
            fl = fpu[pe // pes_per_domain]
            if exec_start < fl._floor:
                exec_start = fl._floor
            f_used = fl._used
            while exec_start in f_used:
                exec_start += 1
            f_used[exec_start] = 1
        done = exec_start + latency
        if done > engine._horizon:
            engine._horizon = done
        n_dispatches += 1

        # STORE: a decoupled half-operation (operands == (port, value)).
        if kind == K_STORE:
            port, value = operands
            if port == 0:
                n_dynamic += 1
                n_alpha += 1
                send_memory(pe, thread, wave, inst_id, value, done,
                            is_data=False)
            else:
                send_memory(pe, thread, wave, inst_id, value, done,
                            is_data=True)
            return

        n_dynamic += 1
        if alpha:
            n_alpha += 1

        if kind == K_ALU:  # the hottest case: plain ALU evaluation
            value = d_eval[inst_id](operands)
            deliver(pe, dests, thread, wave, value, done,
                    bypass_from=granted)
            return

        if kind == K_MEMORY:  # LOAD / MEMORY_NOP
            send_memory(pe, thread, wave, inst_id, operands[0], done,
                        is_data=False)
            return

        if kind == K_OUTPUT:
            outputs.setdefault(inst_id, []).append(operands[0])
            return

        if kind == K_HALT:
            return

        value = d_eval[inst_id](operands)

        if kind == K_STEER:
            if not operands[1]:
                dests = false_dests
            deliver(pe, dests, thread, wave, value, done,
                    bypass_from=granted)
            return

        if kind == K_WAVE_ADVANCE:
            advance_wave(pe, inst_id, thread, wave, value, done)
            return

        # K_SPAWN: retag into the thread named by the immediate.
        assert imm is not None
        deliver(pe, dests, int(imm), 0, value, done)

    def _flush_dispatch() -> None:
        nonlocal n_dispatches, n_dynamic, n_alpha
        stats.dispatches += n_dispatches
        stats.dynamic_instructions += n_dynamic
        stats.alpha_instructions += n_alpha
        n_dispatches = n_dynamic = n_alpha = 0

    fast_on_dispatch.flush = _flush_dispatch
    engine._on_dispatch = fast_on_dispatch


def _seed(engine: Engine) -> None:
    """Post the program's entry tokens, exactly as the preamble of
    :meth:`Engine.run` does (the fault-plan branch is absent because
    fault plans are rejected at batch construction)."""
    placement_pe = engine.placement.pe_of
    for token in engine.graph.entry_tokens:
        engine._post(
            0, EV_TOKEN,
            (placement_pe[token.inst], token.thread, token.wave,
             token.inst, token.port, token.value, False),
        )


def _drain_cell(eng: Engine, ceiling: int, processed: int) -> int:
    """Drain ``eng``'s calendar through cycle ``ceiling`` and return
    the updated event count.

    This is ``Engine._run_plain`` specialised for lockstep execution:

    * the loop stops once the next bucket lies past ``ceiling``
      (instead of when the calendar empties), so a batch peer gets the
      interpreter back every quantum;
    * the ``EV_TOKEN`` handler body is inlined -- twice, once for
      plain entries and once inside the ``EV_TOKEN_BATCH`` unpack --
      with the trace/sanitizer/fault hook sites removed (batch
      construction guarantees they are ``None``), the
      :meth:`MatchingTable.insert` probe fully inlined (every table
      of one engine shares its hash geometry, hoisted once per
      drain), and the hot counters accumulated in locals, flushed to
      ``eng.stats`` on every exit path;
    * budget raises reuse ``Engine._requeue_bucket`` /
      ``Engine._budget_stop`` verbatim, so ``CycleBudgetExhausted`` /
      ``EventBudgetExhausted`` diagnostics are bit-identical to the
      serial engine's.

    The two inlined token bodies must stay semantically identical to
    ``Engine._on_token`` + ``MatchingTable.insert`` -- the golden
    suite runs every workload against every grid configuration
    (including matching-table conflict/eviction/overflow geometries)
    to hold them there.
    """
    buckets = eng._buckets
    cycle_heap = eng._cycle_heap
    max_cycles = eng.max_cycles
    max_events = eng.max_events
    handlers = eng._handlers
    on_dispatch = eng._on_dispatch  # the fast shadow
    graph_name = eng.graph.name
    heap_pop = heappop
    heap_push = heappush
    token_batch = EV_TOKEN_BATCH
    ev_token = EV_TOKEN
    ev_dispatch = EV_DISPATCH
    ev_ifetch = EV_IFETCH
    match_row = MatchRow

    # Token-path state, hoisted once per drain call.
    stats = eng.stats
    istores = eng.istores
    matching = eng.matching
    ifetch = eng._ifetch
    post_tokens = eng._post_tokens
    d_is_store = eng._d_is_store
    d_arity = eng._d_arity
    d_slot = eng._d_slot
    match_delay = eng._match_delay
    spec_fire = eng._spec_fire
    overflow_penalty = eng._overflow_penalty
    istore_penalty = eng._istore_penalty

    # Matching-table hash geometry: identical for every PE's table
    # (all are built from the one config), hoisted from table 0.
    t0 = matching[0]
    mt_k = t0.hash_k
    mt_groups = t0._groups
    mt_sets = t0.sets
    mt_banks = t0.banks
    mt_assoc = t0.associativity

    # Per-PE over-subscription flags (fixed at construction) as one
    # flat list: the common case skips the InstructionStore object
    # entirely.
    istore_over = [s.over_subscribed for s in istores]

    # The activity horizon as a local running max.  Dispatch/memory
    # handlers keep writing ``eng._horizon`` directly; the true
    # horizon is the max of both, restored at every exit (the
    # ``finally`` below) and -- because ``_budget_stop`` reads
    # ``_horizon`` for its diagnostics -- immediately before each
    # budget raise.
    horizon = eng._horizon

    # Hot counters as locals (flushed in ``finally``): nothing inside
    # the drain reads these stats fields, so deferring the attribute
    # writes is invisible.
    istore_hits = istore_misses = input_rejects = 0
    matching_inserts = matching_misses = matching_evictions = 0
    speculative_hits = 0

    try:
        while cycle_heap and cycle_heap[0] <= ceiling:
            cycle = heap_pop(cycle_heap)
            bucket = buckets.pop(cycle)
            if cycle > max_cycles:
                if horizon > eng._horizon:
                    eng._horizon = horizon
                eng._requeue_bucket(cycle, bucket, 0, 0)
                raise CycleBudgetExhausted(
                    f"{graph_name}: exceeded {max_cycles} cycles",
                    eng._budget_stop(processed),
                )
            for index, entry in enumerate(bucket):
                tag = entry[0]
                if tag == ev_token:
                    processed += 1
                    if processed > max_events:
                        if horizon > eng._horizon:
                            eng._horizon = horizon
                        eng._requeue_bucket(cycle, bucket, index, 0)
                        raise EventBudgetExhausted(
                            f"{graph_name}: exceeded {max_events} "
                            f"events at cycle {cycle} (thrashing)",
                            eng._budget_stop(processed),
                        )
                    if cycle > horizon:
                        horizon = cycle
                    payload = entry[1]
                    # --- inlined Engine._on_token (hooks removed) ---
                    pe, thread, wave, inst_id, port, value, local = \
                        payload
                    if istore_over[pe]:
                        istore = istores[pe]
                        if not istore.hit(inst_id):
                            key = (pe, inst_id)
                            queue = ifetch.get(key)
                            if queue is None:
                                ifetch[key] = [payload]
                                istore_misses += 1
                                fetch_at = cycle + istore_penalty
                                b = buckets.get(fetch_at)
                                if b is None:
                                    buckets[fetch_at] = \
                                        [(ev_ifetch, key)]
                                    heap_push(cycle_heap, fetch_at)
                                else:
                                    b.append((ev_ifetch, key))
                            else:
                                queue.append(payload)
                            continue
                        istore_hits += 1
                    if d_is_store[inst_id]:
                        delay = 0 if (local and spec_fire) \
                            else match_delay
                        at = cycle + delay
                        item = (ev_dispatch,
                                (pe, thread, wave, inst_id,
                                 (port, value)))
                        b = buckets.get(at)
                        if b is None:
                            buckets[at] = [item]
                            heap_push(cycle_heap, at)
                        else:
                            b.append(item)
                        continue
                    # --- inlined MatchingTable.insert ---
                    table = matching[pe]
                    slot = d_slot[inst_id]
                    if mt_groups >= 1:
                        set_idx = (slot % mt_groups) * mt_k \
                            + (wave % mt_k)
                    else:
                        set_idx = (slot + wave) % mt_sets
                    if cycle != table._bank_cycle:
                        table._bank_cycle = cycle
                        used = table._bank_used = {}
                    else:
                        used = table._bank_used
                    bank = set_idx % mt_banks
                    if bank in used:
                        # bank conflict: reject, retry next cycle
                        input_rejects += 1
                        at = cycle + 1
                        b = buckets.get(at)
                        if b is None:
                            buckets[at] = [(ev_token, payload)]
                            heap_push(cycle_heap, at)
                        else:
                            b.append((ev_token, payload))
                        continue
                    used[bank] = 1
                    arity = d_arity[inst_id]
                    tkey = (thread, wave, inst_id)
                    rows = table._rows
                    row = rows.get(tkey)
                    if row is not None:
                        matching_inserts += 1
                        ports = row.ports
                        ports[port] = value
                        row.last_use = cycle
                        if len(ports) < arity:
                            continue
                        del rows[tkey]
                        table._by_set[set_idx].remove(row)
                    else:
                        ways = table._by_set.setdefault(set_idx, [])
                        if len(ways) >= mt_assoc:
                            # Oldest-first priority under thrashing
                            # (verbatim MatchingTable.insert): rank
                            # instances by (wave, thread, inst);
                            # evict the youngest resident row, or
                            # deflect the incoming token if it is
                            # itself the youngest.
                            victim = ways[0]
                            vk = victim.key
                            vbest = (vk[1], vk[0], vk[2])
                            for r in ways:
                                rk = r.key
                                rp = (rk[1], rk[0], rk[2])
                                if rp > vbest:
                                    vbest = rp
                                    victim = r
                            if (wave, thread, inst_id) >= vbest:
                                # deflected to the overflow table
                                matching_inserts += 1
                                matching_misses += 1
                                at = cycle + overflow_penalty
                                item = (ev_token,
                                        (pe, thread, wave, inst_id,
                                         port, value, False))
                                b = buckets.get(at)
                                if b is None:
                                    buckets[at] = [item]
                                    heap_push(cycle_heap, at)
                                else:
                                    b.append(item)
                                continue
                            matching_inserts += 1
                            matching_misses += 1
                            matching_evictions += 1
                            vk = victim.key
                            del rows[vk]
                            ways.remove(victim)
                            post_tokens(
                                cycle + overflow_penalty,
                                [
                                    (pe, vk[0], vk[1], vk[2],
                                     vport, vvalue, False)
                                    for vport, vvalue in
                                    victim.ports.items()
                                ],
                            )
                        else:
                            matching_inserts += 1
                        if arity > 1:
                            row = match_row(tkey, {port: value},
                                            cycle)
                            rows[tkey] = row
                            ways.append(row)
                            continue
                        # Single-operand fire: the row would be read
                        # once and discarded, so skip constructing it.
                        ports = {port: value}
                    # --- end inlined insert: the row fired ---
                    if arity == 2:
                        operands = (ports[0], ports[1])
                    elif arity == 1:
                        operands = (ports[0],)
                    else:
                        operands = tuple(
                            ports[p] for p in range(arity)
                        )
                    delay = 0 if (local and spec_fire) \
                        else match_delay
                    if delay == 0:
                        speculative_hits += 1
                    at = cycle + delay
                    item = (ev_dispatch,
                            (pe, thread, wave, inst_id, operands))
                    b = buckets.get(at)
                    if b is None:
                        buckets[at] = [item]
                        heap_push(cycle_heap, at)
                    else:
                        b.append(item)
                    # --- end inlined _on_token ---
                elif tag != token_batch:
                    processed += 1
                    if processed > max_events:
                        if horizon > eng._horizon:
                            eng._horizon = horizon
                        eng._requeue_bucket(cycle, bucket, index, 0)
                        raise EventBudgetExhausted(
                            f"{graph_name}: exceeded {max_events} "
                            f"events at cycle {cycle} (thrashing)",
                            eng._budget_stop(processed),
                        )
                    if cycle > horizon:
                        horizon = cycle
                    if tag == ev_dispatch:
                        on_dispatch(cycle, entry[1])
                    else:
                        handlers[tag](cycle, entry[1])
                else:
                    batch_index = 0
                    for payload in entry[1]:
                        processed += 1
                        if processed > max_events:
                            if horizon > eng._horizon:
                                eng._horizon = horizon
                            eng._requeue_bucket(
                                cycle, bucket, index, batch_index
                            )
                            raise EventBudgetExhausted(
                                f"{graph_name}: exceeded "
                                f"{max_events} events at cycle "
                                f"{cycle} (thrashing)",
                                eng._budget_stop(processed),
                            )
                        if cycle > horizon:
                            horizon = cycle
                        batch_index += 1
                        # --- inlined Engine._on_token (batch twin) ---
                        pe, thread, wave, inst_id, port, value, \
                            local = payload
                        if istore_over[pe]:
                            istore = istores[pe]
                            if not istore.hit(inst_id):
                                key = (pe, inst_id)
                                queue = ifetch.get(key)
                                if queue is None:
                                    ifetch[key] = [payload]
                                    istore_misses += 1
                                    fetch_at = cycle + istore_penalty
                                    b = buckets.get(fetch_at)
                                    if b is None:
                                        buckets[fetch_at] = \
                                            [(ev_ifetch, key)]
                                        heap_push(cycle_heap, fetch_at)
                                    else:
                                        b.append((ev_ifetch, key))
                                else:
                                    queue.append(payload)
                                continue
                            istore_hits += 1
                        if d_is_store[inst_id]:
                            delay = 0 if (local and spec_fire) \
                                else match_delay
                            at = cycle + delay
                            item = (ev_dispatch,
                                    (pe, thread, wave, inst_id,
                                     (port, value)))
                            b = buckets.get(at)
                            if b is None:
                                buckets[at] = [item]
                                heap_push(cycle_heap, at)
                            else:
                                b.append(item)
                            continue
                        # --- inlined MatchingTable.insert ---
                        table = matching[pe]
                        slot = d_slot[inst_id]
                        if mt_groups >= 1:
                            set_idx = (slot % mt_groups) * mt_k \
                                + (wave % mt_k)
                        else:
                            set_idx = (slot + wave) % mt_sets
                        if cycle != table._bank_cycle:
                            table._bank_cycle = cycle
                            used = table._bank_used = {}
                        else:
                            used = table._bank_used
                        bank = set_idx % mt_banks
                        if bank in used:
                            # bank conflict: reject, retry next cycle
                            input_rejects += 1
                            at = cycle + 1
                            b = buckets.get(at)
                            if b is None:
                                buckets[at] = [(ev_token, payload)]
                                heap_push(cycle_heap, at)
                            else:
                                b.append((ev_token, payload))
                            continue
                        used[bank] = 1
                        arity = d_arity[inst_id]
                        tkey = (thread, wave, inst_id)
                        rows = table._rows
                        row = rows.get(tkey)
                        if row is not None:
                            matching_inserts += 1
                            ports = row.ports
                            ports[port] = value
                            row.last_use = cycle
                            if len(ports) < arity:
                                continue
                            del rows[tkey]
                            table._by_set[set_idx].remove(row)
                        else:
                            ways = table._by_set.setdefault(
                                set_idx, [])
                            if len(ways) >= mt_assoc:
                                victim = ways[0]
                                vk = victim.key
                                vbest = (vk[1], vk[0], vk[2])
                                for r in ways:
                                    rk = r.key
                                    rp = (rk[1], rk[0], rk[2])
                                    if rp > vbest:
                                        vbest = rp
                                        victim = r
                                if (wave, thread, inst_id) >= vbest:
                                    # deflected to the overflow table
                                    matching_inserts += 1
                                    matching_misses += 1
                                    at = cycle + overflow_penalty
                                    item = (ev_token,
                                            (pe, thread, wave,
                                             inst_id, port, value,
                                             False))
                                    b = buckets.get(at)
                                    if b is None:
                                        buckets[at] = [item]
                                        heap_push(cycle_heap, at)
                                    else:
                                        b.append(item)
                                    continue
                                matching_inserts += 1
                                matching_misses += 1
                                matching_evictions += 1
                                vk = victim.key
                                del rows[vk]
                                ways.remove(victim)
                                post_tokens(
                                    cycle + overflow_penalty,
                                    [
                                        (pe, vk[0], vk[1], vk[2],
                                         vport, vvalue, False)
                                        for vport, vvalue in
                                        victim.ports.items()
                                    ],
                                )
                            else:
                                matching_inserts += 1
                            if arity > 1:
                                row = match_row(tkey, {port: value},
                                                cycle)
                                rows[tkey] = row
                                ways.append(row)
                                continue
                            # Single-operand fire: the row would be
                            # read once and discarded, so skip
                            # constructing it.
                            ports = {port: value}
                        # --- end inlined insert: the row fired ---
                        if arity == 2:
                            operands = (ports[0], ports[1])
                        elif arity == 1:
                            operands = (ports[0],)
                        else:
                            operands = tuple(
                                ports[p] for p in range(arity)
                            )
                        delay = 0 if (local and spec_fire) \
                            else match_delay
                        if delay == 0:
                            speculative_hits += 1
                        at = cycle + delay
                        item = (ev_dispatch,
                                (pe, thread, wave, inst_id,
                                 operands))
                        b = buckets.get(at)
                        if b is None:
                            buckets[at] = [item]
                            heap_push(cycle_heap, at)
                        else:
                            b.append(item)
                        # --- end inlined _on_token (batch twin) ---
    finally:
        if horizon > eng._horizon:
            eng._horizon = horizon
        stats.istore_hits += istore_hits
        stats.istore_misses += istore_misses
        stats.input_rejects += input_rejects
        stats.matching_inserts += matching_inserts
        stats.matching_misses += matching_misses
        stats.matching_evictions += matching_evictions
        stats.speculative_hits += speculative_hits
    return processed
