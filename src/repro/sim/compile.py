"""Compiled workloads: build a program once, simulate it many times.

A sweep attempt historically rebuilt everything from scratch --
``GraphBuilder`` re-emitted the dataflow graph, the engine re-decoded
every instruction into its flat hot-path arrays, and the reference
interpreter re-computed the expected outputs -- once *per attempt*,
including budget-escalation retries of the very same cell.  This
module hoists all of that out of the hot path:

* :func:`compile_graph` freezes a :class:`DataflowGraph` into a
  :class:`CompiledGraph`: immutable, flat per-instruction tuples
  (opcode, dispatch-kind code, arity, latency, destination lists,
  wave-advance k, FPU/alpha flags) that the engine indexes by
  ``inst_id`` instead of chasing ``Instruction``/``Opcode`` attribute
  chains through enum properties.
* :func:`compile_workload` bundles the instantiated graph with its
  compiled decode and (lazily) the reference outputs into a
  :class:`CompiledWorkload`.
* :func:`get_compiled` serves compiled workloads from a bounded
  per-process LRU cache keyed by the full build signature
  ``(workload, scale, threads, k, seed)`` -- changing the thread
  count (or any other knob) is a different key, so stale graphs can
  never be served.  Long-lived sweep workers warm this cache once per
  ``(workload, threads)`` and every subsequent attempt -- including
  forked attempt subprocesses, which inherit the warm cache through
  copy-on-write memory -- skips the rebuild entirely.

Compiled artifacts are shared across runs, so they must never be
mutated; everything the engine mutates per run (matching tables,
stats, reservation ledgers, the memory image -- ``MemoryHierarchy``
copies ``initial_memory``) lives outside the compiled object.  The
equivalence suite (``tests/sim/test_compile.py``) holds a fresh build
and a cache-served build to identical graphs *and* identical
simulation results for every workload in the registry.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..isa.graph import DataflowGraph
from ..isa.opcodes import Opcode
from ..workloads.base import Scale

__all__ = [
    "K_ALU",
    "K_STORE",
    "K_MEMORY",
    "K_OUTPUT",
    "K_HALT",
    "K_STEER",
    "K_WAVE_ADVANCE",
    "K_SPAWN",
    "CompiledGraph",
    "CompiledWorkload",
    "cache_info",
    "clear_cache",
    "compile_graph",
    "compile_workload",
    "get_compiled",
]

#: Dispatch-kind codes: which of the engine's EXECUTE/OUTPUT paths an
#: opcode takes, precomputed so ``_on_dispatch`` branches on one small
#: int instead of a chain of enum identity tests and ``OpInfo``
#: property reads.
K_ALU = 0           # evaluate() then deliver to dests
K_STORE = 1         # decoupled store half-operation
K_MEMORY = 2        # LOAD / MEMORY_NOP: store-buffer request
K_OUTPUT = 3        # architectural output sink
K_HALT = 4          # THREAD_HALT: consume the token
K_STEER = 5         # predicate-routed delivery
K_WAVE_ADVANCE = 6  # wave increment with k-loop bounding
K_SPAWN = 7         # THREAD_SPAWN: retag into a new thread


def _kind_of(opcode: Opcode) -> int:
    if opcode is Opcode.STORE:
        return K_STORE
    if opcode.is_memory:
        return K_MEMORY
    if opcode is Opcode.OUTPUT:
        return K_OUTPUT
    if opcode is Opcode.THREAD_HALT:
        return K_HALT
    if opcode is Opcode.STEER:
        return K_STEER
    if opcode is Opcode.WAVE_ADVANCE:
        return K_WAVE_ADVANCE
    if opcode is Opcode.THREAD_SPAWN:
        return K_SPAWN
    return K_ALU


class CompiledGraph:
    """Immutable flat decode of one dataflow graph.

    Every attribute is a tuple indexed by ``inst_id``; the hardware
    analogue is the decoded instruction store.  Never mutated after
    construction -- one instance may feed any number of concurrent
    engine runs.
    """

    __slots__ = (
        "graph",
        "opcode",
        "kind",
        "arity",
        "latency",
        "uses_fpu",
        "alpha_equivalent",
        "is_store",
        "dests",
        "false_dests",
        "immediate",
        "rows",
    )

    def __init__(self, graph: DataflowGraph) -> None:
        insts = graph.instructions
        self.graph = graph
        self.opcode = tuple(i.opcode for i in insts)
        self.kind = tuple(_kind_of(i.opcode) for i in insts)
        self.arity = tuple(i.opcode.arity for i in insts)
        self.latency = tuple(i.opcode.latency for i in insts)
        self.uses_fpu = tuple(i.opcode.uses_fpu for i in insts)
        self.alpha_equivalent = tuple(
            i.opcode.alpha_equivalent for i in insts
        )
        self.is_store = tuple(i.opcode is Opcode.STORE for i in insts)
        self.dests = tuple(i.dests for i in insts)
        self.false_dests = tuple(i.false_dests for i in insts)
        self.immediate = tuple(i.immediate for i in insts)
        # Packed dispatch rows: everything _on_dispatch needs in one
        # indexed load + tuple unpack (opcode, kind, arity, latency,
        # uses_fpu, alpha_equivalent, immediate, dests, false_dests).
        self.rows = tuple(
            (
                self.opcode[n],
                self.kind[n],
                self.arity[n],
                self.latency[n],
                self.uses_fpu[n],
                self.alpha_equivalent[n],
                self.immediate[n],
                self.dests[n],
                self.false_dests[n],
            )
            for n in range(len(insts))
        )

    def __len__(self) -> int:
        return len(self.opcode)


def compile_graph(graph: DataflowGraph) -> CompiledGraph:
    """Freeze ``graph`` into its flat hot-path decode."""
    return CompiledGraph(graph)


class CompiledWorkload:
    """One workload instantiation, compiled and ready to simulate.

    Bundles the graph, its flat decode, and the build signature; the
    reference outputs are computed on first use and memoised (a fault
    run never asks for them, so it never pays for them).  Immutable
    apart from that memo -- instances are shared across attempts and
    across forked attempt subprocesses.
    """

    __slots__ = ("key", "graph", "decoded", "_workload", "_expected")

    def __init__(self, key: tuple, graph: DataflowGraph,
                 decoded: CompiledGraph, workload) -> None:
        self.key = key
        self.graph = graph
        self.decoded = decoded
        self._workload = workload
        self._expected: Optional[list] = None

    @property
    def name(self) -> str:
        return self.key[0]

    @property
    def threads(self) -> Optional[int]:
        return self.key[2]

    def expected_outputs(self) -> list:
        """The workload's pure-Python reference outputs (memoised)."""
        if self._expected is None:
            _, scale, threads, _, seed = self.key
            self._expected = self._workload.expected(
                scale=Scale(scale), threads=threads, seed=seed
            )
        return self._expected


def _key(name: str, scale: Scale | str, threads: Optional[int],
         k: Optional[int], seed: int) -> tuple:
    scale_value = scale.value if isinstance(scale, Scale) else scale
    return (name, scale_value, threads, k, seed)


def compile_workload(
    name: str,
    scale: Scale | str = Scale.SMALL,
    threads: Optional[int] = None,
    k: Optional[int] = None,
    seed: int = 0,
) -> CompiledWorkload:
    """Build and compile one registry workload (no caching)."""
    from ..workloads.registry import get

    workload = get(name)
    key = _key(name, scale, threads, k, seed)
    graph = workload.instantiate(
        scale=Scale(key[1]), threads=threads, k=k, seed=seed
    )
    return CompiledWorkload(key, graph, compile_graph(graph), workload)


# ----------------------------------------------------------------------
# Per-process cache
# ----------------------------------------------------------------------
#: Upper bound on cached workloads per process; a full sweep touches
#: each (workload, threads) pair of its suite, comfortably below this.
CACHE_CAPACITY = 64

_lock = threading.Lock()
_cache: dict[tuple, CompiledWorkload] = {}
_hits = 0
_misses = 0
_evictions = 0


def get_compiled(
    name: str,
    scale: Scale | str = Scale.SMALL,
    threads: Optional[int] = None,
    k: Optional[int] = None,
    seed: int = 0,
) -> CompiledWorkload:
    """:func:`compile_workload` through the per-process LRU cache.

    The key is the complete build signature, so a different thread
    count (or scale, k, seed) can never be served a stale graph.  The
    expensive build runs outside the lock; a racing duplicate build is
    possible but harmless (last writer wins, both results are
    equivalent), and the lock itself protects the map for the
    supervisor's run-cells-from-several-threads contract.
    """
    global _hits, _misses, _evictions
    key = _key(name, scale, threads, k, seed)
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            # Refresh LRU recency (dicts preserve insertion order).
            del _cache[key]
            _cache[key] = cached
            return cached
        _misses += 1
    compiled = compile_workload(
        name, scale=key[1], threads=threads, k=k, seed=seed
    )
    with _lock:
        _cache[key] = compiled
        while len(_cache) > CACHE_CAPACITY:
            _cache.pop(next(iter(_cache)))
            _evictions += 1
    return compiled


def cache_info() -> dict:
    """Hit/miss/eviction/size counters for the per-process compile
    cache.  An eviction streak in a sweep means the working set
    outgrew :data:`CACHE_CAPACITY` and cells are silently rebuilding
    graphs -- ``repro stats`` surfaces these counters for exactly that
    diagnosis."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
            "size": len(_cache),
            "capacity": CACHE_CAPACITY,
        }


def clear_cache() -> None:
    """Drop every cached workload and reset the counters (tests)."""
    global _hits, _misses, _evictions
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
        _evictions = 0
