"""Integer event tags for the engine's event calendar.

The hot loop dispatches calendar entries through a precomputed
bound-method table indexed by these tags (an integer index beats the
historical string-compare chain), so the tag values are *positional*:
``Engine._handlers[tag]`` must line up with the constants below, and
``TAG_NAMES``/``TAG_PHASES`` are parallel tuples.

``EV_TOKEN_BATCH`` carries a tuple of same-cycle token payloads posted
back-to-back by one delivery fan-out; the loop unpacks it token by
token, charging the event budget per token, so batching changes heap
traffic but never ``SimStats`` (``events_processed`` counts tokens,
exactly as when each travelled alone).

Humans never see the integers: :func:`tag_name` and :func:`tag_phase`
map them back for :mod:`repro.obs.profile` output, the Chrome trace
exporter, and error messages.
"""

from __future__ import annotations

#: Calendar event tags, in handler-table order.
EV_TOKEN = 0        # operand arrival at a PE (INPUT/MATCH stages)
EV_DISPATCH = 1     # instruction dispatch (DISPATCH/EXECUTE/OUTPUT)
EV_SBADDR = 2       # address operand reaching a store buffer
EV_SBDATA = 3       # data operand reaching a store buffer
EV_IFETCH = 4       # instruction-store fetch completion
EV_RETIRE = 5       # wave retirement bookkeeping
EV_TOKEN_BATCH = 6  # tuple of same-cycle token payloads (one heap entry)

#: Human-readable names, indexed by tag.
TAG_NAMES = (
    "token",
    "dispatch",
    "sbaddr",
    "sbdata",
    "ifetch",
    "retire",
    "token_batch",
)

#: Profile phase charged per tag (repro.obs.profile.PHASES).  The
#: finer stages (match, execute, deliver) are attributed by inner
#: hooks inside the handlers; stack-based self-time accounting in
#: PhaseProfile keeps the phases disjoint.
TAG_PHASES = (
    "input",    # token
    "dispatch",  # dispatch
    "memory",   # sbaddr
    "memory",   # sbdata
    "other",    # ifetch
    "other",    # retire
    "input",    # token_batch
)


def tag_name(tag: int) -> str:
    """Human-readable name of a calendar tag (``"tag<n>"`` for
    unregistered values, so diagnostics never raise)."""
    if 0 <= tag < len(TAG_NAMES):
        return TAG_NAMES[tag]
    return f"tag{tag}"


def tag_phase(tag: int) -> str:
    """Profile phase a calendar tag is charged to."""
    if 0 <= tag < len(TAG_PHASES):
        return TAG_PHASES[tag]
    return "other"
