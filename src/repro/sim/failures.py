"""Failure taxonomy for simulation runs.

The engine used to signal every abnormal stop with a single bare
``SimulationDeadlock``.  A design-space sweep needs to *account* for
failures, not merely observe them: a configuration that genuinely
deadlocks is broken forever, while one that merely exhausted its cycle
or event budget might complete under a larger budget, and a run that
hung at the process level says nothing about the architecture at all.
This module distinguishes those cases and attaches structured
diagnostics so a supervisor (``repro.harness``) can decide whether to
retry, escalate, skip, or record.

``SimulationDeadlock`` is kept as the umbrella base class so existing
``except SimulationDeadlock`` sites keep working; new code should
catch the specific subclasses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional


@dataclass(frozen=True)
class FailureDiagnostics:
    """Structured state of the machine at the moment of failure."""

    cycles: int = 0  # simulated cycles reached
    events_processed: int = 0
    events_pending: int = 0  # calendar entries still queued
    tokens_in_flight: int = 0  # buffered operands awaiting a partner
    #: Buffered-work depth per queue class (matching rows, parked
    #: instruction fetches, k-bound stalled wave advances, calendar).
    queue_depths: dict[str, int] = field(default_factory=dict)
    max_cycles: Optional[int] = None
    max_events: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FailureDiagnostics":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class SimulationDeadlock(RuntimeError):
    """Base class for every abnormal simulation stop.

    Kept under its historical name for backward compatibility; the
    subclasses below say *why* the run stopped.  ``diagnostics`` is a
    :class:`FailureDiagnostics` when the engine raised the failure, or
    ``None`` for supervisor-level failures (timeout, crash).
    """

    def __init__(
        self,
        message: str,
        diagnostics: Optional[FailureDiagnostics] = None,
    ) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


#: Preferred alias for new code.
SimulationFailure = SimulationDeadlock


class TrueDeadlock(SimulationDeadlock):
    """The event calendar drained with work still buffered: some token
    is waiting for a partner that can never arrive."""


class CycleBudgetExhausted(SimulationDeadlock):
    """Simulated time passed ``max_cycles`` before the program
    finished.  Potentially transient: a larger budget may complete."""


class EventBudgetExhausted(SimulationDeadlock):
    """The engine processed ``max_events`` calendar entries -- the
    wall-time bound for thrashing configurations that generate many
    retry events per simulated cycle.  Potentially transient."""


class WatchdogTimeout(SimulationDeadlock):
    """A supervised run exceeded its wall-clock allowance and was
    killed.  Raised/recorded by the harness, never by the engine."""


class WorkerCrash(SimulationDeadlock):
    """A supervised subprocess died without reporting a result
    (signal, OOM kill, interpreter abort)."""


class PoisonedCell(SimulationDeadlock):
    """A cell whose workers crashed so many consecutive times that the
    campaign circuit breaker quarantined it: further retries would
    only burn the retry budget.  Terminal -- recorded with ledger
    status ``poisoned`` and never re-dispatched on resume; the rest of
    the campaign continues (graceful degradation)."""


#: The budget classes a supervisor may retry with escalated budgets.
TRANSIENT_CLASSES = (CycleBudgetExhausted, EventBudgetExhausted)

#: Name -> class registry for (de)serialising failure records.
FAILURE_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SimulationDeadlock,
        TrueDeadlock,
        CycleBudgetExhausted,
        EventBudgetExhausted,
        WatchdogTimeout,
        WorkerCrash,
        PoisonedCell,
    )
}


def classify(name: str) -> type:
    """The failure class for a recorded class name (base class for
    unknown names, so old ledgers stay readable)."""
    return FAILURE_CLASSES.get(name, SimulationDeadlock)


def is_transient(name_or_exc) -> bool:
    """Whether a failure might succeed under a larger budget."""
    if isinstance(name_or_exc, BaseException):
        return isinstance(name_or_exc, TRANSIENT_CLASSES)
    return classify(str(name_or_exc)) in TRANSIENT_CLASSES
