"""Subpackage of the cycle-level simulator; see repro.sim."""
