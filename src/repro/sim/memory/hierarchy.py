"""The data-memory hierarchy (Section 3.3.2).

Per cluster: a 4-way set-associative L1 with 128-byte lines (3-cycle
hit, 4 accesses/cycle).  Chip-wide: a directory-based MESI protocol
keeps the L1s coherent, with the directory colocated with the banks of
an address-interleaved L2 (20-30 cycle hits depending on distance).
Main memory costs 200 cycles.  All coherence traffic crosses the
inter-cluster mesh and is accounted as memory traffic (Figure 8).

Transactions are modelled atomically at computed completion times with
per-line serialisation standing in for MSHR transient states: two
requests to the same line are processed back-to-back in arrival order,
each seeing the directory state the previous one left behind.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ...area.floorplan import Floorplan
from ...core.config import WaveScalarConfig
from ..network.topology import BandwidthLedger as _PortLedger
from ..network.topology import Interconnect
from ..stats import SimStats

#: MESI stable states tracked per L1 line.
MODIFIED, EXCLUSIVE, SHARED = "M", "E", "S"


class CacheArray:
    """A set-associative, LRU cache array tracking line presence."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = max(1, sets)
        self.ways = max(1, ways)
        # Sets materialise on first touch: a sweep cell touches a tiny
        # fraction of a megabyte-class L2's sets, so eagerly building
        # one OrderedDict per set dominated engine construction.
        self._data: dict[int, OrderedDict[int, str]] = {}

    def _set_of(self, line: int) -> OrderedDict[int, str]:
        index = line % self.sets
        ways = self._data.get(index)
        if ways is None:
            ways = self._data[index] = OrderedDict()
        return ways

    def lookup(self, line: int) -> str | None:
        ways = self._set_of(line)
        state = ways.get(line)
        if state is not None:
            ways.move_to_end(line)
        return state

    def insert(self, line: int, state: str) -> tuple[int, str] | None:
        """Insert/refresh ``line``; returns the evicted (line, state)
        if a victim was displaced."""
        ways = self._set_of(line)
        victim = None
        if line not in ways and len(ways) >= self.ways:
            victim = ways.popitem(last=False)
        ways[line] = state
        ways.move_to_end(line)
        return victim

    def set_state(self, line: int, state: str) -> None:
        ways = self._set_of(line)
        if line in ways:
            ways[line] = state

    def remove(self, line: int) -> str | None:
        return self._set_of(line).pop(line, None)

    def __contains__(self, line: int) -> bool:
        return line in self._set_of(line)


@dataclass(slots=True)
class DirectoryEntry:
    """Directory knowledge about one line's L1 copies."""

    owner: int | None = None  # cluster holding M/E
    sharers: set[int] = field(default_factory=set)


class MemoryHierarchy:
    """Coherent two-level cache hierarchy over the cluster grid."""

    def __init__(
        self,
        config: WaveScalarConfig,
        network: Interconnect,
        stats: SimStats,
        backing: dict[int, int | float] | None = None,
    ) -> None:
        self.config = config
        self.network = network
        self.stats = stats
        self.data: dict[int, int | float] = dict(backing or {})
        self.l1 = [
            CacheArray(config.l1_sets, config.l1_associativity)
            for _ in range(config.clusters)
        ]
        self._l1_ports = [
            _PortLedger(config.l1_ports) for _ in range(config.clusters)
        ]
        if config.l2_mb > 0:
            l2_ways = 8
            self.l2: CacheArray | None = CacheArray(
                max(1, config.l2_lines // l2_ways), l2_ways
            )
            self.n_banks = max(4, config.clusters)
        else:
            self.l2 = None
            self.n_banks = max(4, config.clusters)
        self.directory: dict[int, DirectoryEntry] = {}
        self._line_busy: dict[int, int] = {}
        # Physical geometry: L2 banks sit on the perimeter of the
        # cluster array; their access latency is distance-dependent
        # (Section 3.3.2's 20-30 cycle band).
        self.floorplan = Floorplan(config)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def line_of(self, word_addr: int) -> int:
        return int(word_addr) // self.config.line_words

    def bank_home(self, line: int) -> int:
        """Cluster adjacent to the L2 bank/directory slice for ``line``."""
        return (line % self.n_banks) % self.config.clusters

    # ------------------------------------------------------------------
    # Data access (functional): the store buffer performs reads/writes
    # at issue time; the hierarchy provides the timing.
    # ------------------------------------------------------------------
    def read_word(self, word_addr: int) -> int | float:
        return self.data.get(int(word_addr), 0)

    def write_word(self, word_addr: int, value: int | float) -> None:
        self.data[int(word_addr)] = value

    # ------------------------------------------------------------------
    # Timed access
    # ------------------------------------------------------------------
    def access(
        self, cluster: int, word_addr: int, is_store: bool, cycle: int
    ) -> int:
        """Perform one L1 access from ``cluster`` starting at ``cycle``;
        returns the completion cycle.  Updates caches, directory and
        traffic statistics."""
        cfg = self.config
        line = self.line_of(word_addr)
        start = self._l1_ports[cluster].reserve(cycle)
        start = max(start, self._line_busy.get(line, 0))

        state = self.l1[cluster].lookup(line)
        if state is not None and (not is_store or state in (MODIFIED,
                                                            EXCLUSIVE)):
            # L1 hit with sufficient permission.
            self.stats.l1_hits += 1
            if is_store and state == EXCLUSIVE:
                self.l1[cluster].set_state(line, MODIFIED)
            done = start + cfg.l1_hit_latency
            self._line_busy[line] = done
            return done

        # Miss (or store upgrade).  Consult the directory.
        self.stats.l1_misses += 1
        done = self._miss(cluster, line, is_store, start, upgrade=state
                          is not None)
        self._line_busy[line] = done
        return done

    # ------------------------------------------------------------------
    def _miss(
        self, cluster: int, line: int, is_store: bool, start: int,
        upgrade: bool,
    ) -> int:
        cfg = self.config
        home = self.bank_home(line)
        entry = self.directory.setdefault(line, DirectoryEntry())
        t = start + cfg.l1_hit_latency  # detect the miss

        # Request travels to the directory at the line's home bank.
        t = self._coherence_hop(cluster, home, t)

        if entry.owner is not None and entry.owner != cluster:
            # Another cluster holds M/E: forward, owner writes back and
            # downgrades (to S on a load, to I on a store).
            owner = entry.owner
            t = self._coherence_hop(home, owner, t)
            t += cfg.l1_hit_latency  # owner L1 probe
            self.stats.coherence_messages += 1
            if is_store:
                self.l1[owner].remove(line)
                self.stats.invalidations += 1
                entry.owner = None
                entry.sharers.discard(owner)
            else:
                self.l1[owner].set_state(line, SHARED)
                entry.owner = None
                entry.sharers.add(owner)
            if self.l2 is not None:
                self.l2.insert(line, MODIFIED)
            # Data forwarded owner -> requester.
            t = self._coherence_hop(owner, cluster, t)
        else:
            if is_store and entry.sharers - {cluster}:
                # Invalidate all other sharers (overlapped; charge one
                # round trip to the farthest sharer).
                worst = 0
                for sharer in sorted(entry.sharers - {cluster}):
                    self.l1[sharer].remove(line)
                    self.stats.invalidations += 1
                    self.stats.coherence_messages += 1
                    hop = self._coherence_latency(home, sharer)
                    worst = max(worst, 2 * hop)
                entry.sharers = {cluster} if cluster in entry.sharers \
                    else set()
                t += worst
            # Fetch the data: L2 (if present and holding) else DRAM.
            if self.l2 is not None and self.l2.lookup(line) is not None:
                self.stats.l2_hits += 1
                t += self._l2_latency(cluster, line)
            else:
                self.stats.l2_misses += 1
                if self.l2 is not None:
                    t += self._l2_latency(cluster, line)
                    victim = self.l2.insert(line, SHARED)
                    if victim is not None:
                        pass  # L2 writeback to DRAM, off the critical path
                t += cfg.dram_latency
            # Data reply home -> requester.
            t = self._coherence_hop(home, cluster, t)

        # Install in the requester's L1.
        new_state = MODIFIED if is_store else (
            EXCLUSIVE if not entry.sharers and entry.owner is None else SHARED
        )
        victim = self.l1[cluster].insert(line, new_state)
        if victim is not None:
            self._evict(cluster, *victim)
        if new_state in (MODIFIED, EXCLUSIVE):
            entry.owner = cluster
            entry.sharers.discard(cluster)
        else:
            entry.sharers.add(cluster)
        if upgrade and new_state == MODIFIED:
            # The stale S copy is subsumed by the refreshed M line.
            entry.sharers.discard(cluster)
        return t

    def _evict(self, cluster: int, line: int, state: str) -> None:
        """Handle an L1 victim: update directory, write back if dirty."""
        entry = self.directory.get(line)
        if entry is not None:
            if entry.owner == cluster:
                entry.owner = None
            entry.sharers.discard(cluster)
        if state == MODIFIED:
            # Writeback to L2/DRAM: traffic only, off the critical path.
            home = self.bank_home(line)
            if cluster != home:
                self.stats.coherence_messages += 1
            if self.l2 is not None:
                self.l2.insert(line, MODIFIED)

    # ------------------------------------------------------------------
    def _coherence_latency(self, a: int, b: int) -> int:
        if a == b:
            return 1
        return self.config.intercluster_base + self.config.cluster_distance(
            a, b
        )

    def _coherence_hop(self, a: int, b: int, cycle: int) -> int:
        """One coherence message a -> b departing at ``cycle``."""
        if a == b:
            return cycle + 1
        route = self.network.route_clusters(a, b, cycle)
        self.stats.coherence_messages += 1
        return cycle + route

    def _l2_latency(self, cluster: int, line: int) -> int:
        """Distance-dependent bank access (floorplan geometry)."""
        bank = line % self.floorplan.n_banks
        return self.floorplan.l2_latency(cluster, bank)
