"""The hierarchical interconnect model.

Implements the four network levels of Section 3.4 as a latency +
bandwidth model:

* **intra-pod** -- producer and consumer share a bypass network:
  1 cycle, no contention (dedicated wires).
* **intra-domain** -- each PE owns a dedicated broadcast result bus:
  one result per cycle per PE (the PE-side serialisation), 5 cycles of
  wire/pipeline latency.
* **intra-cluster** -- through the sending domain's NET pseudo-PE, over
  the complete point-to-point network, into the receiving domain's NET
  pseudo-PE, which can inject one operand per cycle into its domain:
  9 cycles base latency.
* **inter-cluster** -- dimension-order routed over the 2D mesh of
  cluster switches; each port moves ``mesh_bandwidth`` operands per
  cycle per virtual channel direction; latency is 9 + hop count.

Bandwidth is modelled with per-resource reservation ledgers: a message
reserves the earliest cycle with a free slot on every serialised
resource on its path, which yields queueing delay under contention
without simulating individual buffer slots.  The 8-entry output queues
of the mesh are reflected in a cap on how far ahead reservations may
run; beyond it the sender stalls (back-pressure).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.config import WaveScalarConfig
from ..stats import SimStats


class BandwidthLedger:
    """Tracks slot reservations for a resource serving N ops/cycle."""

    __slots__ = ("per_cycle", "_used", "_floor")

    def __init__(self, per_cycle: int) -> None:
        self.per_cycle = per_cycle
        self._used: dict[int, int] = {}
        self._floor = 0

    def reserve(self, cycle: int) -> int:
        """Reserve the earliest slot at or after ``cycle``; returns the
        cycle actually granted."""
        floor = self._floor
        t = cycle if cycle > floor else floor
        used = self._used
        get = used.get
        count = get(t, 0)
        per_cycle = self.per_cycle
        while count >= per_cycle:
            t += 1
            count = get(t, 0)
        used[t] = count + 1
        # Opportunistic cleanup: once a cycle saturates below the floor
        # it can never be queried again.
        if len(used) > 4096:
            floor = min(used)
            for key in [k for k in used if k < floor]:
                del used[key]
        return t

    def congestion(self, cycle: int) -> int:
        """How many cycles a reservation at ``cycle`` would wait."""
        t = max(cycle, self._floor)
        while self._used.get(t, 0) >= self.per_cycle:
            t += 1
        return t - cycle


@dataclass(frozen=True, slots=True)
class Route:
    """The cost of sending one message."""

    level: str
    latency: int
    hops: int
    queue_wait: int


class Interconnect:
    """Latency/bandwidth model of the full hierarchy.

    Routing decomposes into a *static* part -- the level between two
    PEs, the dimension-order link sequence between two clusters, the
    base latencies -- and a *dynamic* part, the bandwidth-ledger
    reservations.  The static part is pure topology math, identical
    for every message between the same endpoints, so it is memoised
    per ``(src, dst)`` pair: the per-token hot path reduces to a dict
    hit plus the reservations that actually depend on ``cycle``.
    """

    def __init__(self, config: WaveScalarConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        p = config
        # One result bus per PE (1 result/cycle onto the domain bus).
        self._pe_bus = [
            BandwidthLedger(1) for _ in range(p.total_pes)
        ]
        # One NET pseudo-PE per domain: 1 operand/cycle injected into
        # the domain from outside.
        n_domains = p.clusters * p.domains_per_cluster
        self._net_in = [
            BandwidthLedger(p.net_pe_bandwidth) for _ in range(n_domains)
        ]
        # Mesh links: per (cluster, direction) with `mesh_bandwidth`
        # ops/cycle.  Directions: 0=E 1=W 2=N 3=S.
        self._mesh_links: dict[tuple[int, int], BandwidthLedger] = {}
        # Static-topology memos (pure functions of the endpoints).
        self._total_pes = p.total_pes
        self._pes_per_domain = p.pes_per_domain
        self._pes_per_cluster = p.pes_per_cluster
        self._pods_enabled = p.pods_enabled
        self._pod_route = Route("pod", p.pod_latency, 0, 0)
        self._level_cache: dict[int, str] = {}
        self._mesh_paths: \
            dict[int, tuple[tuple[BandwidthLedger, ...], int]] = {}

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def pod_of(self, pe: int) -> int:
        return pe // 2

    def domain_of(self, pe: int) -> int:
        return pe // self._pes_per_domain

    def cluster_of(self, pe: int) -> int:
        return pe // self._pes_per_cluster

    def level_between(self, src_pe: int, dst_pe: int) -> str:
        key = src_pe * self._total_pes + dst_pe
        level = self._level_cache.get(key)
        if level is None:
            level = self._classify(src_pe, dst_pe)
            self._level_cache[key] = level
        return level

    def _classify(self, src_pe: int, dst_pe: int) -> str:
        if self._pods_enabled and self.pod_of(src_pe) == self.pod_of(
            dst_pe
        ):
            return "pod"
        if src_pe == dst_pe:
            return "pod"
        if self.domain_of(src_pe) == self.domain_of(dst_pe):
            return "domain"
        if self.cluster_of(src_pe) == self.cluster_of(dst_pe):
            return "cluster"
        return "grid"

    def _mesh_link(self, cluster: int, direction: int) -> BandwidthLedger:
        key = (cluster, direction)
        ledger = self._mesh_links.get(key)
        if ledger is None:
            ledger = BandwidthLedger(self.config.mesh_bandwidth)
            self._mesh_links[key] = ledger
        return ledger

    def _mesh_path(
        self, src_cluster: int, dst_cluster: int
    ) -> tuple[tuple[BandwidthLedger, ...], int]:
        """The dimension-order (X then Y) link sequence between two
        clusters -- static topology, computed once per pair."""
        key = src_cluster * self.config.clusters + dst_cluster
        cached = self._mesh_paths.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        x0, y0 = cfg.cluster_xy(src_cluster)
        x1, y1 = cfg.cluster_xy(dst_cluster)
        cols, _ = cfg.grid_shape
        links: list[BandwidthLedger] = []
        cx, cy = x0, y0
        while cx != x1:
            direction = 0 if x1 > cx else 1
            links.append(self._mesh_link(cy * cols + cx, direction))
            cx += 1 if x1 > cx else -1
        while cy != y1:
            direction = 3 if y1 > cy else 2
            links.append(self._mesh_link(cy * cols + cx, direction))
            cy += 1 if y1 > cy else -1
        cached = (tuple(links), len(links))
        self._mesh_paths[key] = cached
        return cached

    def _route_mesh(self, src_cluster: int, dst_cluster: int,
                    cycle: int) -> tuple[int, int, int]:
        """Reserve each link of the (memoised) dimension-order path;
        returns (ready_cycle, hops, queue_wait)."""
        links, hops = self._mesh_path(src_cluster, dst_cluster)
        t = cycle
        wait = 0
        for link in links:
            granted = link.reserve(t)
            wait += granted - t
            t = granted + 1  # one cycle per hop
        return t, hops, wait

    # ------------------------------------------------------------------
    # The main entry point
    # ------------------------------------------------------------------
    def route(
        self, src_pe: int, dst_pe: int, cycle: int, kind: str
    ) -> Route:
        """Reserve the path for one message leaving ``src_pe`` at
        ``cycle``; returns level/latency/hops.

        The caller delivers the message at ``cycle + route.latency``.
        """
        cfg = self.config
        level = self.level_between(src_pe, dst_pe)

        if level == "pod":
            route = self._pod_route
            self.stats.record_message(kind, "pod", route.latency)
            return route

        # All other levels leave the PE on its result bus.
        bus_granted = self._pe_bus[src_pe].reserve(cycle)
        wait = bus_granted - cycle

        if level == "domain":
            latency = wait + cfg.domain_latency
            self.stats.record_message(kind, "domain", latency)
            return Route("domain", latency, 0, wait)

        if level == "cluster":
            # Through sender's NET pseudo-PE, point-to-point link, into
            # the receiver domain's NET pseudo-PE (1 op/cycle inject).
            inject = self._net_in[self.domain_of(dst_pe)].reserve(
                bus_granted + cfg.cluster_latency - 1
            )
            latency = inject + 1 - cycle
            self.stats.record_message(kind, "cluster", latency)
            return Route("cluster", latency, 0, wait)

        # Inter-cluster: bus, NET, mesh, NET, domain inject.
        src_cluster = self.cluster_of(src_pe)
        return self._route_grid(src_pe, dst_pe, src_cluster, cycle,
                                bus_granted, kind)

    def _route_grid(self, src_pe: int, dst_pe: int, src_cluster: int,
                    cycle: int, bus_granted: int, kind: str) -> Route:
        cfg = self.config
        bus_wait = bus_granted - cycle
        dst_cluster = self.cluster_of(dst_pe)
        mesh_entry = bus_granted + 4  # reach the cluster switch
        mesh_exit, hops, mesh_wait = self._route_mesh(
            src_cluster, dst_cluster, mesh_entry
        )
        inject = self._net_in[self.domain_of(dst_pe)].reserve(
            mesh_exit + cfg.intercluster_base - 5
        )
        latency = inject + 1 - cycle
        self.stats.record_message(kind, "grid", latency, hops)
        self.stats.mesh_queue_wait_sum += mesh_wait
        self.stats.mesh_messages += 1
        return Route("grid", latency, hops, bus_wait + mesh_wait)

    # ------------------------------------------------------------------
    # Cluster-to-cluster memory/coherence messages (store buffer and L1
    # traffic use the switch port dedicated to them -- Section 3.4.3).
    # ------------------------------------------------------------------
    def route_clusters(self, src: int, dst: int, cycle: int) -> int:
        """Latency of one memory-system message between two clusters,
        including mesh queueing.  Recorded as memory traffic."""
        cfg = self.config
        if src == dst:
            self.stats.record_message("memory", "cluster", 1)
            return 1
        mesh_entry = cycle + 4
        mesh_exit, hops, mesh_wait = self._route_mesh(src, dst, mesh_entry)
        latency = (mesh_exit - cycle) + (cfg.intercluster_base - 5)
        self.stats.record_message("memory", "grid", latency, hops)
        self.stats.mesh_queue_wait_sum += mesh_wait
        self.stats.mesh_messages += 1
        return latency
