"""Simulation statistics.

Collects everything the paper's evaluation reports: AIPC, network
traffic by hierarchy level and kind (operand vs memory, Figure 8),
matching-table and instruction-store miss rates (Section 4.2), cache
behaviour, store-buffer activity, and message latencies (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Interconnect hierarchy levels, innermost first.
LEVELS = ("pod", "domain", "cluster", "grid")

#: Message kinds distinguished in Figure 8.
KINDS = ("operand", "memory")


@dataclass
class SimStats:
    """Mutable counters filled in by the engine during simulation."""

    cycles: int = 0
    dynamic_instructions: int = 0
    alpha_instructions: int = 0
    events_processed: int = 0  # engine calendar events this run

    # Traffic: messages[kind][level] counts one entry per message.
    messages: dict[str, dict[str, int]] = field(
        default_factory=lambda: {k: {lv: 0 for lv in LEVELS} for k in KINDS}
    )
    message_latency_sum: int = 0
    message_count: int = 0
    message_hops_sum: int = 0
    mesh_queue_wait_sum: int = 0
    mesh_messages: int = 0

    # Matching table.
    matching_inserts: int = 0
    matching_misses: int = 0  # no row available: token overflows
    matching_evictions: int = 0

    # Instruction store.
    istore_hits: int = 0
    istore_misses: int = 0

    # PE activity.
    dispatches: int = 0
    speculative_hits: int = 0
    input_rejects: int = 0  # bank-conflict retries

    # Store buffer.
    memory_ops: int = 0
    loads: int = 0
    stores: int = 0
    psq_captures: int = 0
    psq_stalls: int = 0
    sb_window_stalls: int = 0  # requests beyond the 4-wave window
    waves_retired: int = 0

    # Caches.
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    coherence_messages: int = 0
    invalidations: int = 0

    # Outputs observed (inst id -> values) for architectural checks.
    outputs: dict[int, list] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording helpers (kept tiny; they are on the hot path)
    # ------------------------------------------------------------------
    def record_message(
        self, kind: str, level: str, latency: int, hops: int = 0
    ) -> None:
        # try/except keeps the well-formed path allocation- and
        # branch-free; the KeyError rewrite only runs on caller bugs.
        try:
            self.messages[kind][level] += 1
        except KeyError:
            if kind not in self.messages:
                raise ValueError(
                    f"unknown message kind {kind!r}; expected one of "
                    f"{KINDS}"
                ) from None
            raise ValueError(
                f"unknown hierarchy level {level!r}; expected one of "
                f"{LEVELS}"
            ) from None
        self.message_latency_sum += latency
        self.message_count += 1
        self.message_hops_sum += hops

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def aipc(self) -> float:
        """Alpha-equivalent instructions per cycle (the paper's metric)."""
        return self.alpha_instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        return self.dynamic_instructions / self.cycles if self.cycles else 0.0

    def traffic_fractions(self) -> dict[str, float]:
        """Fraction of all messages at each hierarchy level (Figure 8)."""
        total = sum(sum(per.values()) for per in self.messages.values())
        if total == 0:
            return {lv: 0.0 for lv in LEVELS}
        return {
            lv: sum(self.messages[k][lv] for k in KINDS) / total
            for lv in LEVELS
        }

    def kind_fractions(self) -> dict[str, float]:
        """Operand vs memory share of all messages (Figure 8)."""
        total = sum(sum(per.values()) for per in self.messages.values())
        if total == 0:
            return {k: 0.0 for k in KINDS}
        return {
            k: sum(self.messages[k].values()) / total for k in KINDS
        }

    def within_cluster_fraction(self) -> float:
        fr = self.traffic_fractions()
        return fr["pod"] + fr["domain"] + fr["cluster"]

    @property
    def average_message_latency(self) -> float:
        if not self.message_count:
            return 0.0
        return self.message_latency_sum / self.message_count

    @property
    def average_message_hops(self) -> float:
        if not self.message_count:
            return 0.0
        return self.message_hops_sum / self.message_count

    @property
    def average_mesh_queue_wait(self) -> float:
        """Mean cycles an inter-cluster message waited for link slots --
        the congestion proxy used in Section 4.3."""
        if not self.mesh_messages:
            return 0.0
        return self.mesh_queue_wait_sum / self.mesh_messages

    @property
    def matching_miss_rate(self) -> float:
        if not self.matching_inserts:
            return 0.0
        return self.matching_misses / self.matching_inserts

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    def output_values(self) -> list:
        result = []
        for inst_id in sorted(self.outputs):
            result.extend(self.outputs[inst_id])
        return result

    def summary(self) -> str:
        fr = self.traffic_fractions()
        return (
            f"cycles={self.cycles} alpha={self.alpha_instructions} "
            f"AIPC={self.aipc:.3f} "
            f"traffic[pod/dom/clu/grid]="
            f"{fr['pod']:.0%}/{fr['domain']:.0%}/"
            f"{fr['cluster']:.0%}/{fr['grid']:.0%} "
            f"mt-miss={self.matching_miss_rate:.1%} "
            f"L1-miss={self.l1_miss_rate:.1%}"
        )
