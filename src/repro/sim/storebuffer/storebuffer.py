"""The wave-ordered store buffer (Section 3.3.1).

One store buffer per cluster.  It receives memory-request messages from
PEs (via their domain's MEM pseudo-PE), reconstructs program order from
the ``<prev, this, next>`` annotations, and issues operations to the
local L1 in that order.

Key behaviours reproduced from the paper:

* **Wave sequencing** -- all memory requests of a wave are managed by
  one buffer; waves of a thread issue strictly in order, with up to
  ``storebuffer_waves`` (4) waves in flight at once.
* **Ripple resolution** -- an operation may issue when its ``prev``
  names the last issued operation, or when the last issued operation's
  ``next`` names it (resolving '?' links across branches).
* **Store decoupling** -- store addresses and store data travel as
  separate messages.  A store whose address is ready but whose data is
  missing is parked in a *partial store queue* (2 queues of 4 entries);
  subsequent operations to the same address are captured in the queue,
  and everything drains when the data arrives.  When no partial store
  queue is free the chain stalls (the paper found 2 sufficient).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ...core.config import WaveScalarConfig
from ...isa.graph import DataflowGraph
from ...isa.opcodes import Opcode
from ...isa.token import Value
from ...isa.waves import UNKNOWN, WAVE_END, WAVE_START
from ..memory.hierarchy import MemoryHierarchy
from ..stats import SimStats


@dataclass(slots=True)
class MemOp:
    """One memory operation buffered in the ordering table."""

    inst_id: int
    thread: int
    wave: int
    seq: int
    prev: int
    next: int
    is_load: bool
    is_store: bool
    addr: Optional[int] = None
    data: Optional[Value] = None
    arrived: int = 0

    @property
    def data_ready(self) -> bool:
        return not self.is_store or self.data is not None

    @property
    def addr_ready(self) -> bool:
        return self.addr is not None


@dataclass(slots=True)
class _WaveContext:
    """Ordering-table state for one (thread, wave)."""

    pending: dict[int, MemOp] = field(default_factory=dict)
    last_issued: int = WAVE_START
    last_next: int = UNKNOWN
    complete: bool = False
    #: Latest completion time of any performed op: the wave's
    #: *retirement* time, which gates k-loop bounding.
    max_done: int = 0


@dataclass(slots=True)
class _PartialStoreQueue:
    """A partial store queue: an address waiting for its store data,
    plus trailing same-address operations captured behind it."""

    addr: int
    waiting: MemOp | None = None
    captured: list[MemOp] = field(default_factory=list)

    @property
    def full(self) -> bool:
        return False  # capacity enforced by the store buffer


class StoreBuffer:
    """Wave-ordered store buffer for one cluster."""

    def __init__(
        self,
        cluster: int,
        config: WaveScalarConfig,
        graph: DataflowGraph,
        memory: MemoryHierarchy,
        stats: SimStats,
        complete_callback: Callable[[MemOp, Value, int], None],
        retire_callback: Callable[[int, int, int], None],
    ) -> None:
        """``complete_callback(op, value, cycle)`` delivers a finished
        operation's result; ``retire_callback(thread, wave, cycle)``
        announces wave retirement (used for k-loop bounding)."""
        self.cluster = cluster
        self.config = config
        self.graph = graph
        self.memory = memory
        self.stats = stats
        self._complete = complete_callback
        self._retire = retire_callback
        self._contexts: dict[tuple[int, int], _WaveContext] = {}
        self._expected_wave: dict[int, int] = {}
        self._psqs: list[_PartialStoreQueue] = []
        # Stores that issued from the ordering table into a partial
        # store queue while still missing data, indexed by dynamic
        # identity so the late data message finds them.
        self._parked: dict[tuple[int, int, int], MemOp] = {}
        # Requests for waves beyond the ordering table's window
        # ("Each store buffer can handle four wave-ordered memory
        # sequences at once") wait here until the window slides.
        self._overflow: dict[int, list[tuple]] = {}
        # Static per-instruction decode for the request path:
        # inst_id -> (seq, prev, next, is_load, is_store).  Cached on
        # the graph because every store buffer of every cell sharing
        # that graph (a batch group, retry attempts) reads the same
        # rows; the Instruction/Opcode attribute chains are too slow
        # to walk once per memory operation.
        rows = getattr(graph, "_memop_rows", None)
        if rows is None:
            rows = {
                inst.inst_id: (
                    ann.this, ann.prev, ann.next,
                    inst.opcode.is_load, inst.opcode.is_store,
                )
                for inst in graph.instructions
                if (ann := inst.wave_annotation) is not None
            }
            graph._memop_rows = rows
        self._memop_rows = rows

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _window_open(self, thread: int, wave: int) -> bool:
        """Whether ``wave`` fits the per-thread ordering window."""
        expected = self._expected_wave.get(thread, 0)
        return wave < expected + self.config.storebuffer_waves

    def submit_address(
        self, inst_id: int, thread: int, wave: int, addr: Value, cycle: int
    ) -> None:
        """A load address, store address, or MEMORY_NOP trigger."""
        if not self._window_open(thread, wave):
            self._overflow.setdefault(thread, []).append(
                ("addr", inst_id, wave, addr)
            )
            self.stats.sb_window_stalls += 1
            return
        op = self._op_for(inst_id, thread, wave, cycle)
        op.addr = int(addr)
        self.stats.memory_ops += 1
        if op.is_load:
            self.stats.loads += 1
        elif op.is_store:
            self.stats.stores += 1
        self._pump(thread, cycle)

    def submit_data(
        self, inst_id: int, thread: int, wave: int, data: Value, cycle: int
    ) -> None:
        """The decoupled data half of a store.

        The matching address half may still be in the ordering table,
        or may already have issued into a partial store queue; the
        parked index covers the second case.
        """
        parked = self._parked.pop((inst_id, thread, wave), None)
        if parked is not None:
            parked.data = data
            for psq in self._psqs:
                if psq.waiting is parked:
                    self._drain_psq(psq, cycle)
                    break
            self._pump(thread, cycle)
            return
        if not self._window_open(thread, wave):
            self._overflow.setdefault(thread, []).append(
                ("data", inst_id, wave, data)
            )
            self.stats.sb_window_stalls += 1
            return
        op = self._op_for(inst_id, thread, wave, cycle)
        op.data = data
        self._pump(thread, cycle)

    def _op_for(
        self, inst_id: int, thread: int, wave: int, cycle: int
    ) -> MemOp:
        seq, prev, nxt, is_load, is_store = self._memop_rows[inst_id]
        ctx = self._contexts.setdefault((thread, wave), _WaveContext())
        op = ctx.pending.get(seq)
        if op is None:
            op = MemOp(
                inst_id=inst_id,
                thread=thread,
                wave=wave,
                seq=seq,
                prev=prev,
                next=nxt,
                is_load=is_load,
                is_store=is_store,
                arrived=cycle,
            )
            ctx.pending[seq] = op
            self._expected_wave.setdefault(thread, 0)
        return op

    # ------------------------------------------------------------------
    # Ordering and issue
    # ------------------------------------------------------------------
    def _pump(self, thread: int, cycle: int) -> None:
        """Issue every operation that has become orderable."""
        while True:
            wave = self._expected_wave.get(thread, 0)
            ctx = self._contexts.get((thread, wave))
            if ctx is None:
                return
            progressed = self._issue_ready(ctx, cycle)
            if ctx.complete and not ctx.pending:
                del self._contexts[(thread, wave)]
                self._expected_wave[thread] = wave + 1
                self.stats.waves_retired += 1
                # Ordering (issue) of the next wave proceeds now, but
                # the wave only *retires* -- for k-loop bounding --
                # once all its memory operations have completed.
                self._retire(thread, wave, max(cycle, ctx.max_done))
                self._absorb_overflow(thread, cycle)
                continue
            if not progressed:
                return

    def _absorb_overflow(self, thread: int, cycle: int) -> None:
        """The ordering window slid: absorb waiting requests that now
        fit, iteratively (no recursion -- the caller's loop picks up
        any issue work).  Hardware NACKs and the sender retries;
        absorbing at the slide cycle is timing-equivalent."""
        queue = self._overflow.get(thread)
        if not queue:
            return
        still: list[tuple] = []
        for entry in queue:
            kind, inst_id, wave, value = entry
            if not self._window_open(thread, wave):
                still.append(entry)
                continue
            op = self._op_for(inst_id, thread, wave, cycle)
            if kind == "addr":
                op.addr = int(value)
                self.stats.memory_ops += 1
                if op.is_load:
                    self.stats.loads += 1
                elif op.is_store:
                    self.stats.stores += 1
            else:
                op.data = value
        self._overflow[thread] = still

    def _issue_ready(self, ctx: _WaveContext, cycle: int) -> bool:
        progressed = False
        while True:
            op = self._next_orderable(ctx)
            if op is None:
                return progressed
            if not self._issue_op(ctx, op, cycle):
                return progressed
            progressed = True
            if ctx.complete:
                return progressed

    def _next_orderable(self, ctx: _WaveContext) -> Optional[MemOp]:
        for seq, op in ctx.pending.items():
            if not op.addr_ready:
                continue
            if ctx.last_issued == WAVE_START:
                if op.prev == WAVE_START:
                    return op
            elif op.prev == ctx.last_issued or ctx.last_next == op.seq:
                return op
        return None

    def _issue_op(self, ctx: _WaveContext, op: MemOp, cycle: int) -> bool:
        """Try to issue one orderable op; False if it must stall."""
        assert op.addr is not None
        if not (op.is_load or op.is_store):
            # MEMORY_NOP: participates in ordering only; its "address"
            # is an arbitrary trigger value, so it must never interact
            # with the partial store queues.
            self._perform(op, cycle)
            self._advance_chain(ctx, op)
            return True
        # Same-address capture: ops behind a parked store join its PSQ.
        psq = self._psq_for(op.addr)
        if psq is not None:
            capacity = self.config.psq_entries - 1 - len(psq.captured)
            if capacity <= 0:
                self.stats.psq_stalls += 1
                return False
            psq.captured.append(op)
            self.stats.psq_captures += 1
            if op.is_store and op.data is None:
                self._parked[(op.inst_id, op.thread, op.wave)] = op
            self._advance_chain(ctx, op)
            return True

        if op.is_store and op.data is None:
            # Store decoupling: park in a fresh partial store queue.
            if len(self._psqs) >= self.config.partial_store_queues:
                self.stats.psq_stalls += 1
                return False
            self._psqs.append(_PartialStoreQueue(addr=op.addr, waiting=op))
            self._parked[(op.inst_id, op.thread, op.wave)] = op
            self._advance_chain(ctx, op)
            return True

        self._perform(op, cycle)
        self._advance_chain(ctx, op)
        return True

    def _advance_chain(self, ctx: _WaveContext, op: MemOp) -> None:
        del ctx.pending[op.seq]
        ctx.last_issued = op.seq
        ctx.last_next = op.next
        if op.next == WAVE_END:
            ctx.complete = True

    def _psq_for(self, addr: int) -> Optional[_PartialStoreQueue]:
        # The 2-entry associative table of Section 3.3.1: one lookup per
        # parked address.
        for psq in self._psqs:
            if psq.addr == addr:
                return psq
        return None

    def _drain_psq(self, psq: _PartialStoreQueue, cycle: int) -> None:
        """The missing data arrived; issue the whole queue in order.

        If a captured store is itself still missing its data, it
        re-parks as a fresh partial store queue and everything captured
        *behind* it transfers too -- all captured operations share one
        address, so per-address program order must be preserved.
        """
        self._psqs.remove(psq)
        assert psq.waiting is not None
        t = cycle
        self._perform(psq.waiting, t)
        for index, op in enumerate(psq.captured):
            if op.is_store and op.data is None:
                self._psqs.append(
                    _PartialStoreQueue(
                        addr=op.addr or 0,
                        waiting=op,
                        captured=list(psq.captured[index + 1:]),
                    )
                )
                return
            t += 1  # "issue all its requests in quick succession"
            self._perform(op, t)

    # ------------------------------------------------------------------
    # Cache access
    # ------------------------------------------------------------------
    def _perform(self, op: MemOp, cycle: int) -> int:
        """Issue one ordered operation to the cache hierarchy;
        returns its completion cycle."""
        sb_done = cycle + self.config.storebuffer_latency
        inst = self.graph[op.inst_id]
        if inst.opcode is Opcode.MEMORY_NOP:
            self._complete(op, op.addr if op.addr is not None else 0,
                           sb_done)
            done = sb_done
        elif op.is_store:
            assert op.addr is not None and op.data is not None
            done = self.memory.access(
                self.cluster, op.addr, is_store=True, cycle=sb_done
            )
            self.memory.write_word(op.addr, op.data)
            self._complete(op, op.data, done)
        else:
            assert op.addr is not None
            done = self.memory.access(
                self.cluster, op.addr, is_store=False, cycle=sb_done
            )
            value = self.memory.read_word(op.addr)
            self._complete(op, value, done)
        ctx = self._contexts.get((op.thread, op.wave))
        if ctx is not None and done > ctx.max_done:
            ctx.max_done = done
        return done

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return sum(len(ctx.pending) for ctx in self._contexts.values())

    def stuck_report(self) -> str:
        lines = []
        for (thread, wave), ctx in sorted(self._contexts.items()):
            if not ctx.pending:
                continue
            ops = ", ".join(
                f"i{op.inst_id}<seq {seq}{'' if op.addr_ready else ' no-addr'}"
                f"{'' if op.data_ready else ' no-data'}>"
                for seq, op in sorted(ctx.pending.items())
            )
            lines.append(
                f"  sb{self.cluster} thread {thread} wave {wave} "
                f"(expected {self._expected_wave.get(thread)}; last "
                f"{ctx.last_issued}): {ops}"
            )
        if self._psqs:
            lines.append(
                f"  sb{self.cluster} psqs: "
                + ", ".join(
                    f"addr {p.addr} waiting i{p.waiting.inst_id}"
                    for p in self._psqs if p.waiting is not None
                )
            )
        for thread, queue in sorted(self._overflow.items()):
            if queue:
                lines.append(
                    f"  sb{self.cluster} thread {thread}: {len(queue)} "
                    "requests beyond the wave window "
                    f"(expected {self._expected_wave.get(thread)})"
                )
        return "\n".join(lines)
