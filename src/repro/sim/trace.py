"""Execution tracing.

An optional, zero-cost-when-off trace of the simulator's pipeline
events, in the spirit of the paper's appendix walk-through (Figure 9:
operands flowing through INPUT/MATCH/DISPATCH/EXECUTE/OUTPUT with
back-to-back speculative firing).

Attach a :class:`Trace` to an :class:`~repro.sim.engine.Engine` before
running; afterwards filter and render it::

    engine.trace = Trace()
    engine.run()
    print(engine.trace.render(pe=3))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Event kinds emitted by the engine, in pipeline order.  This tuple
#: is the *registry*: every kind the engine emits must be here, and
#: every kind here must be emitted by the engine --
#: ``tests/sim/test_trace.py`` asserts the round trip in both
#: directions, so the two can never silently drift apart again.
KINDS = (
    "input",       # token accepted into the matching table
    "reject",      # bank-conflict retry
    "match",       # row completed (instruction became ready)
    "dispatch",    # instruction dispatched
    "execute",     # result computed
    "output",      # operand sent toward a consumer
    "fault_drop",  # fault injection swallowed a delivery
    "mem_req",     # request sent to a store buffer
    "mem_done",    # memory operation completed
    "overflow",    # matching-table miss (token deflected/evicted)
    "ifetch",      # instruction-store miss fetch
)

#: Complete, stable same-cycle ordering: pipeline position for every
#: registered kind; unregistered kinds (user-synthesised events) sort
#: after all registered ones, preserving emission order among
#: themselves (sorts here are stable).
_KIND_ORDER = {kind: index for index, kind in enumerate(KINDS)}
_UNKNOWN_ORDER = len(KINDS)

#: Trace capacity policies: ``drop_newest`` (default) keeps the first
#: ``limit`` events -- the start of the run; ``drop_oldest`` is a ring
#: buffer keeping the most recent ``limit`` events -- the end of the
#: run.  Either way :attr:`Trace.dropped` counts the evictions.
POLICIES = ("drop_newest", "drop_oldest")


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    kind: str
    pe: int
    inst: int
    thread: int
    wave: int
    detail: str = ""

    def render(self) -> str:
        return (
            f"{self.cycle:>8}  {self.kind:<9} pe{self.pe:<4} "
            f"i{self.inst:<5} t{self.thread}.w{self.wave:<4} {self.detail}"
        )


@dataclass
class Trace:
    """A bounded in-memory event trace.

    ``policy`` selects what happens when ``limit`` is reached:
    ``"drop_newest"`` (default, the historical behaviour) stops
    recording and keeps the first ``limit`` events; ``"drop_oldest"``
    turns the trace into a ring buffer keeping the *last* ``limit``
    events (useful when the interesting part is the end of the run,
    e.g. the events leading into a deadlock).  Dropped events are
    counted on :attr:`dropped` either way, and :meth:`render` (and
    ``repro trace``) always reports them.
    """

    limit: int = 100_000
    events: list = field(default_factory=list)
    dropped: int = 0
    policy: str = "drop_newest"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown trace policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.policy == "drop_oldest":
            # deque(maxlen=...) evicts the oldest entry on append in
            # O(1); it supports len/iteration/indexing, which is all
            # the trace API needs.
            self.events = deque(self.events, maxlen=self.limit)

    def emit(
        self,
        cycle: int,
        kind: str,
        pe: int,
        inst: int,
        thread: int,
        wave: int,
        detail: str = "",
    ) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            if self.policy == "drop_newest":
                return
        self.events.append(
            TraceEvent(cycle, kind, pe, inst, thread, wave, detail)
        )

    # ------------------------------------------------------------------
    def filter(
        self,
        kind: Optional[str] = None,
        pe: Optional[int] = None,
        inst: Optional[int] = None,
        thread: Optional[int] = None,
        since: int = 0,
        until: Optional[int] = None,
    ) -> list[TraceEvent]:
        """Events matching every given criterion, in time order."""
        out = []
        for e in self.events:
            if kind is not None and e.kind != kind:
                continue
            if pe is not None and e.pe != pe:
                continue
            if inst is not None and e.inst != inst:
                continue
            if thread is not None and e.thread != thread:
                continue
            if e.cycle < since:
                continue
            if until is not None and e.cycle > until:
                continue
            out.append(e)
        out.sort(
            key=lambda e: (e.cycle,
                           _KIND_ORDER.get(e.kind, _UNKNOWN_ORDER))
        )
        return out

    def render(self, **criteria) -> str:
        """Human-readable rendering of :meth:`filter`'s result."""
        events = self.filter(**criteria)
        header = (
            f"{'cycle':>8}  {'event':<9} {'PE':<6} {'inst':<6} "
            f"{'tag':<8} detail"
        )
        lines = [header] + [e.render() for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (limit "
                         f"{self.limit})")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def instruction_timeline(self, inst: int) -> list[TraceEvent]:
        """The life of one static instruction across all its dynamic
        firings."""
        return self.filter(inst=inst)

    def dispatch_gaps(
        self, pe: Optional[int] = None, pod: Optional[int] = None
    ) -> list[int]:
        """Cycles between consecutive dispatches at one PE -- or, with
        ``pod``, across a PE pair sharing a bypass network (pipeline
        utilisation diagnostics; a gap of 1 is back-to-back)."""
        events = self.filter(kind="dispatch", pe=pe)
        if pod is not None:
            events = [e for e in events if e.pe // 2 == pod]
        times = sorted(e.cycle for e in events)
        return [b - a for a, b in zip(times, times[1:])]

    def back_to_back_pairs(
        self, pe: Optional[int] = None, pod: Optional[int] = None
    ) -> int:
        """How many dependent dispatches ran on consecutive cycles --
        the speculative-fire/bypass behaviour of the appendix's
        Figure 9."""
        return sum(
            1 for gap in self.dispatch_gaps(pe=pe, pod=pod) if gap == 1
        )

    def pods(self) -> set[int]:
        """Pods that dispatched at least once."""
        return {e.pe // 2 for e in self.filter(kind="dispatch")}

    def kinds_seen(self) -> set[str]:
        """Every event kind recorded in this trace."""
        return {e.kind for e in self.events}

    # ------------------------------------------------------------------
    def to_chrome(self, path) -> int:
        """Export as a Chrome trace-event JSON file (one track per
        PE), loadable in Perfetto or ``chrome://tracing``.  Returns
        the number of trace events written.  See
        :mod:`repro.obs.chrome` for the format mapping."""
        from ..obs.chrome import write_chrome_trace

        return write_chrome_trace(self, path)


def summarize(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Event-count histogram by kind."""
    out: dict[str, int] = {}
    for e in events:
        out[e.kind] = out.get(e.kind, 0) + 1
    return out
