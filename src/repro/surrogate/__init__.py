"""Learned AIPC surrogate for sweep-cell triage.

Public surface:

* :mod:`repro.surrogate.features` -- cell feature vectors and the
  streaming ledger training-set extractor;
* :mod:`repro.surrogate.model` -- the seeded numpy-only
  :class:`QuantileForest` with conformal intervals;
* :mod:`repro.surrogate.search` -- the bound-clipped
  :class:`SurrogateModel` the sweep driver consults, plus the
  held-out :func:`calibration_report` error gate.

The soundness contract (DESIGN.md §5k): the model orders and
annotates; every *skip* decision is gated by intervals clipped to the
sound static bound, and every Pareto-frontier point is measured
exactly, never predicted.
"""

from .features import (
    FEATURE_NAMES,
    TrainingSet,
    cell_features,
    extract_training_set,
)
from .model import QuantileForest
from .search import (
    MIN_TRAIN_ROWS,
    UNCERTAINTY_THRESHOLD,
    CalibrationReport,
    CellPrediction,
    SurrogateModel,
    calibration_report,
)

__all__ = [
    "FEATURE_NAMES",
    "TrainingSet",
    "cell_features",
    "extract_training_set",
    "QuantileForest",
    "MIN_TRAIN_ROWS",
    "UNCERTAINTY_THRESHOLD",
    "CalibrationReport",
    "CellPrediction",
    "SurrogateModel",
    "calibration_report",
]
