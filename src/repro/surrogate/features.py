"""Feature extraction for the AIPC surrogate.

One sweep cell becomes one fixed-width numeric vector drawn from three
sources, all config- or statics-derived (never from simulation):

* the design knobs themselves (cluster geometry, virtualization,
  matching table, cache sizing, die area from the Section 3 model);
* the workload's static/profile features already computed by
  :mod:`repro.analysis.dataflow` graph statics -- critical path,
  recurrence depth, fan-out pressure, dynamic work terms;
* the PR 7 static AIPC bound and its binding roof terms, as a prior
  the learned model can only tighten (predictions are later clipped
  to the bound, which is sound; the model is not).

The training-set extractor streams ledger records through
:meth:`repro.harness.ledger.Ledger.iter_fields`, so multi-gigabyte
campaign ledgers never materialize full record dicts just to train.

Outcome handling is explicit: ``ok`` rows train on measured AIPC;
``failed``/``poisoned`` rows train on 0.0 (exactly the score the
sweep aggregation assigns them); ``invalid``, ``pruned_static`` and
``predicted`` rows are *excluded* -- the first was never a
simulatable cell, the other two carry no measurement (training on a
model's own prior outputs would self-reinforce).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

#: Column order of every feature vector (stable across releases; the
#: model hash covers fitted structure, not this schema, so keep
#: appends at the end).
FEATURE_NAMES: tuple[str, ...] = (
    # -- design knobs ------------------------------------------------
    "clusters",
    "domains_per_cluster",
    "pes_per_domain",
    "virtualization",
    "matching_entries",
    "l1_kb",
    "l2_mb",
    "l1_ports",
    "total_pes",
    "area_mm2",
    # -- workload statics --------------------------------------------
    "static_alpha",
    "alpha_work",
    "dispatch_work",
    "memory_work",
    "fpu_work",
    "critical_path",
    "recurrence",
    "fanout_pressure",
    "threads",
    # -- static bound prior ------------------------------------------
    "aipc_bound",
    "cycles_lower_bound",
    "critical_path_placed",
    "dispatch_pe",
    "memory_roof",
)

# Per-process memo: area is a pure function of the config and the
# sweep grid re-uses a handful of configs across many workloads.
_AREA_CACHE: dict[str, float] = {}


def _area_of(config) -> float:
    key = config.describe()
    area = _AREA_CACHE.get(key)
    if area is None:
        from ..area.model import chip_area

        area = chip_area(config)
        _AREA_CACHE[key] = area
    return area


def cell_features(spec, bound=None) -> list[float]:
    """The feature vector for one :class:`CellSpec`, in
    :data:`FEATURE_NAMES` order.

    ``bound`` may pass a precomputed
    :class:`~repro.analysis.dataflow.BoundReport` (the sweep driver
    already holds one per cell); otherwise it is recomputed from the
    per-process statics cache.
    """
    from ..analysis.dataflow import _cached_statics, bound_for_cell

    statics = _cached_statics(
        spec.workload, spec.scale, spec.threads, spec.k, spec.seed
    )
    if bound is None:
        bound = bound_for_cell(spec)
    config = spec.config
    components = bound.components
    return [
        float(config.clusters),
        float(config.domains_per_cluster),
        float(config.pes_per_domain),
        float(config.virtualization),
        float(config.matching_entries),
        float(config.l1_kb),
        float(config.l2_mb),
        float(config.l1_ports),
        float(config.total_pes),
        float(_area_of(config)),
        float(statics.static_alpha),
        float(statics.alpha_work),
        float(statics.dispatch_work),
        float(statics.memory_work),
        float(statics.fpu_work),
        float(statics.critical_path),
        float(statics.recurrence),
        float(statics.fanout_pressure),
        float(spec.threads or 0),
        float(bound.aipc_bound),
        float(bound.cycles_lower_bound),
        float(components.get("critical_path_placed", 0.0)),
        float(components.get("dispatch_pe", 0.0)),
        float(components.get("memory", 0.0)),
    ]


#: Ledger statuses that train on measured AIPC.
_MEASURED = ("ok",)
#: Statuses that train on the 0.0 score the aggregation assigns them.
_ZERO_SCORE = ("failed", "poisoned")


@dataclass
class TrainingSet:
    """Feature matrix + targets extracted from one ledger."""

    X: np.ndarray  # (rows, len(FEATURE_NAMES))
    y: np.ndarray  # (rows,)
    #: Workload name per row -- the Mondrian conformal group labels.
    groups: list[str] = field(default_factory=list)
    cell_hashes: list[str] = field(default_factory=list)
    #: Rows excluded per status (``invalid``/``pruned_static``/
    #: ``predicted``/unparseable), for the calibration report.
    excluded: dict = field(default_factory=dict)

    @property
    def rows(self) -> int:
        return int(self.y.shape[0])


def extract_training_set(ledger) -> TrainingSet:
    """Stream one ledger into a :class:`TrainingSet`.

    ``ledger`` is a :class:`~repro.harness.ledger.Ledger` (or any
    object with a compatible ``iter_fields``).  Uses selective-field
    decode, so only ``status``/``aipc``/``spec`` are materialized per
    record.
    """
    from ..harness.spec import CellSpec

    features: list[list[float]] = []
    targets: list[float] = []
    groups: list[str] = []
    hashes: list[str] = []
    excluded: dict[str, int] = {}
    for status, aipc, spec_dict in ledger.iter_fields(
        "status", "aipc", "spec"
    ):
        if status in _MEASURED:
            target = float(aipc or 0.0)
        elif status in _ZERO_SCORE:
            target = 0.0
        else:
            key = status if isinstance(status, str) else "<malformed>"
            excluded[key] = excluded.get(key, 0) + 1
            continue
        if not isinstance(spec_dict, dict):
            excluded["<malformed>"] = excluded.get("<malformed>", 0) + 1
            continue
        try:
            spec = CellSpec.from_dict(spec_dict)
            row = cell_features(spec)
        except Exception:
            # A spec this build can no longer instantiate (renamed
            # workload, stale schema) is excluded, not fatal: old
            # campaign ledgers must stay usable as training corpora.
            excluded["<malformed>"] = excluded.get("<malformed>", 0) + 1
            continue
        features.append(row)
        targets.append(target)
        groups.append(spec.workload)
        hashes.append(spec.cell_hash())
    width = len(FEATURE_NAMES)
    X = (np.asarray(features, dtype=np.float64)
         if features else np.empty((0, width), dtype=np.float64))
    y = np.asarray(targets, dtype=np.float64)
    return TrainingSet(X=X, y=y, groups=groups, cell_hashes=hashes,
                       excluded=excluded)


def training_rows(
    specs_and_records: Iterable[tuple[object, dict]],
    bounds: Optional[dict[str, object]] = None,
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """In-memory variant of :func:`extract_training_set` for the sweep
    driver, which already holds (spec, record) pairs and per-cell
    bounds; same outcome rules.  Returns ``(X, y, groups)``."""
    features: list[list[float]] = []
    targets: list[float] = []
    groups: list[str] = []
    for spec, record in specs_and_records:
        status = record.get("status")
        if status in _MEASURED:
            target = float(record.get("aipc", 0.0) or 0.0)
        elif status in _ZERO_SCORE:
            target = 0.0
        else:
            continue
        bound = (bounds or {}).get(spec.cell_hash())
        features.append(cell_features(spec, bound=bound))
        targets.append(target)
        groups.append(spec.workload)
    width = len(FEATURE_NAMES)
    X = (np.asarray(features, dtype=np.float64)
         if features else np.empty((0, width), dtype=np.float64))
    return X, np.asarray(targets, dtype=np.float64), groups


def feature_frame(
    X: np.ndarray, names: Sequence[str] = FEATURE_NAMES
) -> list[dict]:
    """Rows as dicts (debug/report helper)."""
    return [
        {name: float(value) for name, value in zip(names, row)}
        for row in X
    ]
