"""Dependency-light bagged-trees AIPC regressor (numpy only).

A deliberately small quantile-forest: ``n_trees`` regression trees,
each fit on a bootstrap resample with per-node feature subsampling,
split by exact SSE reduction (vectorized with prefix sums).  The
ensemble mean is the point prediction; out-of-bag *split-conformal*
margins around it form the uncertainty interval, with a
finite-sample coverage guarantee on exchangeable data.  (The
ensemble quantile spread is deliberately NOT stacked on top of the
margin -- the conformal residuals already price the model's error,
and double-counting was measured to cost ~15% extra simulated cells
in the active sweep for no coverage gain.)

Margins are *Mondrian* when :meth:`QuantileForest.fit` receives group
labels (the sweep groups by workload): each group gets the conformal
quantile of its own OOB residuals, falling back to the global margin
for groups with too few residuals.  Per-workload margins matter
because prediction difficulty is wildly workload-dependent -- one
hard workload otherwise inflates every interval in the sweep.

Everything is seeded and deterministic: one
``numpy.random.default_rng(seed)`` drives bootstrap and feature
subsampling, split ties break toward the lowest feature index and
threshold, and :attr:`QuantileForest.model_hash` digests the fitted
tree structure so ledger records can name the exact model that
predicted them.  No wall-clock, no global RNG -- the D-rules
(``repro lint --self``) hold.

The model is *unsound* by construction (it interpolates); callers
must clip predictions to the sound static AIPC bound
(:func:`repro.analysis.dataflow.bound_for_cell`) before acting on
them.  :mod:`repro.surrogate.search` does exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Fitted-forest defaults: small enough to refit inside the sweep
#: loop every round, large enough that OOB coverage is meaningful.
DEFAULT_TREES = 64
DEFAULT_MAX_DEPTH = 8
DEFAULT_MIN_LEAF = 2
#: Per-node feature subsample as a fraction of the feature count.
#: Higher than the classic sqrt rule: the feature set is small and a
#: few knobs (L2 size, virtualization) carry most of the signal, so
#: starving trees of them costs more bias than the extra de-correlation
#: is worth.
DEFAULT_FEATURE_FRACTION = 0.5
#: Minimum OOB residuals a group needs for its own Mondrian margin.
MIN_GROUP_RESIDUALS = 6
#: Finite-sample inflation on every conformal margin.  Mondrian
#: groups calibrate on few residuals (a 6-workload sweep leaves
#: ~15-20 OOB residuals per group), where even the max residual only
#: guarantees ~1 - 1/(m+1) per-side coverage -- short of the 95%
#: each side needs for a 90% two-sided interval.  The inflation buys
#: back the shortfall: on the reference 23x6 study it lifts held-out
#: coverage from ~85-88% to >= 94% across seeds while still skipping
#: more than half the cells.
CONFORMAL_INFLATION = 1.25


@dataclass
class _Tree:
    """One regression tree in flat-array form.

    ``feature[i] < 0`` marks node ``i`` as a leaf with prediction
    ``value[i]``; internal nodes route ``x[feature] <= threshold`` to
    ``left`` else ``right``.
    """

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def _new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        for i in range(X.shape[0]):
            node = 0
            while self.feature[node] >= 0:
                if X[i, self.feature[node]] <= self.threshold[node]:
                    node = self.left[node]
                else:
                    node = self.right[node]
            out[i] = self.value[node]
        return out

    def structure(self) -> list:
        """Canonical JSON-able form for hashing."""
        return [
            self.feature,
            [float(t) for t in self.threshold],
            self.left,
            self.right,
            [float(v) for v in self.value],
        ]


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    rows: np.ndarray,
    features: np.ndarray,
    min_leaf: int,
) -> Optional[tuple[int, float]]:
    """Exact SSE-minimizing ``(feature, threshold)`` over the
    candidate features, or ``None`` when no legal split improves.

    Ties break toward the lowest feature index, then the lowest
    threshold (the candidate ``features`` arrive sorted), keeping the
    fit bit-deterministic under a fixed seed.
    """
    best_gain = 0.0
    best: Optional[tuple[int, float]] = None
    n = rows.shape[0]
    y_node = y[rows]
    total = y_node.sum()
    base = total * total / n
    for feat in features:
        order = np.argsort(X[rows, feat], kind="stable")
        xs = X[rows[order], feat]
        ys = y_node[order]
        prefix = np.cumsum(ys)
        counts = np.arange(1, n, dtype=np.float64)
        left_sum = prefix[:-1]
        right_sum = total - left_sum
        # Split between positions i-1 and i is legal when the x
        # values differ and both sides hold >= min_leaf rows.
        gains = (
            left_sum * left_sum / counts
            + right_sum * right_sum / (n - counts)
            - base
        )
        legal = xs[:-1] < xs[1:]
        if min_leaf > 1:
            legal = legal.copy()
            legal[: min_leaf - 1] = False
            if min_leaf - 1 > 0:
                legal[n - min_leaf:] = False
        gains = np.where(legal, gains, -np.inf)
        if not gains.size:
            continue
        pos = int(np.argmax(gains))
        gain = float(gains[pos])
        # Strict > : equal-gain splits on a later feature never
        # displace an earlier one.
        if gain > best_gain + 1e-12:
            best_gain = gain
            best = (
                int(feat),
                float((xs[pos] + xs[pos + 1]) / 2.0),
            )
    return best


def _fit_tree(
    X: np.ndarray,
    y: np.ndarray,
    rows: np.ndarray,
    rng: np.random.Generator,
    max_depth: int,
    min_leaf: int,
    n_sub: int,
) -> _Tree:
    tree = _Tree()
    # Explicit stack; children are created depth-first left-first, so
    # node numbering (and the model hash) is reproducible.
    root = tree._new_node()
    stack: list[tuple[int, np.ndarray, int]] = [(root, rows, 0)]
    n_features = X.shape[1]
    while stack:
        node, node_rows, depth = stack.pop()
        y_node = y[node_rows]
        tree.value[node] = float(y_node.mean())
        if (depth >= max_depth or node_rows.shape[0] < 2 * min_leaf
                or float(y_node.min()) == float(y_node.max())):
            continue
        chosen = np.sort(rng.choice(
            n_features, size=min(n_sub, n_features), replace=False
        ))
        split = _best_split(X, y, node_rows, chosen, min_leaf)
        if split is None:
            continue
        feat, threshold = split
        mask = X[node_rows, feat] <= threshold
        left_rows = node_rows[mask]
        right_rows = node_rows[~mask]
        tree.feature[node] = feat
        tree.threshold[node] = threshold
        left = tree._new_node()
        right = tree._new_node()
        tree.left[node] = left
        tree.right[node] = right
        # Push right first so left pops (and numbers) first.
        stack.append((right, right_rows, depth + 1))
        stack.append((left, left_rows, depth + 1))
    return tree


class QuantileForest:
    """Bagged regression trees with conformal uncertainty intervals.

    >>> forest = QuantileForest(seed=7).fit(X, y)
    >>> mean = forest.predict(X_new)
    >>> lo, hi = forest.predict_interval(X_new)

    ``predict_interval`` returns the ensemble mean widened by the
    out-of-bag conformal margins; on held-out exchangeable data the
    interval covers the truth with probability >= ``coverage`` (up to
    the usual finite-sample slack).  ``lo`` is floored at 0 -- AIPC
    is non-negative.
    """

    def __init__(
        self,
        *,
        n_trees: int = DEFAULT_TREES,
        max_depth: int = DEFAULT_MAX_DEPTH,
        min_leaf: int = DEFAULT_MIN_LEAF,
        feature_fraction: float = DEFAULT_FEATURE_FRACTION,
        coverage: float = 0.9,
        seed: int = 0,
    ) -> None:
        if not 0.5 <= coverage < 1.0:
            raise ValueError(f"coverage must be in [0.5, 1): {coverage}")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.feature_fraction = float(feature_fraction)
        self.coverage = float(coverage)
        self.seed = int(seed)
        self._trees: list[_Tree] = []
        self._margin_lo = 0.0
        self._margin_hi = 0.0
        #: group -> (lo margin, hi margin)
        self._group_margins: dict[str, tuple[float, float]] = {}
        self._hash: Optional[str] = None
        self.train_rows = 0

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return bool(self._trees)

    @property
    def model_hash(self) -> str:
        """16-hex digest of the fitted structure (trees + margin +
        hyperparameters); ``"unfitted"`` before :meth:`fit`."""
        if not self.fitted:
            return "unfitted"
        if self._hash is None:
            payload = json.dumps(
                {
                    "params": [
                        self.n_trees, self.max_depth, self.min_leaf,
                        self.feature_fraction, self.coverage,
                        self.seed,
                    ],
                    "margin": [
                        float(self._margin_lo), float(self._margin_hi)
                    ],
                    "group_margins": {
                        k: [float(lo), float(hi)]
                        for k, (lo, hi)
                        in sorted(self._group_margins.items())
                    },
                    "trees": [t.structure() for t in self._trees],
                },
                sort_keys=True, separators=(",", ":"),
            ).encode()
            self._hash = hashlib.sha256(payload).hexdigest()[:16]
        return self._hash

    # ------------------------------------------------------------------
    def _conformal_quantile(self, scores: list[float]) -> float:
        """Finite-sample one-sided conformal quantile over signed
        scores, at per-side level ``1 - (1-coverage)/2`` (two
        one-sided margins compose into a two-sided ``coverage``
        interval).  Index ``ceil((m+1)*level)-1``, clamped; the ``+1``
        buys the finite-sample guarantee.  Floored at 0: a negative
        signed quantile must not pull the interval edge past the
        point prediction itself.  Scaled by
        :data:`CONFORMAL_INFLATION` to cover the small-``m`` shortfall
        (see its docstring)."""
        scores = sorted(scores)
        m = len(scores)
        level = 1.0 - (1.0 - self.coverage) / 2.0
        idx = min(m - 1, int(np.ceil((m + 1) * level)) - 1)
        return max(0.0, scores[idx]) * CONFORMAL_INFLATION

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        groups: Optional[Sequence[str]] = None,
    ) -> "QuantileForest":
        """Fit trees and conformal margins.

        ``groups`` (optional, one hashable label per row -- the sweep
        passes workload names) switches the margin to Mondrian: each
        group with >= :data:`MIN_GROUP_RESIDUALS` OOB residuals
        calibrates separately; others use the global margin.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(
                f"bad training shapes: X{X.shape} y{y.shape}"
            )
        n = X.shape[0]
        if n < 2:
            raise ValueError(f"need >= 2 training rows, got {n}")
        if groups is not None and len(groups) != n:
            raise ValueError(
                f"groups length {len(groups)} != rows {n}"
            )
        rng = np.random.default_rng(self.seed)
        n_sub = max(
            2, int(np.ceil(X.shape[1] * self.feature_fraction))
        )
        self._trees = []
        self._hash = None
        self.train_rows = n
        in_bag = np.zeros((self.n_trees, n), dtype=bool)
        for t in range(self.n_trees):
            rows = rng.integers(0, n, size=n)
            in_bag[t, rows] = True
            self._trees.append(_fit_tree(
                X, y, rows, rng, self.max_depth, self.min_leaf, n_sub
            ))
        # Split-conformal margins over out-of-bag *signed* residuals:
        # for each row, the mean prediction of trees that never saw
        # it.  Upper and lower margins calibrate separately -- an
        # asymmetric error distribution (e.g. a workload whose
        # failures undershoot wildly but whose successes are
        # predictable) then only widens the side that actually errs.
        preds = np.stack([t.predict(X) for t in self._trees])
        oob_mask = ~in_bag
        votes = oob_mask.sum(axis=0)
        signed: list[float] = []  # y - oob_pred: >0 means underpredict
        by_group: dict[str, list[float]] = {}
        for i in range(n):
            if votes[i] == 0:
                continue
            oob_pred = preds[oob_mask[:, i], i].mean()
            residual = float(y[i] - oob_pred)
            signed.append(residual)
            if groups is not None:
                by_group.setdefault(str(groups[i]), []).append(residual)
        if signed:
            self._margin_hi = self._conformal_quantile(signed)
            self._margin_lo = self._conformal_quantile(
                [-r for r in signed]
            )
        else:  # degenerate: every tree saw every row
            self._margin_hi = float(np.abs(y - y.mean()).max())
            self._margin_lo = self._margin_hi
        self._group_margins = {
            name: (
                self._conformal_quantile([-r for r in residuals]),
                self._conformal_quantile(residuals),
            )
            for name, residuals in sorted(by_group.items())
            if len(residuals) >= MIN_GROUP_RESIDUALS
        }
        return self

    # ------------------------------------------------------------------
    def _tree_preds(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return np.stack([t.predict(X) for t in self._trees])

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("predict() before fit()")
        return self._tree_preds(X).mean(axis=0)

    def predict_interval(
        self,
        X: np.ndarray,
        groups: Optional[Sequence[str]] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` arrays at the configured coverage.

        ``groups`` selects per-row Mondrian margins fitted for those
        labels; rows whose label has no fitted margin (or when
        ``groups`` is omitted) use the global margin.
        """
        if not self.fitted:
            raise RuntimeError("predict_interval() before fit()")
        preds = self._tree_preds(X)
        default = (self._margin_lo, self._margin_hi)
        if groups is None:
            pairs = [default] * preds.shape[1]
        else:
            pairs = [
                self._group_margins.get(str(name), default)
                for name in groups
            ]
            if len(pairs) != preds.shape[1]:
                raise ValueError(
                    f"groups length {len(pairs)} != rows "
                    f"{preds.shape[1]}"
                )
        lo_m = np.asarray([p[0] for p in pairs])
        hi_m = np.asarray([p[1] for p in pairs])
        mean = preds.mean(axis=0)
        return np.maximum(mean - lo_m, 0.0), mean + hi_m

    @property
    def conformal_margin(self) -> tuple[float, float]:
        """Global ``(lo, hi)`` conformal margins."""
        return self._margin_lo, self._margin_hi

    @property
    def group_margins(self) -> dict[str, tuple[float, float]]:
        return dict(self._group_margins)
