"""Surrogate-guided search support: sound-clipped predictions and the
held-out calibration report.

:class:`SurrogateModel` is the sweep driver's view of the learned
predictor.  It wraps :class:`~repro.surrogate.model.QuantileForest`
with the two policies the soundness argument needs (DESIGN.md §5k):

* predictions are **clipped to the static AIPC bound** -- the upper
  interval can never exceed what the PR 7 analysis proves impossible;
* before ``min_train`` measured rows exist the model answers with the
  **prior** ``(aipc=bound, lo=0, hi=bound)`` under model hash
  ``"prior"`` -- the surrogate skip test then degenerates exactly to
  the sound static-bound prune test, so a cold-start campaign can
  never skip on an unfitted model's guess.

:func:`calibration_report` is the exact-vs-predicted error gate: a
deterministic holdout split, MAE, and empirical interval coverage
(CI fails the surrogate job when coverage < 0.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .features import FEATURE_NAMES, TrainingSet, cell_features
from .model import QuantileForest

#: Measured rows required before the forest replaces the prior.
MIN_TRAIN_ROWS = 12
#: Default skip gate on interval width (hi - lo, in AIPC): a design
#: whose unmeasured lanes carry wider intervals than this is
#: simulated even when its upper interval sits below the frontier.
UNCERTAINTY_THRESHOLD = 1.0


@dataclass(frozen=True)
class CellPrediction:
    """One cell's surrogate answer, already bound-clipped."""

    aipc: float
    lo: float
    hi: float
    model_hash: str

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def to_record_fields(self) -> dict:
        """The fields a ``predicted`` ledger record carries."""
        return {
            "aipc_predicted": round(self.aipc, 6),
            "aipc_interval": [round(self.lo, 6), round(self.hi, 6)],
            "model_hash": self.model_hash,
        }


class SurrogateModel:
    """Bound-clipped forest with a prior fallback (see module doc)."""

    def __init__(
        self,
        *,
        seed: int = 0,
        coverage: float = 0.9,
        min_train: int = MIN_TRAIN_ROWS,
        **forest_params,
    ) -> None:
        self.seed = seed
        self.coverage = coverage
        self.min_train = min_train
        self.forest_params = forest_params
        self._forest: Optional[QuantileForest] = None
        self.refits = 0

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._forest is not None

    @property
    def model_hash(self) -> str:
        return self._forest.model_hash if self._forest else "prior"

    @property
    def train_rows(self) -> int:
        return self._forest.train_rows if self._forest else 0

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        groups: Optional[list[str]] = None,
    ) -> bool:
        """Fit when enough measured rows exist; returns whether the
        forest (vs the prior) now answers predictions.  ``groups``
        (workload names) turns on Mondrian per-workload margins."""
        if X.shape[0] < self.min_train:
            return False
        forest = QuantileForest(
            seed=self.seed, coverage=self.coverage,
            **self.forest_params,
        )
        forest.fit(X, y, groups=groups)
        self._forest = forest
        self.refits += 1
        return True

    # ------------------------------------------------------------------
    def predict_cell(self, spec, bound) -> CellPrediction:
        """Bound-clipped prediction for one cell.

        ``bound`` is the cell's
        :class:`~repro.analysis.dataflow.BoundReport`; clipping to
        ``bound.aipc_bound`` keeps the upper interval sound whenever
        the static analysis is (the forest alone is not).
        """
        cap = float(bound.aipc_bound)
        if self._forest is None:
            return CellPrediction(
                aipc=cap, lo=0.0, hi=cap, model_hash="prior"
            )
        x = np.asarray(
            [cell_features(spec, bound=bound)], dtype=np.float64
        )
        mean = float(self._forest.predict(x)[0])
        lo_arr, hi_arr = self._forest.predict_interval(
            x, groups=[spec.workload]
        )
        lo = float(lo_arr[0])
        hi = float(hi_arr[0])
        hi = min(hi, cap)
        lo = max(0.0, min(lo, hi))
        return CellPrediction(
            aipc=max(0.0, min(mean, cap)), lo=lo, hi=hi,
            model_hash=self.model_hash,
        )


# ----------------------------------------------------------------------
# Exact-vs-predicted calibration
# ----------------------------------------------------------------------
_BOUND_COL = FEATURE_NAMES.index("aipc_bound")


@dataclass(frozen=True)
class CalibrationReport:
    """Held-out error of the surrogate on one training corpus."""

    rows: int
    train_rows: int
    holdout_rows: int
    mae: float
    coverage: float  # fraction of holdout truths inside [lo, hi]
    target_coverage: float
    mean_interval_width: float
    model_hash: str
    excluded: dict

    @property
    def calibrated(self) -> bool:
        return self.coverage >= self.target_coverage

    def to_dict(self) -> dict:
        return {
            "rows": self.rows,
            "train_rows": self.train_rows,
            "holdout_rows": self.holdout_rows,
            "mae": round(self.mae, 6),
            "coverage": round(self.coverage, 4),
            "target_coverage": self.target_coverage,
            "mean_interval_width": round(self.mean_interval_width, 6),
            "model_hash": self.model_hash,
            "calibrated": self.calibrated,
            "excluded": dict(sorted(self.excluded.items())),
        }

    def render(self) -> str:
        verdict = "CALIBRATED" if self.calibrated else "MISCALIBRATED"
        lines = [
            f"surrogate calibration: {verdict}",
            f"  rows            {self.rows} "
            f"({self.train_rows} train / {self.holdout_rows} holdout)",
            f"  holdout MAE     {self.mae:.4f} AIPC",
            f"  coverage        {self.coverage:.1%} "
            f"(target {self.target_coverage:.0%})",
            f"  interval width  {self.mean_interval_width:.4f} mean",
            f"  model hash      {self.model_hash}",
        ]
        if self.excluded:
            skipped = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.excluded.items())
            )
            lines.append(f"  excluded rows   {skipped}")
        return "\n".join(lines)


def calibration_report(
    training: TrainingSet,
    *,
    holdout: float = 0.25,
    seed: int = 0,
    coverage: float = 0.9,
    **forest_params,
) -> CalibrationReport:
    """Deterministic holdout calibration of the forest on one corpus.

    The split is a seeded permutation (no wall-clock, no global RNG);
    predictions are bound-clipped exactly as the sweep driver clips
    them, so the reported MAE/coverage measure the deployed model.
    """
    n = training.rows
    if n < max(8, 2 * MIN_TRAIN_ROWS // 3):
        raise ValueError(
            f"need >= 8 usable rows to calibrate, got {n} "
            f"(excluded: {training.excluded or 'none'})"
        )
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_hold = max(1, int(round(n * holdout)))
    if n - n_hold < 2:
        n_hold = n - 2
    hold = perm[:n_hold]
    train = perm[n_hold:]
    forest = QuantileForest(
        seed=seed, coverage=coverage, **forest_params
    )
    groups = training.groups or None
    forest.fit(
        training.X[train], training.y[train],
        groups=[groups[i] for i in train] if groups else None,
    )
    X_hold = training.X[hold]
    y_hold = training.y[hold]
    hold_groups = [groups[i] for i in hold] if groups else None
    caps = X_hold[:, _BOUND_COL]
    mean = np.minimum(np.maximum(forest.predict(X_hold), 0.0), caps)
    lo, hi = forest.predict_interval(X_hold, groups=hold_groups)
    hi = np.minimum(hi, caps)
    lo = np.minimum(lo, hi)
    inside = (y_hold >= lo - 1e-9) & (y_hold <= hi + 1e-9)
    return CalibrationReport(
        rows=n,
        train_rows=int(train.shape[0]),
        holdout_rows=int(hold.shape[0]),
        mae=float(np.abs(mean - y_hold).mean()),
        coverage=float(inside.mean()),
        target_coverage=coverage,
        mean_interval_width=float((hi - lo).mean()),
        model_hash=forest.model_hash,
        excluded=training.excluded,
    )
