"""Workload suite: stand-ins for the paper's fifteen applications."""

from .base import Scale, Suite, Workload, partition, scaled
from .characterize import (
    Profile,
    characterization_table,
    profile_graph,
    profile_workload,
)
from .registry import (
    MEDIA_NAMES,
    SPEC_NAMES,
    SPLASH_NAMES,
    TENSOR_NAMES,
    WORKLOADS,
    all_names,
    by_suite,
    get,
)

__all__ = [
    "Scale",
    "Profile",
    "characterization_table",
    "profile_graph",
    "profile_workload",
    "Suite",
    "Workload",
    "partition",
    "scaled",
    "MEDIA_NAMES",
    "SPEC_NAMES",
    "SPLASH_NAMES",
    "TENSOR_NAMES",
    "WORKLOADS",
    "all_names",
    "by_suite",
    "get",
]
